"""The distributed experiment fabric: ``repro serve`` / ``repro work``.

A :class:`~repro.fabric.coordinator.Coordinator` accepts study jobs —
serialized :class:`~repro.experiments.spec.StudySpec` payloads — over a
length-prefixed JSON socket protocol (:mod:`repro.fabric.protocol`),
tracks :class:`~repro.fabric.worker.Worker` processes through
heartbeats with incarnation numbers
(:mod:`repro.fabric.failure`), leases unique cache-miss configs to idle
workers (:mod:`repro.fabric.leases`), and reschedules leases when a
worker goes silent or its socket drops.

The coordinator runs the *study logic* itself — the same
:func:`repro.api.run_study` path the CLI uses — with a
:class:`~repro.fabric.coordinator.FabricEngine` plugged into the
experiment engine's execution seam.  Dedup, cache policy, manifest
writes, and result ordering therefore stay coordinator-side and
single-threaded, which is what makes a fabric study **byte-identical**
to the same spec run locally with ``--jobs N``: workers only ever
compute ``run_simulation(config)`` for configs the shared
content-addressed :class:`~repro.experiments.parallel.RunCache` does
not already hold, and every result lands in that cache exactly once.
"""

from .coordinator import Coordinator, FabricEngine
from .failure import FailureDetector
from .leases import Lease, LeaseBoard
from .protocol import PROTOCOL_VERSION, ProtocolError, recv_frame, send_frame
from .worker import Worker

__all__ = [
    "Coordinator",
    "FabricEngine",
    "FailureDetector",
    "Lease",
    "LeaseBoard",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Worker",
    "recv_frame",
    "send_frame",
]
