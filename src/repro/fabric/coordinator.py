"""The fabric coordinator (``repro serve``) and its engine adapter.

The :class:`Coordinator` owns four small moving parts:

* an **accept loop** — the first frame on a fresh connection decides
  whether the peer is a worker (``register``) or a client (``submit`` /
  ``status``), so one listening port serves both;
* one **connection thread per worker** — drains heartbeats and lease
  results into the :class:`~repro.fabric.failure.FailureDetector` and
  :class:`~repro.fabric.leases.LeaseBoard` under the coordinator lock;
* a **monitor loop** — declares silent workers failed and requeues
  their leases (a socket EOF does the same immediately);
* a **study loop** — executes submitted
  :class:`~repro.experiments.spec.StudySpec` jobs *serially* through
  the exact :func:`repro.api.run_study` path the CLI uses, with a
  :class:`FabricEngine` plugged into the experiment engine's execution
  seam.

Serial study execution is a correctness choice, not a limitation: the
shared cache and manifests see the same single-writer access pattern a
local run produces, which the byte-identity contract depends on.
Parallelism lives *inside* each batch — unique cache-miss configs fan
out across every idle worker.
"""

from __future__ import annotations

import logging
import queue
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..experiments.config import config_to_jsonable
from ..experiments.parallel.cache import metrics_from_jsonable
from ..experiments.parallel.engine import ExperimentEngine
from ..experiments.spec import spec_digest, spec_from_jsonable
from .failure import FailureDetector
from .leases import LeaseBoard
from .protocol import PROTOCOL_VERSION, ProtocolError, recv_frame, send_frame

__all__ = ["Coordinator", "FabricEngine", "MAX_ATTEMPTS"]

log = logging.getLogger(__name__)

#: executions granted per key before its batch fails instead of retrying
MAX_ATTEMPTS = 3

#: done-payload marker for a key that exhausted its retry budget
_ERROR_KEY = "__fabric_error__"


class _WorkerConn:
    """Coordinator-side handle of one connected worker life."""

    def __init__(self, worker_id: str, incarnation: int, sock: socket.socket) -> None:
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.sock = sock
        self.send_lock = threading.Lock()
        self.busy = False

    def send(self, message: Dict[str, Any]) -> None:
        with self.send_lock:
            send_frame(self.sock, message)


class Coordinator:
    """Accepts studies and workers on one socket; schedules leases.

    Parameters
    ----------
    host, port:
        Bind address (``port=0`` picks a free port — read
        :attr:`address` after :meth:`start`).
    heartbeat_timeout:
        Silence after which a worker is declared failed and its leases
        requeue.
    clock:
        Monotonic time source for the failure detector (injectable so
        lease-recovery rules are testable without sleeping).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_timeout: float = 10.0,
        clock=time.monotonic,
    ) -> None:
        self._host = host
        self._port = port
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.board = LeaseBoard()
        self.detector = FailureDetector(heartbeat_timeout, clock=clock)
        self._workers: Dict[str, _WorkerConn] = {}
        self._attempts: Dict[str, int] = {}
        self._jobs: "queue.Queue[Optional[Tuple[int, Dict[str, Any], socket.socket, threading.Lock]]]" = (
            queue.Queue()
        )
        self._job_ids = iter(range(1, 1 << 62))
        self.jobs_done = 0
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stopped = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        assert self._listener is not None, "coordinator not started"
        return self._listener.getsockname()[:2]

    def start(self) -> "Coordinator":
        """Bind, then spawn the accept, monitor, and study threads."""
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self._host, self._port))
        self._listener.listen(64)
        for name, target in (
            ("fabric-accept", self._accept_loop),
            ("fabric-monitor", self._monitor_loop),
            ("fabric-study", self._study_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        log.info("coordinator listening on %s:%d", *self.address)
        return self

    def stop(self) -> None:
        """Shut down: stop accepting, dismiss workers, wake waiters."""
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self._jobs.put(None)
        with self._cond:
            conns = list(self._workers.values())
            self._workers.clear()
            self._cond.notify_all()
        for conn in conns:
            try:
                conn.send({"type": "shutdown"})
            except (OSError, ProtocolError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # accept / demux
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopped.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection, args=(sock,), daemon=True
            )
            thread.start()

    def _serve_connection(self, sock: socket.socket) -> None:
        """Route one fresh connection by its first frame."""
        try:
            first = recv_frame(sock)
        except ProtocolError as exc:
            log.warning("dropping undecipherable connection: %s", exc)
            sock.close()
            return
        if first is None:
            sock.close()
            return
        kind = first.get("type")
        if kind == "register":
            self._serve_worker(sock, first)
        elif kind == "submit":
            self._accept_job(sock, first)
        elif kind == "status":
            try:
                send_frame(sock, self._status())
            except OSError:
                pass
            sock.close()
        else:
            try:
                send_frame(
                    sock,
                    {"type": "error", "job_id": None,
                     "message": f"unexpected first frame {kind!r}"},
                )
            except OSError:
                pass
            sock.close()

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _serve_worker(self, sock: socket.socket, hello: Dict[str, Any]) -> None:
        worker_id = str(hello.get("worker_id"))
        incarnation = int(hello.get("incarnation", 0))
        version = hello.get("v")
        if version != PROTOCOL_VERSION:
            try:
                send_frame(sock, {"type": "rejected",
                                  "message": f"protocol v{version} != v{PROTOCOL_VERSION}"})
            except OSError:
                pass
            sock.close()
            return
        conn = _WorkerConn(worker_id, incarnation, sock)
        with self._cond:
            if not self.detector.register(worker_id, incarnation):
                stale = True
            else:
                stale = False
                old = self._workers.pop(worker_id, None)
                if old is not None:
                    # a superseded life: forfeit its leases, drop its socket
                    for key in self.board.fail_worker(worker_id):
                        log.info("requeued %s from superseded %s", key[:12], worker_id)
                    try:
                        old.sock.close()
                    except OSError:
                        pass
                self._workers[worker_id] = conn
        if stale:
            try:
                send_frame(sock, {"type": "rejected",
                                  "message": f"stale incarnation {incarnation}"})
            except OSError:
                pass
            sock.close()
            return
        try:
            conn.send({"type": "registered", "worker_id": worker_id})
        except OSError:
            self._worker_gone(conn)
            return
        log.info("worker %s (incarnation %d) registered", worker_id, incarnation)
        with self._cond:
            self._dispatch_locked()
        self._worker_recv_loop(conn)

    def _worker_recv_loop(self, conn: _WorkerConn) -> None:
        while True:
            try:
                msg = recv_frame(conn.sock)
            except (ProtocolError, OSError) as exc:
                log.warning("worker %s connection error: %s", conn.worker_id, exc)
                msg = None
            if msg is None:
                self._worker_gone(conn)
                return
            kind = msg.get("type")
            if kind == "heartbeat":
                with self._cond:
                    self.detector.beat(
                        str(msg.get("worker_id")), int(msg.get("incarnation", -1))
                    )
            elif kind == "lease_result":
                self._on_lease_result(conn, msg)
            elif kind == "lease_error":
                self._on_lease_error(conn, msg)
            else:
                log.warning("worker %s sent unexpected %r", conn.worker_id, kind)

    def _on_lease_result(self, conn: _WorkerConn, msg: Dict[str, Any]) -> None:
        with self._cond:
            accepted = self.board.complete(
                int(msg["lease_id"]),
                str(msg["worker_id"]),
                int(msg["incarnation"]),
                msg["metrics"],
            )
            conn.busy = False
            if accepted:
                log.info("lease %s completed by %s",
                         msg.get("lease_id"), conn.worker_id)
                self._cond.notify_all()
            else:
                log.info("dropped duplicate/stale result for lease %s",
                         msg.get("lease_id"))
            self._dispatch_locked()

    def _on_lease_error(self, conn: _WorkerConn, msg: Dict[str, Any]) -> None:
        key = str(msg.get("key"))
        with self._cond:
            conn.busy = False
            attempts = self._attempts.get(key, 0)
            if attempts >= MAX_ATTEMPTS:
                if self.board.abort(
                    int(msg["lease_id"]), {_ERROR_KEY: str(msg.get("message"))}
                ):
                    log.error("key %s failed %d times; giving up: %s",
                              key[:12], attempts, msg.get("message"))
                self._cond.notify_all()
            else:
                self.board.fail_lease(int(msg["lease_id"]))
                log.warning("key %s errored on %s (attempt %d): %s",
                            key[:12], conn.worker_id, attempts, msg.get("message"))
            self._dispatch_locked()

    def _worker_gone(self, conn: _WorkerConn) -> None:
        """Handle a dropped worker socket (crash, kill, network loss)."""
        with self._cond:
            current = self._workers.get(conn.worker_id)
            if current is not conn:
                return  # already superseded by a newer life
            del self._workers[conn.worker_id]
            self.detector.deregister(conn.worker_id)
            for key in self.board.fail_worker(conn.worker_id):
                log.warning("worker %s lost; requeued %s", conn.worker_id, key[:12])
            self._dispatch_locked()
            self._cond.notify_all()
        try:
            conn.sock.close()
        except OSError:
            pass

    def check_silent(self) -> List[str]:
        """Declare heartbeat-silent workers failed; the ids declared.

        The monitor thread calls this periodically; tests with a fake
        clock call it directly.
        """
        declared = []
        with self._cond:
            for worker_id in self.detector.silent():
                conn = self._workers.pop(worker_id, None)
                self.detector.deregister(worker_id)
                for key in self.board.fail_worker(worker_id):
                    log.warning("worker %s silent; requeued %s", worker_id, key[:12])
                declared.append(worker_id)
                if conn is not None:
                    try:
                        conn.sock.close()
                    except OSError:
                        pass
            if declared:
                self._dispatch_locked()
                self._cond.notify_all()
        return declared

    def _monitor_loop(self) -> None:
        interval = max(0.05, min(0.5, self.detector.timeout / 4.0))
        while not self._stopped.wait(interval):
            self.check_silent()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch_locked(self) -> None:
        """Pair pending keys with idle workers (caller holds the lock).

        Frames are small and sockets local, so sending under the lock is
        a simplicity/throughput trade we accept; a send failure is the
        same as a lost worker.
        """
        while self.board.has_pending():
            idle = next(
                (c for c in self._workers.values() if not c.busy), None
            )
            if idle is None:
                return
            lease = self.board.next_for(idle.worker_id, idle.incarnation)
            assert lease is not None
            self._attempts[lease.key] = self._attempts.get(lease.key, 0) + 1
            idle.busy = True
            log.info("granted lease %d (key %s) to %s",
                     lease.lease_id, lease.key[:12], idle.worker_id)
            try:
                idle.send(
                    {
                        "type": "lease",
                        "lease_id": lease.lease_id,
                        "key": lease.key,
                        "config": lease.config,
                    }
                )
            except (OSError, ProtocolError):
                # same as a lost worker: requeue and forget it
                del self._workers[idle.worker_id]
                self.detector.deregister(idle.worker_id)
                self.board.fail_worker(idle.worker_id)

    # ------------------------------------------------------------------
    # batch execution (called by FabricEngine on the study thread)
    # ------------------------------------------------------------------
    def execute(self, keys: List[str], configs: List[Dict[str, Any]]) -> List[Any]:
        """Run unique cache-miss configs on the fabric; metrics payloads.

        Blocks until every key has an accepted result (workers may come,
        go, and crash in the meantime — the board and detector keep the
        batch converging).  Raises ``RuntimeError`` when the coordinator
        stops mid-batch or a key exhausts its retry budget.
        """
        with self._cond:
            for key, config in zip(keys, configs):
                self._attempts.setdefault(key, 0)
                self.board.submit(key, config)
            self._dispatch_locked()
            while not all(self.board.is_done(k) for k in keys):
                if self._stopped.is_set():
                    raise RuntimeError("coordinator stopped mid-batch")
                self._cond.wait(timeout=0.25)
            payloads = [self.board.take_result(k) for k in keys]
            for key in keys:
                self._attempts.pop(key, None)
        for key, payload in zip(keys, payloads):
            if isinstance(payload, dict) and _ERROR_KEY in payload:
                raise RuntimeError(
                    f"config {key[:12]} failed on every attempt: {payload[_ERROR_KEY]}"
                )
        return payloads

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def _accept_job(self, sock: socket.socket, msg: Dict[str, Any]) -> None:
        job_id = next(self._job_ids)
        version = msg.get("v")
        if version != PROTOCOL_VERSION:
            try:
                send_frame(sock, {"type": "error", "job_id": job_id,
                                  "message": f"protocol v{version} != v{PROTOCOL_VERSION}"})
            except OSError:
                pass
            sock.close()
            return
        try:
            send_frame(sock, {"type": "accepted", "job_id": job_id})
        except OSError:
            sock.close()
            return
        self._jobs.put((job_id, msg.get("spec"), sock, threading.Lock()))

    def _study_loop(self) -> None:
        while True:
            item = self._jobs.get()
            if item is None or self._stopped.is_set():
                return
            job_id, payload, sock, send_lock = item
            try:
                reply = self._run_job(job_id, payload)
            except Exception as exc:  # noqa: BLE001 - reported to the client
                log.exception("job %d failed", job_id)
                reply = {"type": "error", "job_id": job_id,
                         "message": f"{type(exc).__name__}: {exc}"}
            else:
                self.jobs_done += 1
            try:
                with send_lock:
                    send_frame(sock, reply)
            except (OSError, ProtocolError):
                log.warning("client of job %d went away before the result", job_id)
            finally:
                sock.close()

    def _run_job(self, job_id: int, payload: Any) -> Dict[str, Any]:
        """Execute one submitted study through the standard API path."""
        from ..api import cache_for_spec, run_study

        spec = spec_from_jsonable(payload)
        log.info("job %d: %s study on profile %s", job_id, spec.kind, spec.profile)
        engine = FabricEngine(self, cache=cache_for_spec(spec), jobs=spec.jobs)
        try:
            result = run_study(spec, engine=engine)
        finally:
            engine.close()
        return {
            "type": "result",
            "job_id": job_id,
            "kind": result.kind,
            "report": result.report,
            "digest": spec_digest(spec),
            "manifest_path": (
                None if result.manifest_path is None else str(result.manifest_path)
            ),
        }

    # ------------------------------------------------------------------
    def _status(self) -> Dict[str, Any]:
        with self._cond:
            workers = [
                {
                    "worker_id": c.worker_id,
                    "incarnation": c.incarnation,
                    "busy": c.busy,
                }
                for c in sorted(self._workers.values(), key=lambda c: c.worker_id)
            ]
            return {
                "type": "status_ok",
                "workers": workers,
                "pending": self.board.pending_count,
                "active": self.board.active_count,
                "jobs_done": self.jobs_done,
                "completed": self.board.completed,
                "duplicates": self.board.duplicates,
                "requeues": self.board.requeues,
            }


class FabricEngine(ExperimentEngine):
    """An experiment engine whose execution vehicle is the fabric.

    Overrides only the
    :meth:`~repro.experiments.parallel.engine.ExperimentEngine._execute_batch`
    seam — dedup, cache reads, cache writes, and result ordering are
    inherited unchanged, which is the structural half of the
    byte-identity contract (the other half is determinism of the runs
    themselves).  Cache writes therefore happen exactly once,
    coordinator-side, per unique key.
    """

    def __init__(self, coordinator: Coordinator, cache=None, jobs=None) -> None:
        # `jobs` is advisory here (telemetry/provenance): the real
        # concurrency is however many workers are connected
        super().__init__(jobs=jobs, cache=cache)
        self.coordinator = coordinator

    def _execute_batch(self, miss_keys, miss_configs, tel):
        t0 = time.monotonic()
        payloads = self.coordinator.execute(
            miss_keys, [config_to_jsonable(c) for c in miss_configs]
        )
        busy = time.monotonic() - t0
        computed = [metrics_from_jsonable(p) for p in payloads]
        if tel.enabled:
            for key, c in zip(miss_keys, miss_configs):
                tel.event("engine.run", key=key[:12], rms=c.rms, seed=c.seed,
                          seconds=None, worker_pid=None)
        return computed, busy

    def _executor(self):  # pragma: no cover - guard against misuse
        raise RuntimeError("FabricEngine never spawns local pools")
