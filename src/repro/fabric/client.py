"""Client side of the fabric: submit a spec, await the result.

:func:`submit` is what :func:`repro.api.submit_study` and the
``repro submit`` CLI use; :func:`status` backs ``repro serve --status``
style introspection.  Both open one short-lived connection — the
protocol has no client sessions to manage.
"""

from __future__ import annotations

import socket
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..experiments.spec import StudySpec, spec_to_jsonable
from .protocol import PROTOCOL_VERSION, ProtocolError, recv_frame, send_frame

__all__ = ["status", "submit"]


def submit(
    spec: StudySpec,
    address: Tuple[str, int],
    timeout: Optional[float] = None,
):
    """Run a spec on a coordinator; blocks until its result arrives.

    ``timeout`` bounds the *whole* wait (``None`` = indefinitely).
    Raises ``RuntimeError`` when the coordinator reports an error and
    ``socket.timeout`` when the deadline passes.
    """
    from ..api import StudyResult

    sock = socket.create_connection((address[0], int(address[1])), timeout=10.0)
    try:
        sock.settimeout(timeout)
        send_frame(sock, {
            "type": "submit",
            "v": PROTOCOL_VERSION,
            "spec": spec_to_jsonable(spec),
        })
        ack = recv_frame(sock)
        if ack is None or ack.get("type") != "accepted":
            raise ProtocolError(f"submission not acknowledged: {ack!r}")
        msg = recv_frame(sock)
        if msg is None:
            raise ProtocolError("coordinator closed before sending a result")
        if msg.get("type") == "error":
            raise RuntimeError(f"coordinator error: {msg.get('message')}")
        if msg.get("type") != "result":
            raise ProtocolError(f"unexpected reply {msg.get('type')!r}")
        manifest = msg.get("manifest_path")
        return StudyResult(
            kind=msg["kind"],
            spec=spec,
            report=msg["report"],
            data=None,
            manifest_path=None if manifest is None else Path(manifest),
        )
    finally:
        sock.close()


def status(address: Tuple[str, int], timeout: float = 10.0) -> Dict[str, Any]:
    """One status snapshot from a coordinator (workers, queues, jobs)."""
    sock = socket.create_connection((address[0], int(address[1])), timeout=timeout)
    try:
        send_frame(sock, {"type": "status"})
        msg = recv_frame(sock)
        if msg is None or msg.get("type") != "status_ok":
            raise ProtocolError(f"unexpected status reply: {msg!r}")
        return msg
    finally:
        sock.close()
