"""Wire protocol of the fabric: length-prefixed JSON frames.

Every message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON encoding one object with a
``"type"`` field.  Frames are small (specs, configs, metrics), so a
hard :data:`MAX_FRAME` bound doubles as corruption detection — a
desynchronized stream almost always reads an absurd length first.

Message vocabulary (``v`` = :data:`PROTOCOL_VERSION`):

=================  =============  ==========================================
type               direction      payload
=================  =============  ==========================================
``submit``         client → coord ``spec`` (``spec_to_jsonable`` shape), ``v``
``accepted``       coord → client ``job_id``
``result``         coord → client ``job_id``, ``kind``, ``report``,
                                  ``digest``, ``manifest_path`` (or null)
``error``          coord → client ``job_id`` (or null), ``message``
``status``         client → coord —
``status_ok``      coord → client ``workers``, ``pending``, ``active``,
                                  ``jobs_done``
``register``       worker → coord ``worker_id``, ``incarnation``, ``v``
``registered``     coord → worker ``worker_id``
``rejected``       coord → worker ``message`` (stale incarnation, bad ``v``)
``lease``          coord → worker ``lease_id``, ``key``, ``config``
                                  (``config_to_jsonable`` shape)
``lease_result``   worker → coord ``lease_id``, ``worker_id``,
                                  ``incarnation``, ``key``, ``metrics``
``lease_error``    worker → coord ``lease_id``, ``worker_id``,
                                  ``incarnation``, ``key``, ``message``
``heartbeat``      worker → coord ``worker_id``, ``incarnation``
``shutdown``       coord → worker —
=================  =============  ==========================================

Results are deterministic replays of pure functions, so the protocol
needs no payload checksums: a duplicated or re-executed lease produces
the same bytes, and the lease board drops all but the first completion.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

__all__ = [
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "recv_frame",
    "send_frame",
]

#: bump on any incompatible message-shape change
PROTOCOL_VERSION = 1

#: largest accepted frame (a desync guard more than a real limit)
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed, oversized, or truncated frame."""


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one JSON frame (callers serialize access per socket)."""
    body = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a boundary."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one frame; ``None`` when the peer closed cleanly."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME (desync?)")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("a frame must be a JSON object with a 'type' field")
    return message
