"""Heartbeat-based failure detection with incarnation numbers.

The coordinator cannot distinguish a crashed worker from a slow one —
it can only bound how long it is willing to wait.  The
:class:`FailureDetector` keeps, per worker id, the incarnation number
announced at registration and the clock reading of the last heartbeat;
a worker silent for longer than ``timeout`` is *declared* failed (its
leases requeue), which is safe even when the declaration is wrong: runs
are pure functions of their configs, so a late result from a
falsely-declared worker is at worst a duplicate the lease board drops.

Incarnations make restarts unambiguous.  A worker that crashes and
reconnects registers with a **higher** incarnation; the detector treats
that as a new life (old leases are already forfeit), while messages
still in flight from the previous life carry the old incarnation and
are rejected as stale.  The clock is injectable so every timing rule is
unit-testable without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["FailureDetector", "WorkerState"]


@dataclass
class WorkerState:
    """What the detector knows about one live worker."""

    worker_id: str
    incarnation: int
    last_beat: float


class FailureDetector:
    """Tracks worker liveness from heartbeats (not thread-safe; callers lock).

    Parameters
    ----------
    timeout:
        Seconds of silence after which a worker is declared failed.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self, timeout: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if not timeout > 0.0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self.clock = clock
        self._workers: Dict[str, WorkerState] = {}

    # ------------------------------------------------------------------
    def register(self, worker_id: str, incarnation: int) -> bool:
        """Admit a worker life; ``False`` if it is stale or a duplicate.

        A strictly higher incarnation than the one on record replaces it
        (the caller requeues the old life's leases first); an equal or
        lower one is a ghost of a life already superseded.
        """
        state = self._workers.get(worker_id)
        if state is not None and incarnation <= state.incarnation:
            return False
        self._workers[worker_id] = WorkerState(worker_id, incarnation, self.clock())
        return True

    def beat(self, worker_id: str, incarnation: int) -> bool:
        """Record a heartbeat; ``False`` for unknown workers or stale lives."""
        state = self._workers.get(worker_id)
        if state is None or incarnation != state.incarnation:
            return False
        state.last_beat = self.clock()
        return True

    def deregister(self, worker_id: str) -> None:
        """Forget a worker (clean disconnect or failure declaration)."""
        self._workers.pop(worker_id, None)

    # ------------------------------------------------------------------
    def is_alive(self, worker_id: str) -> bool:
        """Whether the worker is registered and within its timeout."""
        state = self._workers.get(worker_id)
        return state is not None and self.clock() - state.last_beat <= self.timeout

    def incarnation(self, worker_id: str) -> Optional[int]:
        """The registered incarnation, or ``None`` when unknown."""
        state = self._workers.get(worker_id)
        return None if state is None else state.incarnation

    def silent(self) -> List[str]:
        """Worker ids whose last heartbeat is older than the timeout."""
        now = self.clock()
        return [
            w.worker_id
            for w in self._workers.values()
            if now - w.last_beat > self.timeout
        ]

    def workers(self) -> List[WorkerState]:
        """A snapshot of every registered worker (sorted by id)."""
        return sorted(self._workers.values(), key=lambda w: w.worker_id)
