"""The fabric worker (``repro work``): lease in, metrics out.

A worker is deliberately dumb: it holds no cache, no manifest, and no
study logic.  It connects to a coordinator, registers with a
``(worker_id, incarnation)`` pair, heartbeats from a side thread, and
then loops — receive a lease, run
:func:`repro.experiments.runner.run_simulation` on the decoded config,
send the metrics back.  All policy (dedup, caching, retry, ordering)
stays coordinator-side, which is what keeps a fabric study
byte-identical to a local run.

On a lost connection the worker reconnects with a **bumped
incarnation**: the coordinator treats the old life as forfeit (its
leases requeue), and any of this worker's in-flight results from the
old life are rejected as stale — the exactly-once story does not
depend on the worker being careful.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from typing import Callable, Optional, Tuple

from ..experiments.config import config_from_jsonable
from .protocol import PROTOCOL_VERSION, ProtocolError, recv_frame, send_frame

__all__ = ["Worker"]

log = logging.getLogger(__name__)


class Worker:
    """One lease-executing process (or thread, in tests).

    Parameters
    ----------
    address:
        The coordinator's ``(host, port)``.
    worker_id:
        Stable identity across reconnects (default: ``host-pid``).
    heartbeat_interval:
        Seconds between heartbeats; keep well under the coordinator's
        ``heartbeat_timeout``.
    reconnect_attempts:
        Times a lost connection is retried (with a bumped incarnation)
        before :meth:`run` gives up.
    on_lease:
        Test hook called after each completed lease with the worker;
        raising from it simulates a mid-study crash.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        worker_id: Optional[str] = None,
        heartbeat_interval: float = 1.0,
        reconnect_attempts: int = 3,
        on_lease: Optional[Callable[["Worker"], None]] = None,
    ) -> None:
        self.address = (address[0], int(address[1]))
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.heartbeat_interval = heartbeat_interval
        self.reconnect_attempts = reconnect_attempts
        self.on_lease = on_lease
        self.incarnation = 0
        #: leases completed across all lives, for tests/UX
        self.leases_executed = 0
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask :meth:`run` to wind down after the current lease."""
        self._stop.set()

    def run(self) -> int:
        """Serve until shut down; returns completed-lease count.

        Each (re)connection is a new incarnation.  A clean ``shutdown``
        frame or :meth:`stop` ends the loop; a lost connection retries
        up to ``reconnect_attempts`` times.
        """
        attempts_left = self.reconnect_attempts
        while not self._stop.is_set():
            self.incarnation += 1
            try:
                clean = self._serve_once()
            except (OSError, ProtocolError) as exc:
                clean = False
                log.warning("worker %s lost coordinator: %s", self.worker_id, exc)
            if clean or self._stop.is_set():
                break
            attempts_left -= 1
            if attempts_left < 0:
                log.error("worker %s giving up after %d reconnects",
                          self.worker_id, self.reconnect_attempts)
                break
            time.sleep(min(1.0, self.heartbeat_interval))
        return self.leases_executed

    # ------------------------------------------------------------------
    def _serve_once(self) -> bool:
        """One connected life; ``True`` on clean shutdown."""
        sock = socket.create_connection(self.address, timeout=10.0)
        sock.settimeout(None)
        send_lock = threading.Lock()
        try:
            with send_lock:
                send_frame(sock, {
                    "type": "register",
                    "worker_id": self.worker_id,
                    "incarnation": self.incarnation,
                    "v": PROTOCOL_VERSION,
                })
            hello = recv_frame(sock)
            if hello is None or hello.get("type") != "registered":
                message = None if hello is None else hello.get("message")
                raise ProtocolError(f"registration rejected: {message}")
            log.info("worker %s (incarnation %d) registered with %s:%d",
                     self.worker_id, self.incarnation, *self.address)
            beat_stop = threading.Event()
            beater = threading.Thread(
                target=self._heartbeat_loop,
                args=(sock, send_lock, beat_stop),
                name=f"heartbeat-{self.worker_id}",
                daemon=True,
            )
            beater.start()
            try:
                return self._lease_loop(sock, send_lock)
            finally:
                beat_stop.set()
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _heartbeat_loop(
        self, sock: socket.socket, send_lock: threading.Lock, stop: threading.Event
    ) -> None:
        beat = {
            "type": "heartbeat",
            "worker_id": self.worker_id,
            "incarnation": self.incarnation,
        }
        while not stop.wait(self.heartbeat_interval):
            try:
                with send_lock:
                    send_frame(sock, beat)
            except (OSError, ProtocolError):
                return  # the lease loop notices the dead socket itself

    def _lease_loop(self, sock: socket.socket, send_lock: threading.Lock) -> bool:
        while True:
            msg = recv_frame(sock)
            if msg is None:
                return self._stop.is_set()
            kind = msg.get("type")
            if kind == "shutdown":
                log.info("worker %s dismissed", self.worker_id)
                return True
            if kind != "lease":
                log.warning("worker %s ignoring unexpected %r", self.worker_id, kind)
                continue
            reply = self._execute_lease(msg)
            with send_lock:
                send_frame(sock, reply)
            if reply["type"] == "lease_result":
                self.leases_executed += 1
                if self.on_lease is not None:
                    self.on_lease(self)
            if self._stop.is_set():
                return True

    def _execute_lease(self, msg) -> dict:
        """Run one leased config; a ``lease_result`` or ``lease_error``."""
        from ..experiments.parallel.cache import metrics_to_jsonable
        from ..experiments.runner import run_simulation

        base = {
            "lease_id": msg["lease_id"],
            "worker_id": self.worker_id,
            "incarnation": self.incarnation,
            "key": msg["key"],
        }
        try:
            config = config_from_jsonable(msg["config"])
            metrics = run_simulation(config)
        except Exception as exc:  # noqa: BLE001 - reported to the coordinator
            log.exception("worker %s failed lease %s", self.worker_id, msg["lease_id"])
            return {"type": "lease_error",
                    "message": f"{type(exc).__name__}: {exc}", **base}
        return {"type": "lease_result",
                "metrics": metrics_to_jsonable(metrics), **base}
