"""The lease board: which config runs where, and exactly-once completion.

A *lease* grants one worker life the right to execute one unique
cache-miss config.  The board is a pure data structure (no sockets, no
threads — callers hold the coordinator lock) with three pools:

* ``pending`` — keys waiting for an idle worker, FIFO so the dispatch
  order matches a local engine's first-appearance execution order;
* ``active`` — leases granted to a specific ``(worker_id,
  incarnation)``;
* ``done`` — completed keys with their metrics payload, drained by the
  batch that asked for them.

Exactly-once is enforced at :meth:`LeaseBoard.complete`: a result is
accepted only while its lease is still active **and** comes from the
exact worker life it was granted to.  Everything else — duplicates
after a requeue, ghosts from a superseded incarnation, keys already
done — returns ``False`` and is dropped.  Because every run is a pure
function of its config, dropping a late duplicate loses nothing: the
accepted copy is byte-identical.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["Lease", "LeaseBoard"]


@dataclass
class Lease:
    """One granted execution right."""

    lease_id: int
    key: str
    config: Dict[str, Any]  # config_to_jsonable payload
    worker_id: str
    incarnation: int


class LeaseBoard:
    """Tracks pending/active/done work (not thread-safe; callers lock)."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._pending: Deque[Tuple[str, Dict[str, Any]]] = deque()
        self._pending_keys: set = set()
        self._active: Dict[int, Lease] = {}
        self._active_keys: set = set()
        self._done: Dict[str, Any] = {}
        #: completions accepted / duplicates dropped, for status & tests
        self.completed = 0
        self.duplicates = 0
        self.requeues = 0

    # -- intake --------------------------------------------------------
    def submit(self, key: str, config: Dict[str, Any]) -> bool:
        """Queue a key for execution; ``False`` if already known."""
        if key in self._pending_keys or key in self._active_keys or key in self._done:
            return False
        self._pending.append((key, config))
        self._pending_keys.add(key)
        return True

    # -- dispatch ------------------------------------------------------
    def next_for(self, worker_id: str, incarnation: int) -> Optional[Lease]:
        """Grant the oldest pending key to a worker life (``None`` if idle)."""
        if not self._pending:
            return None
        key, config = self._pending.popleft()
        self._pending_keys.discard(key)
        lease = Lease(next(self._ids), key, config, worker_id, incarnation)
        self._active[lease.lease_id] = lease
        self._active_keys.add(key)
        return lease

    # -- resolution ----------------------------------------------------
    def complete(
        self, lease_id: int, worker_id: str, incarnation: int, metrics: Any
    ) -> bool:
        """Accept a lease result exactly once.

        ``True`` only when the lease is still active and the reporting
        worker life is the one it was granted to; stale incarnations,
        foreign workers, and post-requeue duplicates all return
        ``False``.
        """
        lease = self._active.get(lease_id)
        if (
            lease is None
            or lease.worker_id != worker_id
            or lease.incarnation != incarnation
        ):
            self.duplicates += 1
            return False
        del self._active[lease_id]
        self._active_keys.discard(lease.key)
        self._done[lease.key] = metrics
        self.completed += 1
        return True

    def abort(self, lease_id: int, payload: Any) -> Optional[str]:
        """Resolve an active lease with a terminal payload (no requeue).

        Used when a key has exhausted its retry budget: the error
        payload lands in ``done`` so the waiting batch can raise instead
        of spinning forever.  Returns the key, or ``None`` when the
        lease is no longer active.
        """
        lease = self._active.pop(lease_id, None)
        if lease is None:
            return None
        self._active_keys.discard(lease.key)
        self._done[lease.key] = payload
        return lease.key

    def fail_lease(self, lease_id: int) -> Optional[str]:
        """Requeue one active lease (worker reported an error); its key."""
        lease = self._active.pop(lease_id, None)
        if lease is None:
            return None
        self._active_keys.discard(lease.key)
        self._pending.appendleft((lease.key, lease.config))
        self._pending_keys.add(lease.key)
        self.requeues += 1
        return lease.key

    def fail_worker(self, worker_id: str) -> List[str]:
        """Requeue every lease held by a (declared-dead) worker; the keys.

        Requeued keys go to the queue *front* so recovery work runs
        before new work — the stalled batch unblocks soonest.
        """
        stale = [l for l in self._active.values() if l.worker_id == worker_id]
        keys = []
        for lease in stale:
            del self._active[lease.lease_id]
            self._active_keys.discard(lease.key)
            self._pending.appendleft((lease.key, lease.config))
            self._pending_keys.add(lease.key)
            self.requeues += 1
            keys.append(lease.key)
        return keys

    # -- inspection ----------------------------------------------------
    def is_done(self, key: str) -> bool:
        """Whether a key has an accepted result waiting to be drained."""
        return key in self._done

    def take_result(self, key: str) -> Any:
        """Drain one completed key's metrics payload (single consumer)."""
        return self._done.pop(key)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def active_count(self) -> int:
        return len(self._active)

    def has_pending(self) -> bool:
        return bool(self._pending)
