"""The perf-regression watchdog: ``repro bench-check``.

``repro bench-perf`` writes a tracked measurement record
(``BENCH_perf.json``).  This module turns that record into a watchdog:
run a fresh benchmark under the *baseline's own parameters* (profile,
case, seed, annealing budget, RMS set) and compare, metric by metric,
with a clear pass / warn / fail verdict.

Two metric classes, two comparison rules:

* **Timing metrics** (kernel events/sec, sims/sec, study wall clocks)
  vary with the machine, so they are compared by *ratio* against two
  configurable tolerances: a regression beyond ``warn_tolerance``
  (default 10%) warns, beyond ``fail_tolerance`` (default 25%) fails.
  Improvements never warn.  Schema-2 records carry a per-backend,
  multi-case kernel section: each backend/case is compared against
  **its own** baseline (never cross-backend), and the recorded
  ``fast``/``reference`` speedup ratio is itself watched, so the fast
  backend losing its algorithmic win trips the watchdog even when both
  backends merely got "a bit slower".  Schema-1 baselines (single
  reference storm) still load and compare.
* **Deterministic counts** (simulation counts, per-scale evaluation
  counts, the tuned settings themselves, the cross-worker identity
  flag) must match the baseline **exactly** — any drift means behavior
  changed, not just speed, and is always a failure.  Sections whose
  parameters differ from the baseline's (e.g. a CI smoke run over a
  subset of RMS designs) are *skipped*, not failed: timings across
  different workloads are not comparable.  Likewise sections a tracked
  baseline predates entirely (e.g. the schema-3 ``fluid`` section
  against a schema-2 record) are skipped — an older baseline is not
  evidence of a regression in a measurement it never made, and the
  fresh benchmark does not even run those sections.

``--warn-only`` downgrades the exit code (never the report) so CI can
surface regressions without gating merges on a noisy runner.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "CheckResult",
    "DEFAULT_FAIL_TOLERANCE",
    "DEFAULT_WARN_TOLERANCE",
    "compare_bench",
    "load_baseline",
    "render_checks",
    "run_current_bench",
    "worst_status",
]

#: regression fraction beyond which a timing metric warns
DEFAULT_WARN_TOLERANCE = 0.10
#: regression fraction beyond which a timing metric fails
DEFAULT_FAIL_TOLERANCE = 0.25

_STATUS_ORDER = {"pass": 0, "skip": 0, "warn": 1, "fail": 2}


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one metric comparison."""

    metric: str
    status: str          # "pass" | "warn" | "fail" | "skip"
    detail: str


def load_baseline(path: "str | Path") -> Dict[str, Any]:
    """Read a ``BENCH_perf.json`` payload."""
    payload = json.loads(Path(path).read_text("utf-8"))
    if "kernel" not in payload or "study" not in payload:
        raise ValueError(f"{path} does not look like a bench-perf record")
    return payload


def run_current_bench(
    baseline: Dict[str, Any],
    jobs: Optional[int] = None,
    rms: Optional[List[str]] = None,
    profile: Optional[str] = None,
) -> Dict[str, Any]:
    """A fresh benchmark under the baseline's recorded parameters.

    ``jobs`` / ``rms`` / ``profile`` override the baseline's values (a
    CI runner may have fewer cores than the machine that wrote the
    baseline); the comparison then skips the sections that are no
    longer parameter-compatible instead of comparing apples to oranges.
    """
    from .benchperf import run_bench

    arm_jobs = [a.get("jobs", 1) for a in baseline.get("study", {}).get("arms", [])]
    kernel_cases = _kernel_cases(baseline)
    storm = kernel_cases.get(("reference", "storm"), {})
    fel = kernel_cases.get(("reference", "fel"), {})
    return run_bench(
        profile=profile if profile is not None else baseline.get("profile", "ci"),
        rms=rms if rms is not None else baseline.get("rms"),
        case_id=baseline.get("case", 1),
        seed=baseline.get("seed", 7),
        sa_iterations=baseline.get("sa_iterations"),
        jobs=jobs if jobs is not None else (max(arm_jobs) if arm_jobs else 4),
        kernel_events=storm.get("events", 200_000),
        fel_events=fel.get("events", 1_000_000),
        # A baseline that predates the fluid section has nothing to
        # compare it against — skip the minutes-long extreme-scale run.
        include_fluid="fluid" in baseline,
    )


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------

def _timing_check(
    metric: str,
    base: Optional[float],
    cur: Optional[float],
    higher_is_better: bool,
    warn_tol: float,
    fail_tol: float,
) -> CheckResult:
    if not base or not cur or base <= 0 or cur <= 0 or math.isnan(base) or math.isnan(cur):
        return CheckResult(metric, "skip", "missing or degenerate measurement")
    # regression = fraction of the baseline's performance lost
    regression = (base - cur) / base if higher_is_better else (cur - base) / base
    direction = "slower" if regression > 0 else "faster"
    detail = (
        f"baseline {base:g}, current {cur:g} "
        f"({abs(regression):.1%} {direction})"
    )
    if regression > fail_tol:
        return CheckResult(metric, "fail", detail + f" — beyond fail tolerance {fail_tol:.0%}")
    if regression > warn_tol:
        return CheckResult(metric, "warn", detail + f" — beyond warn tolerance {warn_tol:.0%}")
    return CheckResult(metric, "pass", detail)


def _exact_check(metric: str, base: Any, cur: Any) -> CheckResult:
    if base == cur:
        shown = repr(base)
        detail = (
            f"matches baseline ({shown})" if len(shown) <= 60 else "matches baseline"
        )
        return CheckResult(metric, "pass", detail)
    return CheckResult(
        metric,
        "fail",
        f"baseline {base!r} != current {cur!r} — deterministic value drifted "
        "(behavior changed, not just speed)",
    )


def _kernel_cases(payload: Dict[str, Any]) -> Dict[tuple, Dict[str, Any]]:
    """The kernel section as ``{(backend, case): record}``.

    Schema 2 reads the per-backend ``backends`` map; a schema-1 record
    (one flat reference storm) maps onto ``("reference", "storm")`` so
    old baselines remain comparable.
    """
    kernel = payload.get("kernel") or {}
    backends = kernel.get("backends")
    if backends is not None:
        return {
            (name, case): rec
            for name, cases in backends.items()
            for case, rec in cases.items()
        }
    if kernel:
        return {("reference", "storm"): kernel}
    return {}


def _study_params(payload: Dict[str, Any]) -> tuple:
    return (
        payload.get("profile"),
        payload.get("case"),
        payload.get("seed"),
        payload.get("sa_iterations"),
        tuple(payload.get("rms") or ()),
    )


def compare_bench(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    warn_tolerance: float = DEFAULT_WARN_TOLERANCE,
    fail_tolerance: float = DEFAULT_FAIL_TOLERANCE,
) -> List[CheckResult]:
    """Compare a fresh bench record against the tracked baseline."""
    if not (0.0 < warn_tolerance <= fail_tolerance):
        raise ValueError("tolerances must satisfy 0 < warn <= fail")
    checks: List[CheckResult] = []

    # -- kernel: per backend/case, each against its own baseline; a
    #    case is parameter-compatible iff its event budget matches ------
    b_cases, c_cases = _kernel_cases(baseline), _kernel_cases(current)
    legacy = "backends" not in (baseline.get("kernel") or {})
    for (backend, case), b_rec in sorted(b_cases.items()):
        name = (
            "kernel.events_per_sec"
            if legacy
            else f"kernel.{backend}.{case}.events_per_sec"
        )
        c_rec = c_cases.get((backend, case))
        if c_rec is None:
            checks.append(
                CheckResult(name, "skip", "no matching backend/case in current record")
            )
        elif b_rec.get("events") != c_rec.get("events"):
            checks.append(CheckResult(name, "skip", "event budgets differ"))
        else:
            checks.append(
                _timing_check(
                    name,
                    b_rec.get("events_per_sec"),
                    c_rec.get("events_per_sec"),
                    True,
                    warn_tolerance,
                    fail_tolerance,
                )
            )
    # The fast backend's algorithmic win is tracked as its own metric:
    # the speedup ratio regressing matters even if both backends slowed
    # down together (same machine noise cancels in the ratio).
    b_speed = (baseline.get("kernel") or {}).get("speedup_fast_vs_reference") or {}
    c_speed = (current.get("kernel") or {}).get("speedup_fast_vs_reference") or {}
    for case in sorted(b_speed):
        checks.append(
            _timing_check(
                f"kernel.speedup_fast_vs_reference.{case}",
                b_speed.get(case),
                c_speed.get(case),
                True,
                warn_tolerance,
                fail_tolerance,
            )
        )

    # -- sims: same base config iff rms/runs and the profile match ------
    b_sims, c_sims = baseline.get("sims", {}), current.get("sims", {})
    sims_compatible = (
        b_sims.get("rms") == c_sims.get("rms")
        and b_sims.get("runs") == c_sims.get("runs")
        and baseline.get("profile") == current.get("profile")
        and baseline.get("seed") == current.get("seed")
    )
    if sims_compatible:
        checks.append(
            _timing_check(
                "sims.sims_per_sec",
                b_sims.get("sims_per_sec"),
                c_sims.get("sims_per_sec"),
                True,
                warn_tolerance,
                fail_tolerance,
            )
        )
    else:
        checks.append(CheckResult("sims.sims_per_sec", "skip", "base configs differ"))

    # -- fluid: skip when the baseline predates the section --------------
    b_fluid, c_fluid = baseline.get("fluid"), current.get("fluid")
    if b_fluid is None:
        checks.append(
            CheckResult(
                "fluid",
                "skip",
                "section absent from baseline record (pre-fluid schema) "
                "— regenerate the baseline to start tracking it",
            )
        )
    elif c_fluid is None:
        checks.append(
            CheckResult("fluid", "skip", "section absent from current record")
        )
    else:
        b_ov, c_ov = b_fluid.get("overlap", {}), c_fluid.get("overlap", {})
        ov_params = ("rms", "n_resources", "n_schedulers", "n_estimators", "horizon")
        if any(b_ov.get(k) != c_ov.get(k) for k in ov_params):
            checks.append(
                CheckResult("fluid.overlap", "skip", "overlap configs differ")
            )
        else:
            checks.append(
                _exact_check(
                    "fluid.overlap.F_identical", True, bool(c_ov.get("F_identical"))
                )
            )
            checks.append(
                _exact_check(
                    "fluid.overlap.kernel_events",
                    {
                        "discrete": (b_ov.get("discrete") or {}).get("kernel_events"),
                        "fluid": (b_ov.get("fluid") or {}).get("kernel_events"),
                    },
                    {
                        "discrete": (c_ov.get("discrete") or {}).get("kernel_events"),
                        "fluid": (c_ov.get("fluid") or {}).get("kernel_events"),
                    },
                )
            )
            checks.append(
                _timing_check(
                    "fluid.overlap.speedup",
                    b_ov.get("speedup"),
                    c_ov.get("speedup"),
                    True,
                    warn_tolerance,
                    fail_tolerance,
                )
            )
        b_ex, c_ex = b_fluid.get("extreme", {}), c_fluid.get("extreme", {})
        if any(
            b_ex.get(k) != c_ex.get(k) for k in ("profile", "scale", "n_resources")
        ):
            checks.append(
                CheckResult("fluid.extreme", "skip", "extreme configs differ")
            )
        else:
            checks.append(
                _exact_check(
                    "fluid.extreme.kernel_events",
                    (b_ex.get("fluid") or {}).get("kernel_events"),
                    (c_ex.get("fluid") or {}).get("kernel_events"),
                )
            )
            checks.append(
                _timing_check(
                    "fluid.extreme.event_reduction_vs_discrete",
                    b_ex.get("event_reduction_vs_discrete"),
                    c_ex.get("event_reduction_vs_discrete"),
                    True,
                    warn_tolerance,
                    fail_tolerance,
                )
            )

    # -- study: full parameter identity required ------------------------
    if _study_params(baseline) != _study_params(current):
        checks.append(
            CheckResult(
                "study",
                "skip",
                "study parameters differ (profile/case/seed/sa_iterations/rms) "
                "— wall clocks and counts not comparable",
            )
        )
        return checks

    b_study, c_study = baseline.get("study", {}), current.get("study", {})
    b_base, c_base = b_study.get("baseline", {}), c_study.get("baseline", {})
    checks.append(
        _timing_check(
            "study.baseline.seconds",
            b_base.get("seconds"),
            c_base.get("seconds"),
            False,
            warn_tolerance,
            fail_tolerance,
        )
    )
    checks.append(
        _exact_check(
            "study.baseline.simulations",
            b_base.get("simulations"),
            c_base.get("simulations"),
        )
    )

    c_arms = {a.get("jobs"): a for a in c_study.get("arms", [])}
    for b_arm in b_study.get("arms", []):
        jobs = b_arm.get("jobs")
        name = f"study.arm[jobs={jobs}]"
        c_arm = c_arms.get(jobs)
        if (
            c_arm is None
            or c_arm.get("warm_start") != b_arm.get("warm_start")
            or c_arm.get("speculation") != b_arm.get("speculation")
        ):
            checks.append(CheckResult(name, "skip", "no matching arm in current record"))
            continue
        checks.append(
            _timing_check(
                f"{name}.seconds",
                b_arm.get("seconds"),
                c_arm.get("seconds"),
                False,
                warn_tolerance,
                fail_tolerance,
            )
        )
        checks.append(
            _exact_check(
                f"{name}.simulations",
                b_arm.get("simulations"),
                c_arm.get("simulations"),
            )
        )
        checks.append(
            _exact_check(
                f"{name}.evaluations_by_scale",
                b_arm.get("evaluations_by_scale"),
                c_arm.get("evaluations_by_scale"),
            )
        )
        checks.append(
            _exact_check(f"{name}.tuned", b_arm.get("tuned"), c_arm.get("tuned"))
        )

    checks.append(
        _exact_check(
            "study.tuned_points_identical_across_jobs",
            True,
            bool(c_study.get("tuned_points_identical_across_jobs")),
        )
    )
    return checks


def worst_status(checks: List[CheckResult]) -> str:
    """Overall verdict: the most severe individual status."""
    worst = "pass"
    for c in checks:
        if _STATUS_ORDER.get(c.status, 0) > _STATUS_ORDER[worst]:
            worst = c.status
    return worst


def render_checks(
    checks: List[CheckResult],
    warn_tolerance: float,
    fail_tolerance: float,
    warn_only: bool = False,
) -> str:
    """The human-readable watchdog report."""
    mark = {"pass": "ok  ", "warn": "WARN", "fail": "FAIL", "skip": "skip"}
    lines = [
        "perf watchdog — fresh bench-perf vs tracked baseline "
        f"(warn >{warn_tolerance:.0%}, fail >{fail_tolerance:.0%} timing regression; "
        "counts compared exactly)"
    ]
    for c in checks:
        lines.append(f"  [{mark.get(c.status, c.status)}] {c.metric}: {c.detail}")
    verdict = worst_status(checks)
    suffix = ""
    if verdict == "fail" and warn_only:
        suffix = " (--warn-only: exit status not enforced)"
    lines.append(f"verdict: {verdict.upper()}{suffix}")
    return "\n".join(lines)
