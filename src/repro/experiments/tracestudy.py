"""Causal-tracing study: ``repro trace``.

Runs the Case-1 scaling path with a :class:`TracePlan` attached to
every config, so each (RMS, scale) run carries sampled span DAGs and
per-message-class latency histograms.  On top of the per-run payloads
this driver renders:

* per-design **phase-share tables** — every sampled job's turnaround
  decomposed into named critical-path phases (submit wait, scheduler
  queue, decision service, transfer/dispatch transit, resource queue,
  service, recovery wait), one row per scale;
* the **decomposition invariant** — per-job phase sums must telescope
  to the recorded turnaround (floating-point tolerance); the report
  carries a grep-able yes/VIOLATION line;
* the **growth ranking** — which phase's *share* of turnaround grows
  fastest with the scale factor k, the per-job twin of ``repro
  attrib``'s per-component G(k) slopes;
* **latency quantiles** — p50/p95/p99 transit delay per message class,
  merged across scales from the bucketed histograms;
* **exports** — per-phase CSV, per-run JSONL (full trace payloads),
  and a Prometheus text exposition via the shared
  :mod:`~repro.telemetry.promexport` path.

All runs go through the engine as one batch (results independent of
``--jobs``), and the study checkpoints into
``<cache>/manifests/trace.json`` in the same manifest shape the other
studies use.

Cache interaction mirrors ``repro series``: a passive plan (zero charge
rate) shares cache keys with untraced runs by design, so an entry
cached by an earlier sweep may lack the trace payload.
:class:`TraceAwareCache` treats such an entry as a miss so the run is
recomputed (byte-identical by the passive-plan contract) and the entry
upgraded in place.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO

from ..rms.registry import rms_names
from ..telemetry.critpath import (
    PHASES,
    aggregate_phases,
    growth_ranking,
    latency_quantiles,
    merge_latency,
    phase_shares,
)
from ..telemetry.promexport import attribution_labels, write_metric
from ..telemetry.tracing import (
    TracePlan,
    resolve_trace_plan,
    trace_plan_to_jsonable,
)
from .cases import get_case
from .config import PROFILES, ScaleProfile, SimulationConfig
from .parallel.cache import RunCache
from .parallel.hashing import canonical_json
from .parallel.manifest import StudyManifest
from .runner import RunMetrics, run_simulation
from .tabulate import format_table

__all__ = [
    "RESIDUAL_TOLERANCE",
    "TraceAwareCache",
    "TraceStudyPoint",
    "TraceStudyResult",
    "default_trace_plan",
    "export_csv",
    "export_jsonl",
    "export_prometheus",
    "run_trace_study",
    "trace_plan_key",
    "trace_report",
]

#: absolute tolerance on |fsum(phases) - turnaround| per job.  The
#: decomposition telescopes, so the only error source is rounding of
#: the interval differences — parts in 1e-12 of the O(1e4) turnarounds.
RESIDUAL_TOLERANCE = 1e-6


def default_trace_plan(
    sample: Optional[float] = None,
    charge_rate: Optional[float] = None,
    max_events: Optional[int] = None,
) -> TracePlan:
    """The standard study plan: trace every job unless told otherwise.

    CI-profile runs submit a few hundred jobs per point, so full
    sampling stays cheap; explicit knobs and the ``REPRO_TRACE_*``
    environment variables override (see :func:`resolve_trace_plan`).
    The default charge rate is the dataclass's nonzero one — the study
    *charges* its observation to ``g.trace`` by default, same contract
    as an active monitor plan.
    """
    return resolve_trace_plan(
        sample=sample,
        charge_rate=charge_rate,
        max_events=max_events,
        default_sample=1.0,
    )


def trace_plan_key(plan: TracePlan) -> str:
    """A short stable digest of a plan (manifest key component)."""
    digest = hashlib.sha256(
        canonical_json(trace_plan_to_jsonable(plan))
    ).hexdigest()
    return digest[:12]


class TraceAwareCache(RunCache):
    """A run cache that refuses trace-less hits for traced configs.

    Passive trace plans hash to the same key as untraced runs, so an
    entry cached by an earlier sweep may lack the trace payload this
    study needs.  Such an entry is still *valid* — just incomplete for
    this consumer — so it reads as a miss here: the run is recomputed
    (byte-identical by the passive-plan contract) and the rewritten
    entry carries the payload for both consumers.
    """

    def get(
        self, config: SimulationConfig, key: Optional[str] = None
    ) -> Optional[RunMetrics]:
        metrics = super().get(config, key)
        if (
            metrics is not None
            and metrics.trace is None
            and config.trace.is_enabled
        ):
            self.hits -= 1
            self.misses += 1
            return None
        return metrics


@dataclass(frozen=True)
class TraceStudyPoint:
    """One (RMS, scale) run with its sampled trace payload."""

    rms: str
    scale: float
    metrics: RunMetrics

    @property
    def trace(self) -> Optional[Dict[str, Any]]:
        return self.metrics.trace

    @property
    def phases(self) -> Dict[str, Any]:
        """The run's phase aggregate (``aggregate_phases`` shape)."""
        if self.trace is None:
            return {}
        return aggregate_phases(self.trace)

    @property
    def shares(self) -> Dict[str, float]:
        """Each phase's share of the run's summed turnaround."""
        agg = self.phases
        if not agg:
            return {}
        return phase_shares(agg["phases"])

    @property
    def trace_g(self) -> float:
        """The run's total ``g.trace`` recording overhead."""
        attribution = self.metrics.attribution or {}
        return math.fsum(
            v for k, v in attribution.items() if k.startswith("g.trace")
        )


@dataclass(frozen=True)
class TraceStudyResult:
    """Everything ``repro trace`` measured."""

    profile: str
    seed: int
    plan: TracePlan
    #: traffic plan the runs executed under (``None`` means discrete)
    fluid: Optional[Any] = None
    #: RMS name -> points in ascending scale order
    traces: Dict[str, List[TraceStudyPoint]] = field(default_factory=dict)
    manifest_path: Optional[Path] = None


def run_trace_study(
    profile: str = "ci",
    rms: Optional[Sequence[str]] = None,
    seed: int = 7,
    plan: Optional[TracePlan] = None,
    sample: Optional[float] = None,
    charge_rate: Optional[float] = None,
    max_events: Optional[int] = None,
    engine=None,
    manifest_path: "str | Path | None" = None,
    fluid=None,
    faults=None,
) -> TraceStudyResult:
    """Run the causal-tracing study: Case-1 scaling under a trace plan.

    Parameters
    ----------
    plan:
        Explicit :class:`TracePlan`; when ``None``, the default study
        plan is resolved (``sample`` / ``charge_rate`` / ``max_events``
        override its knobs, then ``REPRO_TRACE_*`` env vars, then the
        trace-everything default).
    engine:
        Optional :class:`~repro.experiments.parallel.ExperimentEngine`;
        all runs go through it as **one** batch, so worker count cannot
        affect results.  Pair it with :class:`TraceAwareCache` so
        trace-less cache entries are upgraded rather than served.
    manifest_path:
        When given, each design's points are checkpointed there in the
        study-manifest shape the other study commands read.
    fluid:
        Optional :class:`~repro.fluid.plan.FluidPlan` applied to every
        run — tracing composes with the fluid traffic mode (job-plane
        messages stay discrete there, so span DAGs are unchanged).
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` applied to every
        run — crash/recovery paths then show up as ``recovery_wait``.
    """
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    names = list(rms) if rms else rms_names()
    if plan is None:
        plan = default_trace_plan(
            sample=sample, charge_rate=charge_rate, max_events=max_events
        )
    case = get_case(1)

    configs = [
        case.config_for(
            name, k, prof, seed=seed, trace=plan, fluid=fluid, faults=faults
        )
        for name in names
        for k in prof.scales
    ]
    if engine is not None:
        metrics_list = engine.run_many(configs)
    else:
        metrics_list = [run_simulation(c) for c in configs]

    it = iter(metrics_list)
    traces: Dict[str, List[TraceStudyPoint]] = {}
    for name in names:
        traces[name] = [
            TraceStudyPoint(rms=name, scale=float(k), metrics=next(it))
            for k in prof.scales
        ]

    result = TraceStudyResult(
        profile=prof.name,
        seed=seed,
        plan=plan,
        fluid=fluid,
        traces=traces,
        manifest_path=Path(manifest_path) if manifest_path else None,
    )
    if result.manifest_path is not None:
        _write_manifest(result)
    return result


def _write_manifest(result: TraceStudyResult) -> None:
    """Checkpoint the study in the shared study-manifest shape."""
    manifest = StudyManifest(result.manifest_path)
    digest = trace_plan_key(result.plan)
    fluid = ""
    if result.fluid is not None and getattr(result.fluid, "is_fluid", False):
        fluid = f":fluid{result.fluid.mode}-fan{result.fluid.aggregator_fanout}"
    for name, points in result.traces.items():
        key = f"{result.profile}:seed{result.seed}:trace{digest}{fluid}:case1:{name}"
        payload = {
            "trace_plan": trace_plan_to_jsonable(result.plan),
            "result": {
                "points": [
                    {
                        "scale": p.scale,
                        "record": {
                            "F": p.metrics.record.F,
                            "G": p.metrics.record.G,
                            "H": p.metrics.record.H,
                        },
                        "attribution": p.metrics.attribution or {},
                        "phases": p.phases,
                        "shares": p.shares,
                    }
                    for p in points
                ]
            },
        }
        manifest.mark_done(key, payload)


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------

def _present_phases(points: Sequence[TraceStudyPoint]) -> List[str]:
    """Phases that occur anywhere across the points, in canonical order."""
    seen = {name for p in points for name in p.phases.get("phases", {})}
    return [name for name in PHASES if name in seen]


def trace_report(result: TraceStudyResult, precision: int = 3) -> str:
    """Render the study: per-design phase-share tables, the telescoping
    invariant, the share-growth ranking, and latency quantiles."""
    plan = result.plan
    parts: List[str] = [
        f"trace plan {trace_plan_key(plan)}: "
        f"sample={plan.sample:g}, charge_rate={plan.charge_rate:g}, "
        f"max_events={plan.max_events} "
        f"(profile {result.profile}, seed {result.seed})"
    ]

    worst_residual = 0.0
    total_sampled = 0
    total_dropped = 0
    for name, points in result.traces.items():
        columns = _present_phases(points)
        rows = []
        growth_points = []
        for p in points:
            agg = p.phases
            if not agg:
                continue
            shares = p.shares
            if agg["max_residual"] > worst_residual:
                worst_residual = agg["max_residual"]
            trace = p.trace or {}
            total_sampled += trace.get("sampled", 0)
            total_dropped += trace.get("dropped", 0)
            growth_points.append((p.scale, shares))
            rows.append(
                [p.scale, agg["jobs"], agg["incomplete"]]
                + [shares.get(c, 0.0) for c in columns]
                + [p.trace_g]
            )
        parts.append(f"\n{name} — phase shares of turnaround per scale:")
        parts.append(
            format_table(
                ["k", "jobs", "incompl"] + columns + ["g.trace"],
                rows,
                precision=precision,
            )
        )
        ranking = growth_ranking(growth_points)
        if ranking:
            top = ", ".join(
                f"{n} ({slope:+.2e}/k)" for n, slope in ranking[:3]
            )
            parts.append(f"  share growth with k (top 3): {top}")

        merged = merge_latency(p.trace for p in points if p.trace is not None)
        if merged:
            parts.append(f"  {name} — transit latency by message class (all scales):")
            parts.append(
                format_table(
                    ["class", "count", "mean", "p50", "p95", "p99", "max"],
                    latency_quantiles(merged),
                    precision=precision,
                )
            )

    parts.append(
        f"\nsampled jobs: {total_sampled}, spans dropped past the "
        f"per-job bound: {total_dropped}"
    )
    parts.append(
        "phase decomposition sums to turnaround: "
        + (
            f"yes (worst residual {worst_residual:.2e})"
            if worst_residual <= RESIDUAL_TOLERANCE
            else f"NO — VIOLATION (worst residual {worst_residual:.2e})"
        )
    )
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------------

def export_csv(result: TraceStudyResult, fh: TextIO) -> int:
    """One CSV row per (rms, scale, phase); returns the row count."""
    writer = csv.writer(fh)
    writer.writerow(
        ["rms", "scale", "jobs", "incomplete", "phase", "seconds", "share"]
    )
    n = 0
    for name, points in result.traces.items():
        for p in points:
            agg = p.phases
            if not agg:
                continue
            shares = p.shares
            for phase in PHASES:
                if phase not in agg["phases"]:
                    continue
                writer.writerow(
                    [
                        name,
                        p.scale,
                        agg["jobs"],
                        agg["incomplete"],
                        phase,
                        agg["phases"][phase],
                        shares.get(phase, 0.0),
                    ]
                )
                n += 1
    return n


def export_jsonl(result: TraceStudyResult, fh: TextIO) -> int:
    """One JSON line per run (full trace payload); returns line count."""
    n = 0
    for name, points in result.traces.items():
        for p in points:
            fh.write(
                json.dumps(
                    {
                        "rms": name,
                        "scale": p.scale,
                        "profile": result.profile,
                        "seed": result.seed,
                        "trace_plan": trace_plan_to_jsonable(result.plan),
                        "record": {
                            "F": p.metrics.record.F,
                            "G": p.metrics.record.G,
                            "H": p.metrics.record.H,
                        },
                        "phases": p.phases,
                        "shares": p.shares,
                        "trace": p.trace,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            n += 1
    return n


def export_prometheus(result: TraceStudyResult, fh: TextIO) -> int:
    """Prometheus text exposition of the study's summary samples.

    Phase seconds and shares per (rms, scale), the ``g.trace``
    recording overhead with its attribution labels, and per-message-
    class latency quantiles.  Returns the sample count.
    """
    points = [p for pts in result.traces.values() for p in pts]
    n = 0
    n += write_metric(
        fh,
        "repro_trace_phase_seconds_total",
        "counter",
        (
            (
                {
                    "rms": p.rms,
                    "scale": p.scale,
                    "profile": result.profile,
                    "phase": phase,
                },
                seconds,
            )
            for p in points
            for phase, seconds in sorted(p.phases.get("phases", {}).items())
        ),
    )
    n += write_metric(
        fh,
        "repro_trace_phase_share",
        "gauge",
        (
            (
                {
                    "rms": p.rms,
                    "scale": p.scale,
                    "profile": result.profile,
                    "phase": phase,
                },
                share,
            )
            for p in points
            for phase, share in sorted(p.shares.items())
        ),
    )
    n += write_metric(
        fh,
        "repro_trace_jobs_sampled",
        "gauge",
        (
            (
                {"rms": p.rms, "scale": p.scale, "profile": result.profile},
                (p.trace or {}).get("sampled"),
            )
            for p in points
        ),
    )
    n += write_metric(
        fh,
        "repro_trace_overhead_total",
        "counter",
        (
            (
                {
                    "rms": p.rms,
                    "scale": p.scale,
                    "profile": result.profile,
                    **attribution_labels(key),
                },
                value,
            )
            for p in points
            for key, value in sorted((p.metrics.attribution or {}).items())
            if key.startswith("g.trace")
        ),
    )
    n += write_metric(
        fh,
        "repro_trace_latency",
        "gauge",
        (
            (
                {
                    "rms": p.rms,
                    "scale": p.scale,
                    "profile": result.profile,
                    "message_class": kind,
                    "quantile": q,
                },
                snap.get(q),
            )
            for p in points
            for kind, snap in sorted((p.trace or {}).get("latency", {}).items())
            for q in ("p50", "p95", "p99")
        ),
    )
    return n
