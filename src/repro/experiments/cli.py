"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro figure 2                  # Figure 2, ci profile
    python -m repro figure 4 --profile full   # paper-scale (slow)
    python -m repro figure 2 --jobs 4         # fan runs over 4 processes
    python -m repro figure 2 --resume         # restart a killed sweep
    python -m repro figure 2 --telemetry      # record spans/metrics
    python -m repro figure 6 --csv out.csv    # also dump the series
    python -m repro figure 2 --speculate 4    # speculative batched annealing
    python -m repro figure 2 --no-warm-start  # cold-start every scale walk
    python -m repro figure 2 --flight-recorder # forensic rings + crash bundles
    python -m repro compare                   # quick 7-design comparison
    python -m repro faults                    # churn study: G(k) under faults
    python -m repro faults --mttf 3000        # tune the crash rate
    python -m repro faults --fault-plan p.json --events-out ev.jsonl
    python -m repro series                    # time-resolved E(t)/G(t) study
    python -m repro series --probe-interval 30,60,120 --charge-rate 0.05
    python -m repro series --csv s.csv --prom s.prom  # exports
    python -m repro trace                     # causal job tracing study
    python -m repro trace --trace-sample 0.25 --jsonl t.jsonl
    python -m repro serve --port 7464         # fabric coordinator
    python -m repro work 127.0.0.1:7464       # attach one fabric worker
    python -m repro submit compare --address 127.0.0.1:7464
    python -m repro knobs                     # the REPRO_* knob table
    python -m repro watch --once              # snapshot a running study
    python -m repro bench-perf                # perf record -> BENCH_perf.json
    python -m repro bench-check               # perf watchdog vs the record
    python -m repro attrib                    # which component makes G(k) grow
    python -m repro telemetry summary         # inspect the latest run
    python -m repro telemetry tuner           # annealing convergence
    python -m repro list                      # what can be regenerated

Every simulation-running subcommand is a thin shell around the same
pipeline: its flags build a frozen
:class:`~repro.experiments.spec.StudySpec`
(:func:`~repro.experiments.cliargs.spec_from_args`), the spec runs
through :func:`repro.api.run_study`, and the rendered report prints.
The shared flags are declared once in :mod:`~repro.experiments.cliargs`
with defaults pulled from the dataclass, so the parser and the spec
cannot drift.

Simulations execute through the parallel experiment engine: ``--jobs
N`` (or ``REPRO_JOBS``) fans independent runs over worker processes,
results persist in a content-addressed run cache (``.repro-cache/`` or
``--cache-dir``; ``--no-cache`` skips reads but still writes), and
``--resume`` checkpoints completed points so a killed sweep restarts
where it left off.

``repro serve`` starts the distributed-fabric coordinator; ``repro
work HOST:PORT`` attaches lease-executing workers; ``repro submit``
ships a StudySpec to a coordinator and prints the identical report a
local run would.  The same spec run locally with ``--jobs N`` or
through the fabric produces byte-identical cache entries and
manifests.

``--telemetry`` (or ``REPRO_TELEMETRY=1``) records structured spans,
events, and metrics for the whole invocation into a fresh directory
under ``telemetry/`` (``--telemetry-dir`` to relocate); ``repro
telemetry {summary,spans,tuner}`` renders those files afterwards.
``--flight-recorder`` (or ``REPRO_FLIGHT_RECORDER=1``) additionally
keeps rolling forensic ring buffers and dumps a post-mortem JSON
bundle under ``flight-recorder/`` when a run crashes, is cancelled, or
trips an invariant.  ``repro attrib`` renders the per-component F/G/H
overhead decomposition a study records; ``repro bench-check`` is the
perf-regression watchdog against the tracked ``BENCH_perf.json``.
``repro knobs`` prints the full ``REPRO_*`` environment-knob table
(one registry backs every lookup: flag > env > default).

Logging verbosity is ``--log-level`` / ``REPRO_LOG_LEVEL`` (default
``warning``).
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from .. import api
from ..envknobs import get_bool, get_str
from ..telemetry import Telemetry, activate
from ..telemetry import flightrec
from .benchcheck import DEFAULT_FAIL_TOLERANCE, DEFAULT_WARN_TOLERANCE
from .cliargs import (
    DEFAULT_TELEMETRY_DIR,
    engine_parent,
    fault_plan_parent,
    spec_from_args,
    study_parent,
)
from .config import PROFILES
from .parallel import ExperimentEngine
from .reporting import format_table, write_csv
from .reproduce import DEFAULT_SPECULATION_WIDTH, Study
from .spec import KINDS, StudySpec, spec_from_jsonable

__all__ = ["main"]

#: default TCP port of `repro serve` (any free port with --port 0)
DEFAULT_FABRIC_PORT = 7464


def _cmd_list(args: argparse.Namespace) -> int:
    rows = [
        [2, "Case 1", "G(k), RP scaled by network size"],
        [3, "Case 2", "G(k), RP scaled by service rate"],
        [4, "Case 3", "G(k), RMS scaled by estimators"],
        [5, "Case 4", "G(k), RMS scaled by L_p"],
        [6, "Case 3", "throughput under estimator scaling"],
        [7, "Case 3", "response times under estimator scaling"],
    ]
    print(format_table(["figure", "experiment", "series"], rows))
    print("\n(`repro faults` runs the Case-1 churn study — G(k) under resource faults)")
    print(f"\nprofiles: {', '.join(sorted(PROFILES))}")
    profile = PROFILES[args.profile]
    print(
        f"{profile.name}: {profile.base_resources} resources x "
        f"{profile.base_schedulers} schedulers at k=1, "
        f"scales {list(profile.scales)}, horizon {profile.horizon:g}"
    )
    return 0


def _load_fault_plan(path: str):
    """Parse a ``FaultPlan`` JSON file (``plan_to_jsonable`` shape).

    Returns ``None`` (after printing a one-line error) when the file is
    missing or malformed; callers turn that into exit code 2.
    """
    from ..faults import plan_from_jsonable

    try:
        payload = json.loads(Path(path).read_text("utf-8"))
        return plan_from_jsonable(payload)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot read fault plan {path}: {exc}", file=sys.stderr)
        return None


def _cache_root(args: argparse.Namespace) -> str:
    """The run-cache directory this invocation uses (flag > env > default)."""
    from .parallel.cache import DEFAULT_CACHE_DIR

    return get_str(
        "REPRO_CACHE_DIR",
        override=getattr(args, "cache_dir", None),
        default=DEFAULT_CACHE_DIR,
    )


def _make_engine(spec: StudySpec) -> ExperimentEngine:
    """Build the experiment engine a spec asks for.

    Stays in this module (rather than always delegating to
    :func:`repro.api.engine_for_spec`) so the engine class is this
    module's patchable global.
    """
    return ExperimentEngine(jobs=spec.jobs, cache=api.cache_for_spec(spec))


@contextmanager
def _telemetry_scope(args: argparse.Namespace) -> Iterator[Optional[Telemetry]]:
    """Activate a per-invocation telemetry session when one was requested.

    ``--telemetry`` or ``REPRO_TELEMETRY=1`` opts in; each invocation
    gets a fresh timestamped directory under ``--telemetry-dir`` (or
    ``$REPRO_TELEMETRY_DIR``, default ``telemetry/``) so successive runs
    never interleave.  Yields ``None`` when telemetry is off.
    """
    enabled = getattr(args, "telemetry", False) or get_bool("REPRO_TELEMETRY")
    if not enabled:
        yield None
        return
    root = Path(
        get_str(
            "REPRO_TELEMETRY_DIR",
            override=getattr(args, "telemetry_dir", None),
            default=DEFAULT_TELEMETRY_DIR,
        )
    )
    run_dir = root / time.strftime(f"run-%Y%m%d-%H%M%S-{os.getpid()}")
    session = Telemetry(run_dir)
    try:
        with activate(session):
            yield session
    finally:
        session.close()
        print(f"telemetry written to {run_dir}", file=sys.stderr)


@contextmanager
def _flight_scope(args: argparse.Namespace) -> Iterator[Optional[flightrec.FlightRecorder]]:
    """Enable the flight recorder when requested (flag or env).

    Enablement deliberately goes through the environment:
    ``ExperimentEngine`` pool workers inherit ``REPRO_FLIGHT_RECORDER``
    and record/dump independently (bundles are PID-stamped), while the
    parent process records its own inline window.  A cancellation that
    no run-level handler already bundled is dumped here.  Yields
    ``None`` when recording is off.
    """
    requested = getattr(args, "flight_recorder", False)
    if not requested and not get_bool(flightrec.ENV_ENABLE):
        yield None
        return
    flight_dir = getattr(args, "flight_dir", None)
    if flight_dir:
        os.environ[flightrec.ENV_DIR] = flight_dir
    os.environ[flightrec.ENV_ENABLE] = "1"
    rec = flightrec.enable(flight_dir)
    try:
        yield rec
    except KeyboardInterrupt as exc:
        if not getattr(exc, "_flightrec_dumped", False):
            rec.dump("run.cancelled", error=exc, context={"where": "cli"})
            exc._flightrec_dumped = True
        raise
    finally:
        if rec.bundles:
            for path in rec.bundles:
                print(f"flight-recorder bundle written: {path}", file=sys.stderr)
        flightrec.disable()


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.number not in api.FIGURE_QUANTITY:
        print(f"error: the paper has figures 2-7, not {args.number}", file=sys.stderr)
        return 2
    spec = spec_from_args("figure", args)
    with _telemetry_scope(args), _flight_scope(args), _make_engine(spec) as engine:
        result = api.run_study(spec, engine=engine, study_cls=Study)
    print(result.report)
    if args.csv:
        quantity = spec.quantity or api.FIGURE_QUANTITY[spec.figure_number]
        write_csv(result.data, args.csv, quantity)
        print(f"series written to {args.csv}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    plan = None
    if args.fault_plan:
        plan = _load_fault_plan(args.fault_plan)
        if plan is None:
            return 2
    spec = spec_from_args("compare", args, faults=plan)
    with _telemetry_scope(args), _flight_scope(args), _make_engine(spec) as engine:
        result = api.run_study(spec, engine=engine)
    print(result.report)
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    plan = None
    if args.fault_plan:
        plan = _load_fault_plan(args.fault_plan)
        if plan is None:
            return 2
    spec = spec_from_args("faults", args, faults=plan)
    with _telemetry_scope(args), _flight_scope(args), _make_engine(spec) as engine:
        result = api.run_study(spec, engine=engine)
    print(result.report)
    print(
        f"\nmanifest written to {result.manifest_path} "
        f"(decompose with `repro attrib {result.manifest_path}`)"
    )
    if args.events_out:
        _dump_fault_events(result.data, args.events_out)
    return 0


def _dump_fault_events(result, path: str) -> None:
    """Re-run the study's smallest config in-process and dump the
    injector's fault-event timeline as JSONL (one event per line)."""
    from .cases import get_case
    from .runner import build_system

    name = next(iter(result.series))
    profile = PROFILES[result.profile]
    config = get_case(1).config_for(
        name, profile.scales[0], profile, seed=result.seed, faults=result.plan
    )
    system = build_system(config)
    system.sim.run(until=config.horizon + config.drain)
    events = [] if system.injector is None else system.injector.events
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    print(f"{len(events)} fault events ({name}, k={profile.scales[0]:g}) written to {path}")


def _cmd_series(args: argparse.Namespace) -> int:
    from .seriesstudy import export_csv, export_jsonl, export_prometheus

    try:
        spec = spec_from_args("series", args)
    except ValueError:
        print(
            f"error: --probe-interval must be comma-separated numbers, "
            f"got {args.probe_interval!r}",
            file=sys.stderr,
        )
        return 2
    with _telemetry_scope(args), _flight_scope(args), _make_engine(spec) as engine:
        result = api.run_study(spec, engine=engine)
    print(result.report)
    print(
        f"\nmanifest written to {result.manifest_path} "
        f"(decompose with `repro attrib {result.manifest_path}`, "
        f"tail with `repro watch {result.manifest_path}`)"
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8", newline="") as fh:
            n = export_csv(result.data, fh)
        print(f"{n} window rows written to {args.csv}")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            n = export_jsonl(result.data, fh)
        print(f"{n} run series written to {args.jsonl}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            n = export_prometheus(result.data, fh)
        print(f"{n} Prometheus samples written to {args.prom}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .tracestudy import (
        default_trace_plan,
        export_csv,
        export_jsonl,
        export_prometheus,
    )

    faults = None
    if args.fault_plan:
        faults = _load_fault_plan(args.fault_plan)
        if faults is None:
            return 2
    # pre-validate the trace knobs so a bad flag is a one-line error
    try:
        default_trace_plan(
            sample=args.trace_sample,
            charge_rate=args.trace_charge,
            max_events=args.max_events,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spec = spec_from_args("trace", args, faults=faults)
    with _telemetry_scope(args), _flight_scope(args), _make_engine(spec) as engine:
        result = api.run_study(spec, engine=engine)
    print(result.report)
    print(
        f"\nmanifest written to {result.manifest_path} "
        f"(decompose with `repro attrib {result.manifest_path}`)"
    )
    if args.csv:
        with open(args.csv, "w", encoding="utf-8", newline="") as fh:
            n = export_csv(result.data, fh)
        print(f"{n} phase rows written to {args.csv}")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fh:
            n = export_jsonl(result.data, fh)
        print(f"{n} run traces written to {args.jsonl}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            n = export_prometheus(result.data, fh)
        print(f"{n} Prometheus samples written to {args.prom}")
    return 0


# ---------------------------------------------------------------------------
# fabric subcommands
# ---------------------------------------------------------------------------

def _parse_address(text: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (raises ``ValueError``)."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"address must look like HOST:PORT, got {text!r}")
    return host, int(port)


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..fabric import Coordinator

    coordinator = Coordinator(
        host=args.host, port=args.port, heartbeat_timeout=args.heartbeat_timeout
    )
    try:
        coordinator.start()
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    host, port = coordinator.address
    print(f"fabric coordinator listening on {host}:{port}", flush=True)
    print(
        f"attach workers with `repro work {host}:{port}`; submit studies "
        f"with `repro submit <kind> --address {host}:{port}`",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\ncoordinator stopped", file=sys.stderr)
        return 0
    finally:
        coordinator.stop()


def _cmd_work(args: argparse.Namespace) -> int:
    from ..fabric import Worker

    try:
        address = _parse_address(args.address)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    worker = Worker(
        address,
        worker_id=args.worker_id,
        heartbeat_interval=args.heartbeat_interval,
        reconnect_attempts=args.reconnect_attempts,
    )
    try:
        executed = worker.run()
    except ConnectionRefusedError:
        print(
            f"error: no coordinator at {args.address} — start one with "
            "`repro serve`",
            file=sys.stderr,
        )
        return 2
    print(f"worker {worker.worker_id} done: {executed} lease(s) executed",
          file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    try:
        address = _parse_address(args.address)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.spec_file:
        try:
            spec = spec_from_jsonable(
                json.loads(Path(args.spec_file).read_text("utf-8"))
            )
        except (OSError, ValueError, TypeError) as exc:
            print(f"error: cannot read spec {args.spec_file}: {exc}", file=sys.stderr)
            return 2
    else:
        if args.kind is None:
            print("error: give a study kind (or --spec FILE)", file=sys.stderr)
            return 2
        plan = None
        if getattr(args, "fault_plan", None):
            plan = _load_fault_plan(args.fault_plan)
            if plan is None:
                return 2
        if args.kind == "figure":
            args.number = args.figure
        try:
            spec = spec_from_args(args.kind, args, faults=plan)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        result = api.submit_study(spec, address, timeout=args.timeout)
    except ConnectionRefusedError:
        print(
            f"error: no coordinator at {args.address} — start one with "
            "`repro serve`",
            file=sys.stderr,
        )
        return 2
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.report)
    if result.manifest_path is not None:
        print(
            f"\nmanifest written to {result.manifest_path} (on the coordinator)"
        )
    return 0


def _cmd_knobs(args: argparse.Namespace) -> int:
    from ..envknobs import render_knob_table

    print(render_knob_table())
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .watch import watch

    target = args.target or str(Path(_cache_root(args)) / "manifests")
    try:
        watch(
            target,
            interval=args.interval,
            once=args.once,
            max_snapshots=args.max_snapshots,
        )
    except KeyboardInterrupt:
        # leaving a live watch is the normal exit, not an error
        print()
        return 0
    return 0


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    from .benchperf import render_report, run_bench, write_bench

    payload = run_bench(
        profile=args.profile,
        rms=args.rms.split(",") if args.rms else None,
        case_id=args.case,
        seed=args.seed,
        sa_iterations=args.sa_iterations,
        jobs=args.jobs,
        speculation=args.speculate,
        kernel_events=args.kernel_events,
        fel_events=args.fel_events,
        include_fluid=args.fluid,
    )
    print(render_report(payload))
    path = write_bench(payload, args.output)
    print(f"benchmark record written to {path}")
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from .benchcheck import (
        compare_bench,
        load_baseline,
        render_checks,
        run_current_bench,
        worst_status,
    )

    try:
        baseline = load_baseline(args.baseline)
    except FileNotFoundError:
        print(
            f"error: baseline {args.baseline} not found — run "
            "`repro bench-perf` first to record one",
            file=sys.stderr,
        )
        return 2
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2
    if args.current:
        try:
            current = load_baseline(args.current)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.current}: {exc}", file=sys.stderr)
            return 2
    else:
        current = run_current_bench(
            baseline,
            jobs=args.jobs,
            rms=args.rms.split(",") if args.rms else None,
            profile=args.profile,
        )
    try:
        checks = compare_bench(
            baseline, current, args.warn_tolerance, args.fail_tolerance
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_checks(checks, args.warn_tolerance, args.fail_tolerance,
                        warn_only=args.warn_only))
    return 1 if (worst_status(checks) == "fail" and not args.warn_only) else 0


def _cmd_attrib(args: argparse.Namespace) -> int:
    from .attrib import attrib_report, check_conservation, load_points

    source = args.source
    if source is None:
        candidates = [
            Path(_cache_root(args)) / "manifests" / "study.json",
            Path(_cache_root(args)) / "manifests" / "faults.json",
            Path(DEFAULT_TELEMETRY_DIR),
        ]
        source = next((c for c in candidates if c.exists()), None)
        if source is None:
            print(
                "error: no attribution source found — run a study with "
                "--resume (for a manifest) or --telemetry first, or pass "
                "a manifest file / telemetry run directory",
                file=sys.stderr,
            )
            return 2
    try:
        points = load_points(source)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot read {source}: {exc}", file=sys.stderr)
        return 2
    print(attrib_report(points, top=args.top, rms=args.rms))
    # a conservation violation is a red verdict for scripts/CI too
    violated = any(check_conservation(p) for p in points if p.attribution)
    return 1 if violated else 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from ..telemetry.report import (
        load_run,
        resolve_run_dir,
        spans_report,
        summary_report,
        tuner_report,
    )

    try:
        run_dir = resolve_run_dir(args.dir)
        run = load_run(run_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (OSError, ValueError, KeyError, TypeError) as exc:
        # unreadable/garbled records (e.g. a run killed mid-write):
        # a one-line diagnosis, not a traceback
        print(
            f"error: cannot read telemetry under {run_dir}: "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        return 2
    if not run.records:
        print(
            f"error: {run_dir} contains no telemetry records — "
            "the run recorded nothing (or only unparseable lines)",
            file=sys.stderr,
        )
        return 2
    if args.view == "summary":
        print(summary_report(run))
    elif args.view == "spans":
        print(spans_report(run, top=args.top, name=args.name))
    elif args.view == "tuner":
        print(tuner_report(run, rms=args.rms, scale=args.scale))
    return 0


#: one place documenting the flag conventions shared across subcommands
_EPILOG = """\
flag conventions (uniform across subcommands):
  --profile {ci,full,extreme}
                       scale profile; every subcommand accepts it
                       (report-only subcommands take it for interface
                       uniformity and profile-dependent defaults;
                       extreme pairs with --traffic-mode fluid)
  --fault-plan FILE    JSON FaultPlan (the repro.faults plan_to_jsonable
                       shape) applied to every run of the invocation
                       (accepted by: faults, compare, trace, submit)
  --cache-dir DIR      run-cache root ($REPRO_CACHE_DIR, default
                       .repro-cache/); study manifests live under
                       <cache-dir>/manifests/
  --telemetry-dir DIR  root for per-run telemetry directories
                       ($REPRO_TELEMETRY_DIR, default telemetry/)
  REPRO_* knobs        every environment knob is listed by `repro knobs`
                       with type, default, and consumer; precedence is
                       always flag > environment > default
  REPRO_SERIES[_*]     ambient time-resolved monitoring knobs
                       (REPRO_SERIES=1, REPRO_SERIES_WINDOW,
                       REPRO_SERIES_PROBE_INTERVAL,
                       REPRO_SERIES_CHARGE_RATE); `repro series` flags
                       override them, other subcommands (compare) pick
                       them up ambiently
  REPRO_TRACE_*        ambient causal-tracing knobs (REPRO_TRACE_SAMPLE,
                       REPRO_TRACE_CHARGE_RATE, REPRO_TRACE_MAX_EVENTS);
                       `repro trace` flags override them; any run built
                       with a nonzero sample records span DAGs
"""


def _add_profile_arg(sub: argparse.ArgumentParser, default: "str | None" = "ci") -> None:
    """The uniform ``--profile`` flag (every subcommand takes it)."""
    sub.add_argument(
        "--profile",
        default=default,
        choices=sorted(PROFILES),
        help="scale profile" + ("" if default else " (default: the source's own)"),
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    study = study_parent()
    engine = engine_parent()

    p = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Measuring Scalability of "
        "Resource Management Systems' (IPDPS 2005).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="logging verbosity (default: $REPRO_LOG_LEVEL or warning)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list", help="list regenerable figures")
    _add_profile_arg(lst)
    lst.set_defaults(fn=_cmd_list)

    fig = sub.add_parser(
        "figure", help="regenerate one paper figure", parents=[study, engine]
    )
    fig.add_argument("number", type=int, help="figure number (2-7)")
    _add_profile_arg(fig)
    fig.add_argument("--sa-iterations", type=int, default=None)
    fig.add_argument("--quantity", default=None, help="override plotted quantity")
    fig.add_argument("--precision", type=int, default=1)
    fig.add_argument("--csv", default=None, help="also write the series to CSV")
    fig.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint completed (case, RMS) points and skip them on restart",
    )
    fig.add_argument(
        "--speculate",
        type=int,
        nargs="?",
        const=DEFAULT_SPECULATION_WIDTH,
        default=None,
        metavar="W",
        help="speculative annealing width: propose W neighbors per round and "
        f"evaluate them as one engine batch (bare flag: {DEFAULT_SPECULATION_WIDTH}; "
        "also $REPRO_SPECULATE)",
    )
    fig.add_argument(
        "--no-warm-start",
        action="store_true",
        help="tune every scale from the enabler defaults instead of the "
        "previous scale's tuned settings (also $REPRO_WARM_START=0)",
    )
    fig.set_defaults(fn=_cmd_figure)

    faults = sub.add_parser(
        "faults",
        help="churn study: Case-1 G(k) under a fault-injection plan",
        parents=[
            study,
            engine,
            fault_plan_parent(
                "JSON FaultPlan to inject instead of the default churn plan"
            ),
        ],
    )
    _add_profile_arg(faults)
    faults.add_argument(
        "--mttf",
        type=float,
        default=None,
        help="resource mean time to failure (default: horizon / 4)",
    )
    faults.add_argument(
        "--mttr",
        type=float,
        default=None,
        help="resource mean time to recovery (default: MTTF / 10)",
    )
    faults.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help="also dump the smallest config's fault-event timeline as JSONL",
    )
    faults.add_argument("--precision", type=int, default=1)
    faults.set_defaults(fn=_cmd_faults)

    ser = sub.add_parser(
        "series",
        help="time-resolved study: windowed F/G/H/E(t) streams with in-sim probes",
        parents=[study, engine],
    )
    _add_profile_arg(ser)
    ser.add_argument(
        "--window",
        type=float,
        default=None,
        help="sim-time window width (default: $REPRO_SERIES_WINDOW or horizon/64)",
    )
    ser.add_argument(
        "--probe-interval",
        default=None,
        metavar="T[,T...]",
        help="in-sim probe interval; extra comma-separated values run an "
        "overhead/accuracy sweep at the base scale "
        "(default: $REPRO_SERIES_PROBE_INTERVAL or horizon/200)",
    )
    ser.add_argument(
        "--charge-rate",
        type=float,
        default=None,
        help="G cost per probe sweep per monitored entity, charged to "
        "g.monitor (default: $REPRO_SERIES_CHARGE_RATE or 0 = free probes)",
    )
    ser.add_argument("--precision", type=int, default=3)
    ser.add_argument("--csv", default=None, help="write per-window rows as CSV")
    ser.add_argument("--jsonl", default=None, help="write one series per run as JSONL")
    ser.add_argument(
        "--prom",
        default=None,
        metavar="PATH",
        help="write Prometheus text exposition of final/steady quantities",
    )
    ser.set_defaults(fn=_cmd_series)

    trc = sub.add_parser(
        "trace",
        help="causal tracing study: critical-path phase decomposition per job",
        parents=[
            study,
            engine,
            fault_plan_parent(
                "JSON FaultPlan applied to every run (failed dispatches and "
                "redispatch waits then appear as the recovery_wait phase)"
            ),
        ],
    )
    _add_profile_arg(trc)
    trc.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="FRAC",
        help="fraction of jobs traced, sampled deterministically by "
        "hash(seed, job id) (default: $REPRO_TRACE_SAMPLE or 1 = every job)",
    )
    trc.add_argument(
        "--trace-charge",
        type=float,
        default=None,
        metavar="COST",
        help="G cost per recorded span, charged to g.trace "
        "(default: $REPRO_TRACE_CHARGE_RATE or 0.02; 0 = passive plan "
        "that shares cache keys with untraced runs)",
    )
    trc.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="span-DAG bound per traced job; completion always records "
        "(default: $REPRO_TRACE_MAX_EVENTS or 64)",
    )
    trc.add_argument("--precision", type=int, default=3)
    trc.add_argument("--csv", default=None, help="write per-phase rows as CSV")
    trc.add_argument(
        "--jsonl", default=None, help="write one full trace payload per run as JSONL"
    )
    trc.add_argument(
        "--prom",
        default=None,
        metavar="PATH",
        help="write Prometheus text exposition of phase/latency/overhead samples",
    )
    trc.set_defaults(fn=_cmd_trace)

    srv = sub.add_parser(
        "serve",
        help="fabric coordinator: accept studies and workers on one socket",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument(
        "--port",
        type=int,
        default=DEFAULT_FABRIC_PORT,
        help=f"bind port (default {DEFAULT_FABRIC_PORT}; 0 = any free port)",
    )
    srv.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=10.0,
        metavar="SEC",
        help="silence after which a worker is declared failed and its "
        "leases requeue (default 10)",
    )
    srv.set_defaults(fn=_cmd_serve)

    wrk = sub.add_parser(
        "work",
        help="fabric worker: execute simulation leases for a coordinator",
    )
    wrk.add_argument(
        "address",
        nargs="?",
        default=f"127.0.0.1:{DEFAULT_FABRIC_PORT}",
        help=f"coordinator HOST:PORT (default 127.0.0.1:{DEFAULT_FABRIC_PORT})",
    )
    wrk.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity across reconnects (default: host-pid)",
    )
    wrk.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="seconds between heartbeats (keep well under the "
        "coordinator's --heartbeat-timeout)",
    )
    wrk.add_argument(
        "--reconnect-attempts",
        type=int,
        default=3,
        help="times a lost coordinator connection is retried (with a "
        "bumped incarnation) before giving up",
    )
    wrk.set_defaults(fn=_cmd_work)

    sbm = sub.add_parser(
        "submit",
        help="ship a StudySpec to a `repro serve` coordinator and await "
        "the (byte-identical) report",
        parents=[
            study,
            engine,
            fault_plan_parent("JSON FaultPlan applied to every run"),
        ],
    )
    sbm.add_argument(
        "kind",
        nargs="?",
        choices=list(KINDS),
        help="study kind to submit (or use --spec FILE)",
    )
    _add_profile_arg(sbm)
    sbm.add_argument(
        "--address",
        default=f"127.0.0.1:{DEFAULT_FABRIC_PORT}",
        help=f"coordinator HOST:PORT (default 127.0.0.1:{DEFAULT_FABRIC_PORT})",
    )
    sbm.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SEC",
        help="give up waiting for the result after SEC seconds",
    )
    sbm.add_argument(
        "--spec",
        dest="spec_file",
        default=None,
        metavar="FILE",
        help="submit a spec_to_jsonable JSON file instead of building "
        "one from flags",
    )
    sbm.add_argument("--figure", type=int, default=None, help="figure number (2-7)")
    sbm.add_argument("--sa-iterations", type=int, default=None)
    sbm.add_argument("--quantity", default=None, help="override plotted quantity")
    sbm.add_argument("--precision", type=int, default=None)
    sbm.add_argument("--resume", action="store_true")
    sbm.add_argument("--speculate", type=int, nargs="?",
                     const=DEFAULT_SPECULATION_WIDTH, default=None, metavar="W")
    sbm.add_argument("--no-warm-start", action="store_true")
    sbm.add_argument("--mttf", type=float, default=None)
    sbm.add_argument("--mttr", type=float, default=None)
    sbm.add_argument("--window", type=float, default=None)
    sbm.add_argument("--probe-interval", default=None, metavar="T[,T...]")
    sbm.add_argument("--charge-rate", type=float, default=None)
    sbm.add_argument("--trace-sample", type=float, default=None, metavar="FRAC")
    sbm.add_argument("--trace-charge", type=float, default=None, metavar="COST")
    sbm.add_argument("--max-events", type=int, default=None, metavar="N")
    sbm.set_defaults(fn=_cmd_submit)

    knb = sub.add_parser(
        "knobs",
        help="print the REPRO_* environment-knob table (type, default, consumer)",
    )
    knb.set_defaults(fn=_cmd_knobs)

    wat = sub.add_parser(
        "watch",
        help="tail a running study's manifest and render live progress",
    )
    wat.add_argument(
        "target",
        nargs="?",
        default=None,
        help="manifest file or cache root (default: <cache-dir>/manifests/, "
        "newest manifest wins)",
    )
    wat.add_argument(
        "--interval", type=float, default=2.0, help="poll interval in seconds"
    )
    wat.add_argument(
        "--once", action="store_true", help="render one snapshot and exit"
    )
    wat.add_argument(
        "--max-snapshots",
        type=int,
        default=0,
        help="stop after N printed snapshots (0 = until interrupted)",
    )
    wat.add_argument(
        "--cache-dir",
        default=None,
        help="run-cache root to resolve the default target from",
    )
    wat.set_defaults(fn=_cmd_watch)

    bench = sub.add_parser(
        "bench-perf",
        help="measure kernel/sim/study performance and write BENCH_perf.json",
        parents=[study],
    )
    _add_profile_arg(bench)
    bench.add_argument("--case", type=int, default=1, help="experiment case (1-4)")
    bench.add_argument("--sa-iterations", type=int, default=None)
    bench.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker count of the parallel study arm (default 4)",
    )
    bench.add_argument(
        "--speculate",
        type=int,
        default=DEFAULT_SPECULATION_WIDTH,
        metavar="W",
        help=f"speculation width of the tuned arms (default {DEFAULT_SPECULATION_WIDTH})",
    )
    bench.add_argument(
        "--kernel-events",
        type=int,
        default=200_000,
        help="event count of the kernel storm micro-benchmark "
        "(each registered backend runs it)",
    )
    bench.add_argument(
        "--fel-events",
        type=int,
        default=1_000_000,
        help="pending-event count of the kernel future-event-list scaling "
        "case (each registered backend runs it)",
    )
    bench.add_argument(
        "--no-fluid",
        dest="fluid",
        action="store_false",
        help="skip the fluid-vs-discrete section (it includes a "
        "minutes-long extreme-scale run); bench-check skips, not "
        "fails, the missing section",
    )
    bench.add_argument(
        "--output",
        default="BENCH_perf.json",
        help="where to write the benchmark record (default BENCH_perf.json)",
    )
    bench.set_defaults(fn=_cmd_bench_perf, fluid=True)

    check = sub.add_parser(
        "bench-check",
        help="perf-regression watchdog: fresh bench-perf vs the tracked record",
    )
    _add_profile_arg(check, default=None)
    check.add_argument(
        "--baseline",
        default="BENCH_perf.json",
        help="tracked benchmark record to compare against (default BENCH_perf.json)",
    )
    check.add_argument(
        "--current",
        default=None,
        metavar="PATH",
        help="compare an existing bench-perf record instead of running a fresh one",
    )
    check.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="override the fresh run's worker count (incompatible study "
        "arms are skipped, not failed)",
    )
    check.add_argument(
        "--rms",
        default=None,
        help="comma-separated subset of designs for the fresh run "
        "(param-incompatible sections are skipped)",
    )
    check.add_argument(
        "--warn-tolerance",
        type=float,
        default=DEFAULT_WARN_TOLERANCE,
        metavar="FRAC",
        help="timing regression fraction that warns "
        f"(default {DEFAULT_WARN_TOLERANCE:g})",
    )
    check.add_argument(
        "--fail-tolerance",
        "--tolerance",
        type=float,
        default=DEFAULT_FAIL_TOLERANCE,
        metavar="FRAC",
        help="timing regression fraction that fails "
        f"(default {DEFAULT_FAIL_TOLERANCE:g})",
    )
    check.add_argument(
        "--warn-only",
        action="store_true",
        help="report failures but exit 0 (CI advisory mode)",
    )
    check.set_defaults(fn=_cmd_bench_check)

    att = sub.add_parser(
        "attrib",
        help="overhead attribution: which component makes G(k) grow",
    )
    att.add_argument(
        "source",
        nargs="?",
        default=None,
        help="a study manifest JSON or a telemetry run directory "
        "(default: <cache-dir>/manifests/{study,faults}.json, then telemetry/)",
    )
    _add_profile_arg(att)
    att.add_argument(
        "--cache-dir",
        default=None,
        help="cache root holding manifests/study.json "
        "(default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    att.add_argument("--top", type=int, default=10,
                     help="finest-grained contributors shown per series")
    att.add_argument("--rms", default=None, help="filter by RMS design")
    att.set_defaults(fn=_cmd_attrib)

    cmp_ = sub.add_parser(
        "compare",
        help="quick 7-design comparison run",
        parents=[
            study,
            engine,
            fault_plan_parent("JSON FaultPlan applied to every design's run"),
        ],
    )
    _add_profile_arg(cmp_)
    cmp_.set_defaults(fn=_cmd_compare)

    tel = sub.add_parser(
        "telemetry", help="render reports from recorded telemetry"
    )
    tel_sub = tel.add_subparsers(dest="view", required=True)
    views = {
        "summary": "per-span totals, cache hit rate, sim event throughput",
        "spans": "the individual slowest spans",
        "tuner": "the annealing convergence trace per (RMS, scale)",
    }
    for view, help_text in views.items():
        v = tel_sub.add_parser(view, help=help_text)
        _add_profile_arg(v)
        v.add_argument(
            "dir",
            nargs="?",
            default=DEFAULT_TELEMETRY_DIR,
            help="a run directory, or a root whose newest run is used "
            f"(default: {DEFAULT_TELEMETRY_DIR}/)",
        )
        if view == "spans":
            v.add_argument("--top", type=int, default=20, help="spans shown")
            v.add_argument("--name", default=None, help="filter by span name")
        if view == "tuner":
            v.add_argument("--rms", default=None, help="filter by RMS design")
            v.add_argument("--scale", type=float, default=None, help="filter by k")
        v.set_defaults(fn=_cmd_telemetry, view=view)
    return p


_logging_configured = False


def _configure_logging(level: Optional[str]) -> None:
    """Wire ``logging.basicConfig`` exactly once per process.

    Precedence: ``--log-level`` > ``$REPRO_LOG_LEVEL`` > ``warning``.
    """
    global _logging_configured
    if _logging_configured:
        return
    name = get_str("REPRO_LOG_LEVEL", override=level, default="warning").upper()
    logging.basicConfig(
        level=getattr(logging, name, logging.WARNING),
        format="%(levelname)s %(name)s: %(message)s",
    )
    _logging_configured = True


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args.log_level)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        # the flight recorder (when on) has already bundled the window;
        # exit with the conventional SIGINT status
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout went away (`repro telemetry summary | head`); exit
        # quietly like any unix filter instead of tracebacking.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
