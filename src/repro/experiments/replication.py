"""Replication statistics: confidence intervals over independent seeds.

A single simulation run is one sample of a stochastic system; the
paper's curves (and ours) are point estimates.  :func:`replicate` runs
the same configuration under independent seeds and returns mean /
standard-error / normal-approximation confidence intervals for every
scalar metric — used by the robustness example and by tests that check
the CI machinery itself, and available to downstream users who want
error bars on any figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from .config import SimulationConfig
from .runner import RunMetrics, run_simulation

__all__ = ["MetricSummary", "ReplicationResult", "replicate"]

#: the scalar metrics summarized per replication batch
_SCALARS = {
    "efficiency": lambda m: m.efficiency,
    "G": lambda m: m.record.G,
    "F": lambda m: m.record.F,
    "H": lambda m: m.record.H,
    "success_rate": lambda m: m.success_rate,
    "throughput": lambda m: m.throughput,
    "mean_response": lambda m: m.mean_response,
}


@dataclass(frozen=True)
class MetricSummary:
    """Mean and dispersion of one scalar metric across replications."""

    name: str
    mean: float
    std: float
    sem: float
    lo: float
    hi: float
    n: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.lo <= value <= self.hi


@dataclass
class ReplicationResult:
    """All replications of one configuration plus their summaries."""

    config: SimulationConfig
    seeds: List[int]
    runs: List[RunMetrics]
    summaries: Dict[str, MetricSummary]

    def __getitem__(self, metric: str) -> MetricSummary:
        return self.summaries[metric]


def _summary(name: str, xs: Sequence[float], z: float) -> MetricSummary:
    n = len(xs)
    mean = sum(xs) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in xs) / (n - 1)
    else:
        var = 0.0
    std = math.sqrt(var)
    sem = std / math.sqrt(n)
    return MetricSummary(
        name=name, mean=mean, std=std, sem=sem, lo=mean - z * sem, hi=mean + z * sem, n=n
    )


def replicate(
    config: SimulationConfig,
    n: int = 5,
    z: float = 1.96,
    seeds: Optional[Sequence[int]] = None,
    runner: Callable[[SimulationConfig], RunMetrics] = run_simulation,
    engine=None,
    jobs: Optional[int] = None,
) -> ReplicationResult:
    """Run ``config`` under ``n`` independent seeds and summarize.

    Parameters
    ----------
    config:
        The configuration; its own ``seed`` anchors the seed sequence.
    n:
        Number of replications (ignored if ``seeds`` is given).
    z:
        Normal quantile for the confidence interval (1.96 = 95%).
    seeds:
        Explicit seed list (overrides ``n``).
    runner:
        Injection point for tests.  A custom runner always executes
        serially in-process (it may not be picklable).
    engine:
        Optional :class:`~repro.experiments.parallel.ExperimentEngine`:
        the replications — independent by construction — are fanned out
        as one batch over its worker pool and served from its run
        cache.  Ignored when a custom ``runner`` is injected.
    jobs:
        Convenience: build a throwaway (cache-less) engine with this
        many workers.  Ignored when ``engine`` is given.
    """
    if seeds is None:
        if n < 1:
            raise ValueError("need at least one replication")
        seeds = [config.seed + 1000 * i for i in range(n)]
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    replicas = [replace(config, seed=s) for s in seeds]
    if engine is None and jobs is not None and runner is run_simulation:
        from .parallel import ExperimentEngine

        with ExperimentEngine(jobs=jobs) as owned:
            runs = owned.run_many(replicas)
    elif engine is not None and runner is run_simulation:
        runs = engine.run_many(replicas)
    else:
        runs = [runner(c) for c in replicas]
    summaries = {
        name: _summary(name, [fn(m) for m in runs], z) for name, fn in _SCALARS.items()
    }
    return ReplicationResult(config=config, seeds=seeds, runs=runs, summaries=summaries)
