"""Live study monitoring: ``repro watch``.

Tails a running study's manifest file (``faults.json``, ``series.json``,
or any figure-sweep manifest under ``<cache>/manifests/``) and renders a
progress snapshot whenever it changes: completed points per study key,
their F/G/H and efficiency, and — when the points carry time-resolved
streams — the live steady-state estimate next to the final E.

The watcher is a pure *reader*: it opens the manifest read-only, keys
off the file's mtime/size to avoid re-parsing an unchanged file, and
tolerates partially written or concurrently replaced files (the
manifest writer replaces atomically, so a read sees either the old or
the new complete file — but a deleted or not-yet-created manifest just
renders as "waiting").

``--once`` renders a single snapshot and exits (CI and tests);
otherwise the watcher polls until interrupted.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry.timeseries import steady_state
from .tabulate import format_table

__all__ = ["render_snapshot", "resolve_manifest", "watch"]


def resolve_manifest(target: "str | Path") -> Path:
    """The manifest file to watch.

    A file path is used verbatim; a directory (a cache root or its
    ``manifests/`` subdirectory) resolves to its most recently modified
    ``*.json`` manifest.  A missing target is returned as-is — the
    watcher treats nonexistence as "study not started yet".
    """
    path = Path(target)
    if path.is_file() or not path.exists():
        return path
    candidates = sorted(path.glob("manifests/*.json")) + sorted(path.glob("*.json"))
    if not candidates:
        return path / "manifests"  # rendered as "waiting"
    return max(candidates, key=lambda p: p.stat().st_mtime)


def _load(path: Path) -> Optional[Dict[str, Any]]:
    try:
        payload = json.loads(path.read_text("utf-8"))
    except (OSError, ValueError):
        return None
    completed = payload.get("completed")
    if not isinstance(completed, dict):
        return None
    return completed


def _point_rows(completed: Dict[str, Any]) -> List[List[Any]]:
    rows: List[List[Any]] = []
    for key in sorted(completed):
        entry = completed[key] or {}
        result = entry.get("result") or {}
        points = result.get("points", [])
        label = key.split(":")[-1] if ":" in key else key
        for p in points:
            record = p.get("record") or {}
            f = float(record.get("F", math.nan))
            g = float(record.get("G", math.nan))
            h = float(record.get("H", math.nan))
            total = f + g + h
            final_e = f / total if total > 0.0 else math.nan
            steady = p.get("steady") or {}
            steady_e = steady.get("steady_E")
            if steady_e is None and p.get("series"):
                try:
                    steady_e = steady_state(p["series"])["steady_E"]
                except (KeyError, TypeError, ValueError):
                    steady_e = None
            rows.append(
                [
                    label,
                    float(p.get("scale", math.nan)),
                    f,
                    g,
                    h,
                    final_e,
                    math.nan if steady_e is None else float(steady_e),
                ]
            )
    return rows


def render_snapshot(path: Path, now: Optional[float] = None) -> str:
    """One progress snapshot of the manifest at ``path``."""
    stamp = time.strftime("%H:%M:%S", time.localtime(now))
    if not path.is_file():
        return f"[{stamp}] waiting for study manifest at {path} ..."
    completed = _load(path)
    if completed is None:
        return f"[{stamp}] {path}: not a study manifest (yet?)"
    rows = _point_rows(completed)
    head = (
        f"[{stamp}] {path.name}: {len(completed)} study key(s), "
        f"{len(rows)} completed point(s)"
    )
    if not rows:
        return head
    table = format_table(
        ["point", "k", "F", "G", "H", "final E", "steady E"], rows, precision=3
    )
    return f"{head}\n{table}"


def watch(
    target: "str | Path",
    interval: float = 2.0,
    once: bool = False,
    max_snapshots: int = 0,
    out=None,
) -> int:
    """Poll ``target`` and print a snapshot whenever the manifest changes.

    Returns the number of snapshots printed.  ``max_snapshots`` bounds
    the loop (0 = until interrupted); ``once`` renders exactly one
    snapshot regardless of change detection.
    """
    import sys

    out = out or sys.stdout
    printed = 0
    last_sig: Optional[Tuple[float, int]] = None
    while True:
        path = resolve_manifest(target)
        try:
            st = path.stat()
            sig = (st.st_mtime, st.st_size)
        except OSError:
            sig = None
        if once or sig != last_sig:
            print(render_snapshot(path), file=out, flush=True)
            printed += 1
            last_sig = sig
        if once or (max_snapshots and printed >= max_snapshots):
            return printed
        time.sleep(interval)
