"""Rendering measured results: text tables, ASCII plots, CSV files.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that presentation in one place.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Optional, Sequence

from .reproduce import FigureData
from .tabulate import format_table  # noqa: F401  (canonical home; re-exported)

__all__ = ["format_table", "ascii_plot", "figure_report", "write_csv"]


def ascii_plot(
    series: Dict[str, Sequence[float]],
    xs: Sequence[float],
    width: int = 60,
    height: int = 16,
    logy: bool = False,
) -> str:
    """A minimal multi-series ASCII line chart (one letter per series).

    Good enough to eyeball who wins and where curves cross in a
    terminal; the CSV output feeds real plotting tools.
    """
    import math

    if not series:
        return "(no data)"
    letters = "ABCDEFGHIJKLMNOP"
    ys_all = [
        (math.log10(max(v, 1e-12)) if logy else v)
        for vs in series.values()
        for v in vs
        if v == v  # drop NaNs
    ]
    if not ys_all:
        return "(no finite data)"
    lo, hi = min(ys_all), max(ys_all)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = min(xs), max(xs)
    xspan = (x_hi - x_lo) or 1.0
    for si, (name, vs) in enumerate(series.items()):
        ch = letters[si % len(letters)]
        for x, v in zip(xs, vs):
            if v != v:
                continue
            y = math.log10(max(v, 1e-12)) if logy else v
            col = int((x - x_lo) / xspan * (width - 1))
            row = height - 1 - int((y - lo) / (hi - lo) * (height - 1))
            grid[row][col] = ch
    legend = "  ".join(
        f"{letters[i % len(letters)]}={name}" for i, name in enumerate(series)
    )
    axis = f"y: [{lo:.3g}, {hi:.3g}]" + (" (log10)" if logy else "")
    body = "\n".join("|" + "".join(r) for r in grid)
    return f"{body}\n+{'-' * width}\n{legend}\n{axis}"


def figure_report(fig: FigureData, quantity: str = "G", precision: int = 1) -> str:
    """The standard per-figure report: title, table, ASCII plot, and a
    footnote naming the (RMS, k) points that missed the isoefficiency
    feasibility test (efficiency band or success floor) — the paper's
    "no longer scalable" regions."""
    headers = ["RMS"] + [f"k={k:g}" for k in fig.scales]
    table = format_table(headers, fig.rows(quantity), precision=precision)
    series = {name: list(getattr(s, quantity)) for name, s in fig.series.items()}
    plot = ascii_plot(series, list(fig.scales), logy=(quantity in ("G", "response")))
    notes = []
    for name, s in fig.series.items():
        bad = [f"k={p.scale:g}" for p in s.result.points if not p.feasible]
        if bad:
            notes.append(f"{name}: {', '.join(bad)}")
    footnote = (
        "infeasible points (efficiency band / success floor missed): "
        + "; ".join(notes)
        if notes
        else "all points isoefficiency-feasible"
    )
    return (
        f"{fig.figure}: {fig.title}\n[{quantity} vs {fig.x_label}]\n\n"
        f"{table}\n\n{plot}\n{footnote}\n"
    )


def write_csv(fig: FigureData, path: str, quantity: str = "G") -> None:
    """Dump one figure's series to CSV (one row per RMS)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["rms"] + [f"k={k:g}" for k in fig.scales])
        for row in fig.rows(quantity):
            writer.writerow(row)
