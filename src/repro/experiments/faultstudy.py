"""Churn study: how recovery overhead scales — ``repro faults``.

The paper's scalability verdict is the slope of ``G(k)`` under a
*fault-free* substrate.  This driver re-asks the question under
resource churn: every design runs the Case-1 scaling path with a
:class:`~repro.faults.plan.FaultPlan` injecting exponential
crash/recover cycles, and the new ``g.faults`` attribution component
(heartbeat sweeps, dead-resource processing, job re-dispatch) shows how
much of the growth is recovery work rather than steady-state
management.

All (RMS, scale) runs are independent, so the whole study is one
engine batch — results are byte-identical whatever ``--jobs`` is, and
every run lands in the content-addressed cache (the plan is hashed
into the cache key like any other config field).

The study checkpoints into ``<cache>/manifests/faults.json`` using the
same manifest shape the figure sweeps use, so ``repro attrib`` can
render the per-component decomposition from it directly.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.slope import slopes
from ..faults.plan import FaultPlan, plan_to_jsonable
from ..rms.registry import rms_names
from .cases import get_case
from .config import PROFILES, ScaleProfile
from .parallel.hashing import canonical_json
from .parallel.manifest import StudyManifest
from .tabulate import format_table
from .runner import RunMetrics, run_simulation

__all__ = [
    "FaultStudyPoint",
    "FaultStudyResult",
    "default_churn_plan",
    "fault_report",
    "plan_key",
    "run_fault_study",
]


def default_churn_plan(
    profile: ScaleProfile,
    mttf: Optional[float] = None,
    mttr: Optional[float] = None,
) -> FaultPlan:
    """The standard churn plan for one profile.

    Default MTTF is a quarter of the measured horizon — every resource
    crashes a handful of times per run, enough churn that recovery
    overhead is clearly visible without drowning useful work.  MTTR
    follows the plan's own convention (MTTF/10) unless overridden.
    """
    if mttf is None:
        mttf = profile.horizon / 4.0
    return FaultPlan(resource_mttf=float(mttf), resource_mttr=mttr)


def plan_key(plan: FaultPlan) -> str:
    """A short stable digest of a plan (manifest key component)."""
    digest = hashlib.sha256(canonical_json(plan_to_jsonable(plan))).hexdigest()
    return digest[:12]


@dataclass(frozen=True)
class FaultStudyPoint:
    """One (RMS, scale) run under the study's fault plan."""

    rms: str
    scale: float
    metrics: RunMetrics

    @property
    def faults_g(self) -> float:
        """The run's total ``g.faults`` recovery overhead."""
        attribution = self.metrics.attribution or {}
        return math.fsum(
            v for k, v in attribution.items() if k.startswith("g.faults")
        )


@dataclass(frozen=True)
class FaultStudyResult:
    """Everything ``repro faults`` measured."""

    profile: str
    seed: int
    plan: FaultPlan
    #: RMS name -> points in ascending scale order
    series: Dict[str, List[FaultStudyPoint]] = field(default_factory=dict)
    manifest_path: Optional[Path] = None


def run_fault_study(
    profile: str = "ci",
    rms: Optional[Sequence[str]] = None,
    seed: int = 7,
    plan: Optional[FaultPlan] = None,
    mttf: Optional[float] = None,
    mttr: Optional[float] = None,
    engine=None,
    manifest_path: "str | Path | None" = None,
    fluid=None,
) -> FaultStudyResult:
    """Run the churn study: Case-1 scaling under a fault plan.

    Parameters
    ----------
    plan:
        Explicit :class:`FaultPlan`; when ``None``, a default churn
        plan is derived from the profile (``mttf`` / ``mttr`` override
        its timing).
    engine:
        Optional :class:`~repro.experiments.parallel.ExperimentEngine`;
        all runs go through it as **one** batch, so worker count cannot
        affect results.
    manifest_path:
        When given, each design's points are checkpointed there in the
        study-manifest shape ``repro attrib`` reads.
    """
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    names = list(rms) if rms else rms_names()
    if plan is None:
        plan = default_churn_plan(prof, mttf=mttf, mttr=mttr)
    case = get_case(1)

    configs = [
        case.config_for(name, k, prof, seed=seed, faults=plan, fluid=fluid)
        for name in names
        for k in prof.scales
    ]
    if engine is not None:
        metrics_list = engine.run_many(configs)
    else:
        metrics_list = [run_simulation(c) for c in configs]

    series: Dict[str, List[FaultStudyPoint]] = {}
    it = iter(metrics_list)
    for name in names:
        series[name] = [
            FaultStudyPoint(rms=name, scale=float(k), metrics=next(it))
            for k in prof.scales
        ]

    result = FaultStudyResult(
        profile=prof.name,
        seed=seed,
        plan=plan,
        series=series,
        manifest_path=Path(manifest_path) if manifest_path else None,
    )
    if result.manifest_path is not None:
        _write_manifest(result)
    return result


def _write_manifest(result: FaultStudyResult) -> None:
    """Checkpoint the study in the manifest shape ``repro attrib`` reads."""
    manifest = StudyManifest(result.manifest_path)
    digest = plan_key(result.plan)
    for name, points in result.series.items():
        key = (
            f"{result.profile}:seed{result.seed}:faults{digest}:case1:{name}"
        )
        payload = {
            "plan": plan_to_jsonable(result.plan),
            "result": {
                "points": [
                    {
                        "scale": p.scale,
                        "record": {
                            "F": p.metrics.record.F,
                            "G": p.metrics.record.G,
                            "H": p.metrics.record.H,
                        },
                        "attribution": p.metrics.attribution or {},
                        "fault_stats": p.metrics.fault_stats or {},
                    }
                    for p in points
                ]
            },
        }
        manifest.mark_done(key, payload)


def fault_report(result: FaultStudyResult, precision: int = 1) -> str:
    """Render the churn study: per-design tables plus a slope ranking."""
    plan = result.plan
    parts: List[str] = []
    if plan.has_churn:
        parts.append(
            f"churn plan: MTTF={plan.resource_mttf:g}, "
            f"MTTR={plan.effective_mttr:g}, "
            f"churn fraction={plan.churn_fraction:g} "
            f"(profile {result.profile}, seed {result.seed})"
        )
    else:
        parts.append(
            f"fault plan {plan_key(plan)} "
            f"(profile {result.profile}, seed {result.seed})"
        )

    for name, points in result.series.items():
        rows = []
        for p in points:
            m = p.metrics
            stats = m.fault_stats or {}
            rows.append(
                [
                    p.scale,
                    m.record.F,
                    m.record.G,
                    m.record.H,
                    m.efficiency,
                    p.faults_g,
                    stats.get("crashes", 0),
                    stats.get("jobs_killed", 0),
                    stats.get("redispatches", 0),
                    stats.get("jobs_unrecovered", 0),
                ]
            )
        parts.append(f"\n{name} under churn:")
        parts.append(
            format_table(
                [
                    "k",
                    "F",
                    "G",
                    "H",
                    "E",
                    "G:faults",
                    "crashes",
                    "killed",
                    "redisp",
                    "lost",
                ],
                rows,
                precision=precision,
            )
        )

    ranking = []
    for name, points in result.series.items():
        if len(points) < 2:
            continue
        ks = [p.scale for p in points]
        try:
            g_slope = slopes(ks, [p.metrics.record.G for p in points])
            f_slope = slopes(ks, [p.faults_g for p in points])
        except ValueError:
            continue
        ranking.append(
            [
                name,
                sum(g_slope) / len(g_slope),
                sum(f_slope) / len(f_slope),
            ]
        )
    if ranking:
        ranking.sort(key=lambda row: row[1])
        parts.append("\nmean slope under churn (time units / k, lower is better):")
        parts.append(
            format_table(["RMS", "dG/dk", "d(G:faults)/dk"], ranking, precision=2)
        )
    return "\n".join(parts)
