"""Shared argparse building blocks, derived from :class:`StudySpec`.

Before this module every simulation-running subcommand re-declared the
same dozen flags; now each flag that maps onto a
:class:`~repro.experiments.spec.StudySpec` field is declared **once**,
with its default pulled straight from the dataclass (so the parser and
the spec cannot drift), and subcommands compose the parents they need::

    sub.add_parser("faults", parents=[study_parent(), engine_parent()])

:func:`spec_from_args` is the inverse direction — the one place a
parsed namespace becomes a ``StudySpec``.  Between the two, the CLI is
a thin shell around :func:`repro.api.run_study`: flags in, spec
through, report out.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Any, Optional, Tuple

from .spec import StudySpec

__all__ = [
    "engine_parent",
    "parse_probe_intervals",
    "parse_rms",
    "spec_from_args",
    "study_parent",
]

#: default root for per-run telemetry directories (shared with cli.py)
DEFAULT_TELEMETRY_DIR = "telemetry"

_SPEC_DEFAULTS = {f.name: f.default for f in dataclasses.fields(StudySpec)}


def _spec_default(name: str) -> Any:
    """The StudySpec default behind a flag (parser/spec anti-drift)."""
    return _SPEC_DEFAULTS[name]


def study_parent() -> argparse.ArgumentParser:
    """Parent with the flags every study kind shares: ``--rms``, ``--seed``."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--rms",
        default=None,
        help="comma-separated subset of designs",
    )
    p.add_argument("--seed", type=int, default=_spec_default("seed"))
    return p


def engine_parent() -> argparse.ArgumentParser:
    """Parent with the engine/execution flags (one declaration for all).

    Everything here is execution mechanics or ambient instrumentation —
    none of it changes the measured numbers (``spec_digest`` excludes
    the spec-backed subset for exactly that reason).
    """
    from ..sim.backend import backend_names
    from ..telemetry import flightrec

    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--jobs",
        type=int,
        default=_spec_default("jobs"),
        help="worker processes (default: $REPRO_JOBS or 1; 0 = one per CPU)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read the run cache (fresh results are still written)",
    )
    p.add_argument(
        "--cache-dir",
        default=_spec_default("cache_dir"),
        help="run-cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    p.add_argument(
        "--telemetry",
        action="store_true",
        help="record spans/events/metrics for this invocation "
        "(also: REPRO_TELEMETRY=1)",
    )
    p.add_argument(
        "--telemetry-dir",
        default=None,
        help="root for per-run telemetry directories "
        f"(default: $REPRO_TELEMETRY_DIR or {DEFAULT_TELEMETRY_DIR}/)",
    )
    p.add_argument(
        "--flight-recorder",
        action="store_true",
        help="keep rolling forensic ring buffers (kernel events, ledger "
        "charges, tuner moves) and dump a JSON bundle on crash, cancel, "
        "or invariant trip (also: REPRO_FLIGHT_RECORDER=1)",
    )
    p.add_argument(
        "--flight-dir",
        default=None,
        help="flight-recorder bundle directory "
        f"(default: $REPRO_FLIGHT_DIR or {flightrec.DEFAULT_DIR}/)",
    )
    p.add_argument(
        "--kernel-backend",
        default=_spec_default("kernel_backend"),
        choices=backend_names(),
        help="kernel backend for every simulation (default: "
        "$REPRO_KERNEL_BACKEND or reference); backends are bit-identical "
        "— the choice affects speed only and is recorded as provenance",
    )
    p.add_argument(
        "--traffic-mode",
        default=_spec_default("traffic_mode"),
        choices=["discrete", "fluid"],
        help="traffic model for every simulation (default: "
        "$REPRO_TRAFFIC_MODE or discrete); fluid replaces bulk periodic "
        "status/keepalive/heartbeat events with closed-form rate charges "
        "so extreme-scale cases (k=1e5-1e6 resources) stay measurable",
    )
    p.add_argument(
        "--aggregator-fanout",
        type=int,
        default=_spec_default("aggregator_fanout"),
        metavar="N",
        help="fluid mode only: fan-out of the hierarchical status-"
        "estimator tree (>= 2; default 0 = flat)",
    )
    return p


def fault_plan_parent(help_text: str) -> argparse.ArgumentParser:
    """Parent with the ``--fault-plan FILE`` flag (per-command help)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--fault-plan", default=None, metavar="FILE", help=help_text)
    return p


# ---------------------------------------------------------------------------
# namespace -> spec
# ---------------------------------------------------------------------------

def parse_rms(text: Optional[str]) -> Optional[Tuple[str, ...]]:
    """``"LOWEST,CENTRAL"`` -> ``("LOWEST", "CENTRAL")`` (None passes)."""
    if not text:
        return None
    return tuple(x.strip() for x in text.split(",") if x.strip())


def parse_probe_intervals(text: Optional[str]) -> Tuple[float, ...]:
    """``"30,60,120"`` -> ``(30.0, 60.0, 120.0)``; raises ``ValueError``."""
    if not text:
        return ()
    return tuple(float(x) for x in text.split(","))


def spec_from_args(kind: str, args: argparse.Namespace, **overrides: Any) -> StudySpec:
    """Build the :class:`StudySpec` a parsed CLI namespace describes.

    Only attributes present on the namespace are consulted, so one
    function serves every subcommand regardless of which parents it
    composed.  ``overrides`` win over namespace values (the fault plan,
    already loaded from its file, arrives this way).
    """

    def g(name: str, default: Any = None) -> Any:
        return getattr(args, name, default)

    fields: dict = dict(
        kind=kind,
        figure=g("number") if kind == "figure" else None,
        profile=g("profile", "ci"),
        rms=parse_rms(g("rms")),
        seed=g("seed", _spec_default("seed")),
        sa_iterations=g("sa_iterations"),
        speculate=g("speculate"),
        warm_start=False if g("no_warm_start") else None,
        traffic_mode=g("traffic_mode"),
        aggregator_fanout=g("aggregator_fanout"),
        mttf=g("mttf"),
        mttr=g("mttr"),
        window=g("window"),
        probe_intervals=parse_probe_intervals(g("probe_interval")),
        charge_rate=g("charge_rate"),
        trace_sample=g("trace_sample"),
        trace_charge=g("trace_charge"),
        max_events=g("max_events"),
        jobs=g("jobs"),
        cache_dir=g("cache_dir"),
        no_cache=bool(g("no_cache", False)),
        resume=bool(g("resume", False)),
        kernel_backend=g("kernel_backend"),
        quantity=g("quantity"),
        precision=g("precision"),
    )
    fields.update(overrides)
    return StudySpec(**fields)
