"""Build a complete managed system and run one simulation.

:func:`build_system` wires every substrate together for a given
:class:`~repro.experiments.config.SimulationConfig`:

topology -> grid map -> router/network -> resources -> estimators ->
schedulers (of the configured RMS design) -> middleware (if the design
uses one) -> status reporting -> workload injection.

:func:`run_simulation` executes it and aggregates a :class:`RunMetrics`
— the Observation the core tuner consumes plus everything the figures
need (throughput, response times, message counts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.efficiency import EfficiencyRecord
from ..core.ledger import Category, CostLedger
from ..faults.injector import FaultInjector
from ..fluid.plane import FluidStatusPlane
from ..grid.estimator import Estimator
from ..grid.jobs import Job, JobState
from ..grid.middleware import Middleware
from ..grid.resource import Resource
from ..grid.status import StatusTable
from ..network.messages import Message, MessageKind
from ..network.routing import Router
from ..network.transport import Network
from ..rms.registry import get_rms
from ..sim.backend import KernelBackend, create_kernel
from ..sim.monitor import Tally
from ..sim.rng import RngHub
from ..telemetry import flightrec as _flightrec
from ..telemetry.spans import current as _telemetry
from ..telemetry.timeseries import ProbeSampler, RunSeriesRecorder
from ..telemetry.tracing import TraceRecorder
from ..topology.generator import TopologyParams, generate_topology
from ..topology.grid_map import map_grid
from ..workload.dags import DagWorkloadGenerator
from ..workload.generator import WorkloadGenerator
from .config import SimulationConfig

__all__ = [
    "DependencyCoordinator",
    "RunMetrics",
    "System",
    "build_system",
    "run_simulation",
]


class DependencyCoordinator:
    """Releases dependency-constrained jobs (paper future work (b)).

    A job with precedence constraints is held until **all** of its
    parents complete *and* its own arrival instant has passed; it is
    then submitted to its cluster's scheduler.  Every cross-cluster
    parent→child edge charges the RP's data-management overhead (data
    staged from where the parent ran to where the child is submitted),
    which is what makes ``H(k)`` a meaningful scalability axis for DAG
    workloads (paper future work (c)).
    """

    def __init__(self, sim, dag, jobs_by_id, schedulers, ledger, costs) -> None:
        self.sim = sim
        self.dag = dag
        self._jobs_by_id = jobs_by_id
        self._schedulers = schedulers
        self._ledger = ledger
        self._costs = costs
        self._pending = {child: len(ps) for child, ps in dag.parents.items()}
        self._children = dag.children()
        self._arrived = set()
        #: cross-cluster staging edges charged (diagnostics)
        self.staged_edges = 0
        # attribution tag for cross-cluster staging charges
        self._src_staging = ("coordinator", "dag", "staging")

    def job_arrived(self, job: Job) -> None:
        """The job's own arrival instant passed; release if unblocked."""
        self._arrived.add(job.job_id)
        if self._pending.get(job.job_id, 0) == 0:
            self._release(job)

    def on_complete(self, job: Job) -> None:
        """A job finished: unblock its children."""
        for child_id in self._children.get(job.job_id, ()):
            left = self._pending.get(child_id, 0)
            if left <= 0:
                continue
            self._pending[child_id] = left - 1
            if self._pending[child_id] == 0 and child_id in self._arrived:
                self._release(self._jobs_by_id[child_id])

    def _release(self, job: Job) -> None:
        cluster = job.spec.submit_cluster % len(self._schedulers)
        # Stage data from each parent's execution site.
        for parent_id in self.dag.parents.get(job.job_id, ()):
            parent = self._jobs_by_id[parent_id]
            if parent.executed_cluster is not None and parent.executed_cluster != cluster:
                self.staged_edges += 1
                self._ledger.charge(Category.DATA_MGMT, self._costs.data_mgmt, self._src_staging)
        scheduler = self._schedulers[cluster]
        scheduler.deliver(Message(MessageKind.JOB_SUBMIT, payload={"job": job}))


@dataclass
class System:
    """A fully wired managed system, ready to run."""

    config: SimulationConfig
    sim: KernelBackend
    ledger: CostLedger
    network: Network
    schedulers: List
    resources: List[Resource]
    estimators: List[Estimator]
    middleware: Optional[Middleware]
    jobs: List[Job]
    #: present only for dependency-constrained workloads
    coordinator: Optional[DependencyCoordinator] = None
    #: present only when the config's FaultPlan injects faults
    injector: Optional[FaultInjector] = None
    #: present only when the config's MonitorPlan records anything
    recorder: Optional[RunSeriesRecorder] = None
    #: present only when the plan's probe loop is on
    sampler: Optional[ProbeSampler] = None
    #: present only in fluid traffic mode
    fluid: Optional[FluidStatusPlane] = None
    #: present only when the config's TracePlan samples any jobs
    tracer: Optional[TraceRecorder] = None


@dataclass(frozen=True)
class RunMetrics:
    """Aggregated outcome of one simulation run.

    Satisfies the core tuner's ``Observation`` protocol via ``record``
    and ``success_rate``.
    """

    record: EfficiencyRecord
    jobs_submitted: int
    jobs_completed: int
    jobs_successful: int
    mean_response: float
    throughput: float
    messages_sent: int
    scheduler_busy: float
    horizon: float
    #: exact F/G/H decomposition by (category, component, entity,
    #: message class) — flattened keys, see ``CostLedger.attribution``.
    #: ``math.fsum`` over any prefix's values reproduces the recorded
    #: F/G/H bit-for-bit (conservation invariant).
    attribution: Optional[Dict[str, float]] = None
    #: per-message-kind network traffic (messages, payload, link_payload,
    #: hops) — the network's axis of the attribution report; transit time
    #: is latency, not RMS cost, so it never appears in G.
    traffic: Optional[Dict[str, Dict[str, float]]] = None
    #: fault-injection and recovery counters (crashes, jobs killed,
    #: re-dispatches, ...); ``None`` for fault-free runs so zero-fault
    #: metrics stay byte-identical to pre-faults builds.
    fault_stats: Optional[Dict[str, int]] = None
    #: windowed F/G/H/probe streams (``WindowedSeries.to_jsonable``
    #: shape); ``None`` unless the config's MonitorPlan is enabled, so
    #: unmonitored metrics stay byte-identical to pre-series builds.
    series: Optional[Dict] = None
    #: sampled-job span DAGs and per-message-class latency histograms
    #: (``TraceRecorder.payload`` shape); ``None`` unless the config's
    #: TracePlan is enabled, so untraced metrics stay byte-identical to
    #: pre-tracing builds.
    trace: Optional[Dict] = None

    @property
    def success_rate(self) -> float:
        """Successful jobs over submitted jobs (unfinished jobs count
        against the RMS — they missed their window entirely)."""
        if self.jobs_submitted == 0:
            return 1.0
        return self.jobs_successful / self.jobs_submitted

    @property
    def efficiency(self) -> float:
        """``E = F/(F+G+H)`` of the run."""
        return self.record.efficiency


def build_system(config: SimulationConfig) -> System:
    """Construct the managed system described by ``config``."""
    info = get_rms(config.rms)
    hub = RngHub(config.seed)
    # Backend selection (config > env > reference) changes only *how*
    # events are stored — every backend dispatches the identical event
    # sequence, so results are backend-independent by contract.
    sim = create_kernel(config.kernel_backend)
    ledger = CostLedger()

    n_sched = 1 if info.centralized else config.n_schedulers
    n_clusters = n_sched
    n_est = config.n_estimators if config.n_estimators is not None else n_sched

    # --- topology + placement -----------------------------------------
    n_nodes = config.n_resources + n_sched
    topo = generate_topology(
        TopologyParams(n_nodes=max(4, n_nodes)), hub.stream("topology")
    )
    gm = map_grid(
        topo,
        n_schedulers=n_sched,
        n_resources=config.n_resources,
        n_estimators=n_est,
    )
    router = Router(topo)
    if gm.scheduler_tables is not None:
        # Donate the mapper's per-scheduler Dijkstra tables: scheduler
        # (and co-located estimator) sites originate nearly all routed
        # traffic, so the router never recomputes its hottest sources.
        for node, table in zip(gm.scheduler_nodes, gm.scheduler_tables):
            router.prime(node, table)
    fluid_mode = config.fluid.is_fluid
    if fluid_mode:
        # At 1e5-scale pools nearly every resource node sends at least
        # one routed message (job completions), and a per-source
        # Dijkstra each would dwarf the run itself.  Latency-symmetric
        # reverse lookup reuses the schedulers' cached tables.
        router.symmetric = True
    # The plan's link_loss subsumes the deprecated loss_probability
    # knob (__post_init__ canonicalizes it onto the plan); the rng
    # stream name is unchanged so the deprecated spelling reproduces
    # the same loss decisions bit-for-bit.
    plan = config.faults
    network = Network(
        sim,
        router,
        delay_scale=config.link_delay_scale,
        loss_probability=plan.link_loss,
        rng=hub.stream("loss") if plan.any_link_loss else None,
    )

    # --- resources -------------------------------------------------------
    resources: List[Resource] = []
    for r in range(config.n_resources):
        res = Resource(
            sim,
            f"res{r}",
            node=gm.resource_nodes[r],
            resource_id=r,
            cluster_id=gm.cluster_of_resource[r],
            service_rate=config.service_rate,
            ledger=ledger,
            costs=config.costs,
        )
        res.network = network
        resources.append(res)

    # --- schedulers -------------------------------------------------------
    schedulers = []
    for s in range(n_sched):
        sched = info.scheduler_cls(
            sim,
            f"sched{s}",
            node=gm.scheduler_nodes[s],
            scheduler_id=s,
            ledger=ledger,
            costs=config.costs,
        )
        sched.network = network
        sched.rng = hub.stream(f"sched{s}")
        sched.l_p = config.l_p
        sched.t_l = config.common.t_l
        sched.redispatch_backoff = plan.redispatch_backoff
        sched.redispatch_cap = plan.redispatch_cap
        if hasattr(sched, "volunteer_interval"):
            sched.volunteer_interval = config.volunteer_interval
        schedulers.append(sched)

    for s, sched in enumerate(schedulers):
        mine = gm.resources_of_cluster[s]
        sched.resources = {r: resources[r] for r in mine}
        sched.table = StatusTable(mine)
        for r in mine:
            resources[r].scheduler = sched

    # Neighborhood sets: the nearest `neighborhood_size` peers by
    # transit latency between scheduler sites.
    for sched in schedulers:
        others = [p for p in schedulers if p is not sched]
        others.sort(key=lambda p: router.transit_delay(sched.node, p.node, 1.0))
        sched.peers = others[: config.neighborhood_size]

    # --- estimators -------------------------------------------------------
    estimators: List[Estimator] = []
    for e in range(n_est):
        est = Estimator(
            sim,
            f"est{e}",
            node=gm.estimator_nodes[e],
            estimator_id=e,
            ledger=ledger,
            costs=config.costs,
            batch_window=config.effective_batch_window,
        )
        est.network = network
        est.schedulers = {s: schedulers[s] for s in gm.schedulers_of_estimator.get(e, [])}
        estimators.append(est)
    for r, res in enumerate(resources):
        res.estimator = estimators[gm.estimator_of_resource[r]]

    # --- middleware -------------------------------------------------------
    middleware = None
    if info.uses_middleware:
        hub_node = max(range(topo.n_nodes), key=topo.degree)
        middleware = Middleware(sim, "middleware", hub_node, ledger, config.costs)
        middleware.network = network
        for sched in schedulers:
            sched.middleware = middleware

    # --- periodic machinery -------------------------------------------------
    # Per-resource report phases are drawn in BOTH traffic modes (fluid
    # discards them): the draws keep the phase stream aligned so the
    # scheduler volunteer phases — which stay discrete either way — are
    # bit-identical across modes, a precondition of the fluid-vs-
    # discrete cross-validation.
    phase_rng = hub.stream("phases")
    fluid_plane = None
    report_phases: List[float] = []
    for res in resources:
        phase = float(phase_rng.random() * config.update_interval)
        report_phases.append(phase)
        if not fluid_mode:
            res.start_reporting(config.update_interval, phase=phase)
    if fluid_mode:
        fluid_plane = FluidStatusPlane(
            sim,
            config,
            ledger,
            network,
            resources,
            estimators,
            gm,
            phases=report_phases,
        )
        for res in resources:
            res.fluid_sink = fluid_plane
        fluid_plane.arm()
    for sched in schedulers:
        if hasattr(sched, "start_volunteering"):
            sched.start_volunteering(
                phase=float(phase_rng.random() * config.volunteer_interval)
            )

    # --- fault injection -------------------------------------------------
    # Everything here is gated on the plan actually injecting something,
    # so an inert FaultPlan() adds no events, draws no RNG streams, and
    # leaves zero-fault runs byte-identical to a build without the
    # subsystem.
    injector = None
    if plan.has_resource_faults:
        # Failure detection: each estimator watches the resources that
        # report to it.  Sweeps are phase-staggered deterministically so
        # the estimators do not all sweep at the same instant.
        hb_timeout = config.heartbeat_timeout
        hb_interval = config.heartbeat_interval
        watched: Dict[int, Dict[int, int]] = {}
        for r in range(config.n_resources):
            e = gm.estimator_of_resource[r]
            watched.setdefault(e, {})[r] = gm.cluster_of_resource[r]
        if fluid_plane is not None:
            # Fluid mode: sweep *work* becomes a rate at the plane;
            # dead declarations stay discrete events at crash+timeout.
            fluid_plane.start_watch(
                watched, timeout=hb_timeout, interval=hb_interval
            )
        else:
            for e, est in enumerate(estimators):
                if e in watched:
                    est.start_watch(
                        watched[e],
                        timeout=hb_timeout,
                        interval=hb_interval,
                        phase=hb_interval * e / max(1, n_est),
                    )
    if not plan.is_inert and (
        plan.has_resource_faults or plan.blackouts or plan.degradations
    ):
        injector = FaultInjector(sim, plan, resources, schedulers, network)
        # Fault onsets stop with the workload at the horizon; recoveries
        # keep landing through the drain so killed jobs can still be
        # detected and re-dispatched before the run ends.
        injector.arm(
            end=config.horizon,
            rng=hub.stream("faults") if plan.has_churn else None,
            recover_until=config.horizon + config.drain,
        )

    # --- causal tracing ---------------------------------------------------
    # Armed *before* the workload: arrival events bind each scheduler's
    # ``deliver`` at ``schedule_at`` time, so the tracer's instance-level
    # shadow must already be in place.  With tracing off (the default)
    # every ``tracer``/``latency_tap`` attribute stays ``None`` and the
    # hot paths pay nothing.  Sampling is a pure hash of (seed, job_id)
    # — no RNG stream is drawn, so the arrival/topology/protocol streams
    # below are bit-identical with tracing on or off.
    tracer = None
    if config.trace.is_enabled:
        tracer = TraceRecorder(sim, config.trace, ledger, config.seed)
        tracer.arm(schedulers, resources, network)

    # --- workload -------------------------------------------------------------
    generator = WorkloadGenerator(
        rate=config.workload_rate,
        n_clusters=n_clusters,
        t_cpu=config.common.t_cpu,
        benefit_lo=config.common.benefit_lo,
        benefit_hi=config.common.benefit_hi,
    )
    coordinator = None
    if config.dependency_prob > 0.0:
        dag_gen = DagWorkloadGenerator(
            generator,
            dependency_prob=config.dependency_prob,
            max_parents=config.max_parents,
            window=config.dependency_window,
        )
        dag = dag_gen.generate(config.horizon, hub.stream("workload"))
        jobs = [Job(spec) for spec in dag.jobs]
        coordinator = DependencyCoordinator(
            sim,
            dag,
            {j.job_id: j for j in jobs},
            schedulers,
            ledger,
            config.costs,
        )
        for res in resources:
            res.completion_listener = coordinator.on_complete
        for job in jobs:
            sim.schedule_at(job.spec.arrival_time, coordinator.job_arrived, job)
    else:
        specs = generator.generate(config.horizon, hub.stream("workload"))
        jobs = [Job(spec) for spec in specs]
        for job in jobs:
            sched = schedulers[job.spec.submit_cluster % n_sched]
            sim.schedule_at(
                job.spec.arrival_time,
                sched.deliver,
                Message(MessageKind.JOB_SUBMIT, payload={"job": job}),
            )
    if tracer is not None:
        tracer.register_jobs(jobs)

    # --- time-resolved monitoring ----------------------------------------
    # Gated on the plan recording anything: an unmonitored run keeps
    # ledger.observer is None (no hot-path cost on either backend) and
    # schedules no probe events.  Armed *last* so the probe loop's event
    # only shifts seq numbers uniformly after all build-time scheduling;
    # probes are pure reads, so real events dispatch identically and a
    # zero-charge-rate plan leaves every result byte-identical.
    recorder = None
    sampler = None
    mplan = config.monitor
    if mplan.is_enabled:
        recorder = RunSeriesRecorder(mplan, config.horizon)
        if mplan.series:
            recorder.observe_ledger(sim, ledger)
        if mplan.probe_interval > 0.0:
            sampler = ProbeSampler(
                sim,
                mplan,
                recorder,
                ledger,
                schedulers,
                estimators,
                resources,
                fluid=fluid_plane,
            )
            sampler.arm(end=config.horizon + config.drain)

    return System(
        config=config,
        sim=sim,
        ledger=ledger,
        network=network,
        schedulers=schedulers,
        resources=resources,
        estimators=estimators,
        middleware=middleware,
        jobs=jobs,
        coordinator=coordinator,
        injector=injector,
        recorder=recorder,
        sampler=sampler,
        fluid=fluid_plane,
        tracer=tracer,
    )


def run_simulation(config: SimulationConfig) -> RunMetrics:
    """Build, run, and summarize one simulation.

    The arrival window is ``[0, horizon)``; the run then continues (in
    bounded steps) until every submitted job completed or the drain
    allowance is exhausted, so completions near the horizon are
    credited rather than truncated.

    With an ambient telemetry session the run is wrapped in a
    ``sim.run`` span carrying the kernel's dispatch totals (events
    executed, events/sec) — the kernel itself stays untouched; only
    its existing counters are read after the fact.

    With the ambient flight recorder on (``--flight-recorder`` /
    ``REPRO_FLIGHT_RECORDER=1``; pool workers inherit the env), the
    run's kernel dispatches and ledger charges feed the rolling rings,
    and any exception or cancellation dumps a post-mortem bundle before
    propagating — which is what makes a crash inside an
    ``ExperimentEngine`` worker diagnosable from artifacts alone.
    """
    tel = _telemetry()
    rec = _flightrec.current()
    with tel.span(
        "sim.run", rms=config.rms, seed=config.seed, horizon=config.horizon
    ) as span:
        t0 = time.monotonic()
        try:
            system = build_system(config)
            sim = system.sim
            if rec is not None:
                rec.note(
                    "sim.run start",
                    rms=config.rms,
                    seed=config.seed,
                    horizon=config.horizon,
                    n_schedulers=config.n_schedulers,
                    n_resources=config.n_resources,
                )
                sim.trace = rec.chain_kernel_trace(sim.trace)
                rec.observe_ledger(system.ledger)
            sim.run(until=config.horizon)

            deadline = config.horizon + config.drain
            step = max(200.0, config.horizon / 10.0)
            while sim.now < deadline and any(
                j.state != JobState.COMPLETED for j in system.jobs
            ):
                sim.run(until=min(deadline, sim.now + step))

            metrics = summarize(system)
            if tel.enabled and metrics.trace is not None:
                # One JSONL record per sampled job: the span DAG survives
                # in the ambient telemetry session's event stream even
                # when the caller discards RunMetrics.trace.
                for job_id, record in metrics.trace.get("jobs", {}).items():
                    tel.event(
                        "trace.job",
                        rms=config.rms,
                        seed=config.seed,
                        job_id=int(job_id),
                        **record,
                    )
        except BaseException as exc:
            already_dumped = getattr(exc, "_flightrec_dumped", False)
            if rec is not None and not already_dumped and not isinstance(exc, GeneratorExit):
                reason = (
                    "run.cancelled"
                    if isinstance(exc, KeyboardInterrupt)
                    else "sim.exception"
                )
                rec.dump(reason, error=exc, context={"rms": config.rms, "seed": config.seed})
                exc._flightrec_dumped = True
            raise
        if tel.enabled:
            wall = time.monotonic() - t0
            rate = sim.events_executed / wall if wall > 0 else 0.0
            span.set(
                events=sim.events_executed,
                sim_time=sim.now,
                jobs=len(system.jobs),
                events_per_sec=round(rate, 1),
            )
            scope = tel.metrics.scope("sim")
            scope.counter("runs").increment()
            scope.counter("events").increment(sim.events_executed)
            scope.tally("events_per_sec").record(rate)
        return metrics


def summarize(system: System) -> RunMetrics:
    """Aggregate a finished (or truncated) run into :class:`RunMetrics`."""
    jobs = system.jobs
    response = Tally("response")
    successful = 0
    completed = 0
    for j in jobs:
        if j.state == JobState.COMPLETED:
            completed += 1
            response.record(j.response_time)
            if j.successful:
                successful += 1
    horizon = system.config.horizon
    busy = sum(s.busy_time for s in system.schedulers)
    # Conservation insurance: the attribution cells are the only store
    # the F/G/H totals derive from, so this cannot trip unless the
    # ledger contract is broken — in which case the run must not be
    # silently trusted (the flight recorder, if on, bundles the window).
    try:
        system.ledger.check_conservation()
    except RuntimeError as exc:
        rec = _flightrec.current()
        if rec is not None:
            rec.dump(
                "invariant.conservation",
                error=exc,
                context={"rms": system.config.rms, "seed": system.config.seed},
            )
            exc._flightrec_dumped = True
        raise
    fault_stats = None
    plan = system.config.faults
    if system.injector is not None or plan.has_resource_faults:
        fault_stats = {
            "crashes": 0,
            "recoveries": 0,
            "blackouts": 0,
            "degradations": 0,
        }
        if system.injector is not None:
            fault_stats.update(system.injector.stats())
        fault_stats["jobs_killed"] = sum(r.jobs_killed for r in system.resources)
        fault_stats["stale_dispatches"] = sum(
            r.stale_dispatches for r in system.resources
        )
        fault_stats["dead_reported"] = sum(
            e.dead_reported for e in system.estimators
        )
        fault_stats["dead_notices"] = sum(
            s.dead_notices for s in system.schedulers
        )
        fault_stats["redispatches"] = sum(
            s.redispatches for s in system.schedulers
        )
        fault_stats["jobs_unrecovered"] = sum(
            1 for j in jobs if j.state == JobState.FAILED
        )
    series = None
    if system.recorder is not None:
        series = system.recorder.payload()
        if system.sampler is not None:
            series["sweeps"] = system.sampler.samples
    trace = None
    if system.tracer is not None:
        trace = system.tracer.payload()
    return RunMetrics(
        record=EfficiencyRecord.from_ledger(system.ledger),
        jobs_submitted=len(jobs),
        jobs_completed=completed,
        jobs_successful=successful,
        mean_response=response.mean,
        throughput=successful / horizon,
        messages_sent=system.network.messages_sent,
        scheduler_busy=busy,
        horizon=horizon,
        attribution=system.ledger.attribution(),
        traffic=system.network.traffic_summary(),
        fault_stats=fault_stats,
        series=series,
        trace=trace,
    )
