"""Evaluation harness: experiment cases, runner, reproduction drivers."""

from .cases import CASES, ExperimentCase, get_case, make_batch_simulate, make_simulate
from .config import PROFILES, CommonParameters, ScaleProfile, SimulationConfig
from .replication import MetricSummary, ReplicationResult, replicate
from .reporting import ascii_plot, figure_report, format_table, write_csv
from .reproduce import (
    FigureData,
    RMSSeries,
    Study,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from .faultstudy import (
    FaultStudyPoint,
    FaultStudyResult,
    default_churn_plan,
    fault_report,
    run_fault_study,
)
from .inspect import inspection_report
from .parallel import ExperimentEngine, RunCache, StudyManifest, config_key
from .summary import CaseSummary, study_report, summarize_case
from .runner import RunMetrics, System, build_system, run_simulation, summarize

__all__ = [
    "CASES",
    "ExperimentEngine",
    "RunCache",
    "StudyManifest",
    "config_key",
    "CommonParameters",
    "ExperimentCase",
    "FigureData",
    "PROFILES",
    "RMSSeries",
    "MetricSummary",
    "ReplicationResult",
    "RunMetrics",
    "ScaleProfile",
    "SimulationConfig",
    "CaseSummary",
    "FaultStudyPoint",
    "FaultStudyResult",
    "Study",
    "System",
    "ascii_plot",
    "build_system",
    "default_churn_plan",
    "fault_report",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure_report",
    "inspection_report",
    "format_table",
    "get_case",
    "make_batch_simulate",
    "make_simulate",
    "replicate",
    "run_fault_study",
    "run_simulation",
    "study_report",
    "summarize",
    "summarize_case",
    "write_csv",
]
