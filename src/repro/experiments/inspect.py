"""Post-run inspection: where did the overhead and the failures go?

Aggregate metrics say *how much* overhead a run produced;
:func:`inspection_report` says *where*: the ledger's G breakdown by
activity, the busiest schedulers/estimators (saturation hot-spots), the
cluster-level busy Gantt, and forensic timelines for the worst failed
jobs.  This is the report to read when a tuned point misses its
efficiency band and you want to know which plane to blame.
"""

from __future__ import annotations

from typing import List

from ..grid.jobs import JobState
from ..sim.trace import busy_gantt, job_timeline
from .reporting import format_table
from .runner import System

__all__ = ["overhead_breakdown", "hotspots", "failed_job_forensics", "inspection_report"]


def overhead_breakdown(system: System) -> List[List]:
    """Ledger rows ``[category, total, share-of-G]`` for the g.* categories."""
    ledger = system.ledger
    g_total = ledger.G or 1.0
    rows = []
    for category, amount in sorted(
        ledger.breakdown().items(), key=lambda kv: -kv[1]
    ):
        if category.startswith("g."):
            rows.append([category, amount, amount / g_total])
    return rows


def hotspots(system: System, top: int = 5) -> List[List]:
    """The busiest RMS servers: ``[name, busy fraction, served, queue]``.

    Busy fraction near 1.0 marks the saturated component that is
    throttling the run.
    """
    span = system.sim.now or 1.0
    servers = list(system.schedulers) + list(system.estimators)
    if system.middleware is not None:
        servers.append(system.middleware)
    ranked = sorted(servers, key=lambda s: -s.busy_time)
    return [
        [s.name, s.busy_time / span, s.served, s.queue_length]
        for s in ranked[:top]
    ]


def failed_job_forensics(system: System, top: int = 3) -> List[str]:
    """Timelines of the jobs that missed their bound by the most."""
    failed = [
        j
        for j in system.jobs
        if j.state == JobState.COMPLETED and not j.successful
    ]
    failed.sort(key=lambda j: -(j.response_time / j.spec.benefit_bound))
    lines: List[str] = []
    for j in failed[:top]:
        lines.extend(job_timeline(j))
        lines.append("")
    incomplete = [j for j in system.jobs if j.state != JobState.COMPLETED]
    if incomplete:
        lines.append(
            f"({len(incomplete)} jobs never completed within the drain — "
            f"states: {sorted({j.state for j in incomplete})})"
        )
    return lines


def inspection_report(system: System, gantt_width: int = 64) -> str:
    """The full human-readable post-mortem of one run."""
    parts = [f"Inspection of {system.config.rms} run (t = {system.sim.now:.0f})"]

    parts.append("\nRMS overhead breakdown (G by activity):")
    parts.append(
        format_table(
            ["category", "time units", "share"],
            overhead_breakdown(system),
            precision=3,
        )
    )

    parts.append("\nBusiest RMS servers:")
    parts.append(
        format_table(
            ["server", "busy frac", "served", "queued"],
            hotspots(system),
            precision=3,
        )
    )

    horizon = system.config.horizon
    parts.append("\nCluster service timeline:")
    parts.append(busy_gantt(system.jobs, 0.0, horizon, width=gantt_width))

    forensics = failed_job_forensics(system)
    parts.append("\nWorst benefit-bound misses:")
    parts.append("\n".join(forensics) if forensics else "(every job succeeded)")

    return "\n".join(parts)
