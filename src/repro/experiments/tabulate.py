"""Fixed-width text table rendering, shared by every experiments report.

One canonical renderer for the aligned tables that ``repro attrib``,
``repro faults``, ``repro series``, and the figure reports all print —
previously each carried its own near-identical copy.  Kept dependency-
free (no imports from the rest of the experiments stack) so anything in
the package can use it without layering concerns.

``repro.telemetry.report`` keeps a private ``_table`` on purpose: the
telemetry reports must not import the experiments stack at all, and a
shared helper would invert that layering.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], precision: int = 1
) -> str:
    """Render an aligned, right-justified text table.

    Floats are formatted to ``precision`` decimals (NaN prints as
    ``nan``), booleans as ``yes``/``no``, everything else via ``str``.
    Nonzero floats whose fixed rendering would round to zero (e.g.
    ``3e-05`` at one decimal) switch to scientific notation instead of
    printing a misleading ``0.0``, and a negative zero rendering is
    normalized to the positive form.  A dashed rule separates the
    header row from the body.
    """

    def fmt(x: Any) -> str:
        if isinstance(x, bool):
            return "yes" if x else "no"
        if isinstance(x, float):
            if x != x:
                return "nan"
            out = f"{x:.{precision}f}"
            if x != 0.0 and float(out) == 0.0:
                return f"{x:.{precision}e}"
            if out.lstrip("-").strip("0") in ("", "."):
                out = out.lstrip("-")
            return out
        return str(x)

    cells = [[fmt(h) for h in headers]] + [[fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
