"""Checkpoint/resume for multi-point studies.

A figure sweep measures many independent points — (case, RMS design)
pairs, each a full Step-1..4 isoefficiency procedure.  A paper-scale
sweep runs for hours; killing it halfway should not forfeit the
completed points.  :class:`StudyManifest` is the checkpoint record: a
single JSON file mapping a point's identity key to its fully serialized
:class:`~repro.core.procedure.ScalabilityResult` (plus the tuned
points' run metrics), written atomically after every completed point.
On resume, completed points are reconstructed from the manifest —
*skipped exactly*, zero simulations — and only the remainder runs.

The serializers here are also what makes results durable artifacts:
``result_to_jsonable`` / ``result_from_jsonable`` round-trip every
dataclass the measurement procedure produces.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from ...core.efficiency import EfficiencyRecord, NormalizedCurves
from ...core.isoefficiency import IsoefficiencyConstants
from ...core.procedure import ScalabilityResult
from ...core.slope import SlopeAnalysis
from ...core.tuner import TunedPoint
from .hashing import canonical_json

__all__ = [
    "MANIFEST_VERSION",
    "StudyManifest",
    "result_to_jsonable",
    "result_from_jsonable",
]

#: bump when the manifest payload format changes
#: (v2: tuned points carry the attribution decomposition, and F/G/H are
#: correctly-rounded ``fsum`` totals — v1 manifests hold sequential sums
#: and are discarded on load rather than resumed into mixed results)
MANIFEST_VERSION = 2


# ---------------------------------------------------------------------------
# ScalabilityResult (de)serialization
# ---------------------------------------------------------------------------

def _point_to_jsonable(point: TunedPoint) -> Dict[str, Any]:
    out = {
        "scale": point.scale,
        "settings": {str(k): float(v) for k, v in point.settings.items()},
        "record": {"F": point.record.F, "G": point.record.G, "H": point.record.H},
        "success_rate": point.success_rate,
        "objective": point.objective,
        "feasible": bool(point.feasible),
    }
    if point.attribution is not None:
        # JSON round-trips floats losslessly, so the conservation
        # invariant (fsum of parts == F/G/H exactly) survives resume.
        out["attribution"] = point.attribution
    return out


def _point_from_jsonable(payload: Dict[str, Any]) -> TunedPoint:
    record = payload["record"]
    return TunedPoint(
        scale=float(payload["scale"]),
        settings={str(k): float(v) for k, v in payload["settings"].items()},
        record=EfficiencyRecord(
            F=float(record["F"]), G=float(record["G"]), H=float(record["H"])
        ),
        success_rate=float(payload["success_rate"]),
        objective=float(payload["objective"]),
        feasible=bool(payload["feasible"]),
        attribution=payload.get("attribution"),
    )


def result_to_jsonable(result: ScalabilityResult) -> Dict[str, Any]:
    """Flatten a :class:`ScalabilityResult` into plain JSON types."""
    curves = result.curves
    slopes = result.slopes
    return {
        "name": result.name,
        "e0": result.e0,
        "points": [_point_to_jsonable(p) for p in result.points],
        "curves": {
            "scales": list(curves.scales),
            "f": list(curves.f),
            "g": list(curves.g),
            "h": list(curves.h),
        },
        "slopes": {
            "scales": list(slopes.scales),
            "g_slopes": list(slopes.g_slopes),
            "f_slopes": list(slopes.f_slopes),
            "scalable": list(slopes.scalable),
            "improving": list(slopes.improving),
        },
        "constants": {
            "alpha": result.constants.alpha,
            "c": result.constants.c,
            "c_prime": result.constants.c_prime,
        },
        "eq2_ok": [bool(v) for v in result.eq2_ok],
        "base_feasible": bool(result.base_feasible),
    }


def result_from_jsonable(payload: Dict[str, Any]) -> ScalabilityResult:
    """Rebuild a :class:`ScalabilityResult` from its JSON form."""
    curves = payload["curves"]
    slopes = payload["slopes"]
    constants = payload["constants"]
    return ScalabilityResult(
        name=str(payload["name"]),
        e0=float(payload["e0"]),
        points=[_point_from_jsonable(p) for p in payload["points"]],
        curves=NormalizedCurves(
            scales=tuple(curves["scales"]),
            f=tuple(curves["f"]),
            g=tuple(curves["g"]),
            h=tuple(curves["h"]),
        ),
        slopes=SlopeAnalysis(
            scales=tuple(slopes["scales"]),
            g_slopes=tuple(slopes["g_slopes"]),
            f_slopes=tuple(slopes["f_slopes"]),
            scalable=tuple(bool(v) for v in slopes["scalable"]),
            improving=tuple(bool(v) for v in slopes["improving"]),
        ),
        constants=IsoefficiencyConstants(
            alpha=float(constants["alpha"]),
            c=float(constants["c"]),
            c_prime=float(constants["c_prime"]),
        ),
        eq2_ok=[bool(v) for v in payload["eq2_ok"]],
        base_feasible=bool(payload["base_feasible"]),
    )


# ---------------------------------------------------------------------------
# The manifest file
# ---------------------------------------------------------------------------

class StudyManifest:
    """Durable record of a multi-point study's completed points.

    Parameters
    ----------
    path:
        Manifest file location.  A missing file starts an empty
        manifest; an unreadable one is treated the same (resume then
        recomputes everything rather than crashing).

    A point's **key** must encode everything that determines its result
    (profile, seed, case, RMS, tuning budget); the study layer builds
    it.  ``mark_done`` persists immediately and atomically, so a kill
    between points loses at most the in-flight point.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._completed: Dict[str, Any] = {}
        self.load()

    # ------------------------------------------------------------------
    def load(self) -> None:
        """(Re)read the manifest from disk, tolerating absence/corruption."""
        self._completed = {}
        try:
            payload = json.loads(self.path.read_text("utf-8"))
            if payload.get("version") != MANIFEST_VERSION:
                raise ValueError("manifest version mismatch")
            completed = payload["completed"]
            if not isinstance(completed, dict):
                raise TypeError("manifest 'completed' must be a mapping")
            self._completed = completed
        except FileNotFoundError:
            pass
        except (OSError, ValueError, KeyError, TypeError):
            # corrupted manifest: start over rather than crash the sweep
            self._completed = {}

    def save(self) -> None:
        """Atomically persist the manifest."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": MANIFEST_VERSION, "completed": self._completed}
        fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(canonical_json(payload))
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def is_done(self, key: str) -> bool:
        """Whether the point ``key`` completed in a previous run."""
        return key in self._completed

    def payload(self, key: str) -> Optional[Any]:
        """The stored payload for a completed point (``None`` if absent)."""
        return self._completed.get(key)

    def mark_done(self, key: str, payload: Any = None) -> None:
        """Record a completed point (with its result payload) and persist."""
        self._completed[key] = payload
        self.save()

    @property
    def completed_keys(self) -> List[str]:
        """Keys of every completed point, in insertion order."""
        return list(self._completed)

    def snapshot(self) -> Dict[str, Any]:
        """The completed-points mapping as plain JSON types (a copy)."""
        return json.loads(canonical_json(self._completed).decode("utf-8"))

    def fingerprint(self) -> str:
        """Content hash over the completed points (insertion-order free).

        Two manifests fingerprint equal iff they record the same points
        with byte-equal payloads — the identity witness the fabric's
        lease-recovery tests compare against an uninterrupted run.
        """
        import hashlib

        return hashlib.sha256(canonical_json(self._completed)).hexdigest()

    def __len__(self) -> int:
        """Number of completed points."""
        return len(self._completed)
