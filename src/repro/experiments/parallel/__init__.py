"""Parallel experiment engine: process-pool fan-out, run cache, resume.

The isoefficiency procedure is, computationally, hundreds of
independent :func:`~repro.experiments.runner.run_simulation` calls —
tuner probes at each scale, replications across seeds, whole figure
sweeps.  Every one of them is a pure function of its
:class:`~repro.experiments.config.SimulationConfig` (the runner seeds
every stream from ``config.seed``), which makes the sweep
embarrassingly parallel *and* content-addressable.  This subsystem
exploits both properties:

* :mod:`~repro.experiments.parallel.hashing` — a canonical, stable,
  cross-process hash of a :class:`SimulationConfig` (no reliance on
  ``PYTHONHASHSEED``).
* :mod:`~repro.experiments.parallel.cache` — a content-addressed
  on-disk **run cache** (``.repro-cache/`` by default): the config hash
  keys a persisted :class:`~repro.experiments.runner.RunMetrics` JSON
  record, so repeated tuner probes and benchmark re-runs are free.
* :mod:`~repro.experiments.parallel.engine` —
  :class:`ExperimentEngine`, which fans batches of independent configs
  out over a :class:`concurrent.futures.ProcessPoolExecutor`
  (``jobs=1`` falls back to a plain in-process loop so debugging and
  coverage keep working).
* :mod:`~repro.experiments.parallel.manifest` —
  :class:`StudyManifest`, a checkpoint/resume record for multi-point
  studies: completed (case, RMS) points are persisted with their full
  serialized results, so a killed sweep restarts where it left off.

All of it is gated on run determinism, which
``tests/test_determinism.py`` proves byte-for-byte, in-process and
across a subprocess boundary.
"""

from .cache import RunCache, metrics_from_jsonable, metrics_json_bytes, metrics_to_jsonable
from .engine import ExperimentEngine, resolve_jobs
from .hashing import (
    CACHE_SCHEMA_VERSION,
    CONDITIONAL_PROVENANCE_FIELDS,
    PROVENANCE_FIELDS,
    canonical_config,
    config_key,
)
from .manifest import StudyManifest, result_from_jsonable, result_to_jsonable

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CONDITIONAL_PROVENANCE_FIELDS",
    "ExperimentEngine",
    "PROVENANCE_FIELDS",
    "RunCache",
    "StudyManifest",
    "canonical_config",
    "config_key",
    "metrics_from_jsonable",
    "metrics_json_bytes",
    "metrics_to_jsonable",
    "resolve_jobs",
    "result_from_jsonable",
    "result_to_jsonable",
]
