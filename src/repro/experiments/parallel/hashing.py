"""Canonical, cross-process hashing of simulation configurations.

The run cache and the study manifest both key on *what a run computes*,
which is fully determined by its :class:`SimulationConfig` (the runner
derives every random stream from ``config.seed``).  The key must
therefore be

* **canonical** — invariant to dict/field ordering and to how the
  config was constructed (``replace``, ``with_enablers``, literal);
* **stable across processes** — no dependence on ``PYTHONHASHSEED``,
  object identity, or interpreter session (Python's built-in ``hash``
  satisfies none of these for strings);
* **sensitive** — any semantic field change, however deep
  (``costs.update_proc``, ``common.t_cpu``), must change the key.

We get all three by flattening the config dataclass tree into plain
JSON types, serializing with sorted keys, and hashing with SHA-256.
``CACHE_SCHEMA_VERSION`` is mixed into the digest so that changing the
persisted record format (or the meaning of a config field) invalidates
old cache entries wholesale instead of deserializing them wrongly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict

from ..config import SimulationConfig

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CONDITIONAL_PROVENANCE_FIELDS",
    "PROVENANCE_FIELDS",
    "canonical_config",
    "config_key",
    "canonical_json",
]

#: bump when the cache record format or config semantics change
#: (v2: RunMetrics carries the attribution decomposition and traffic
#: summary, and F/G/H are correctly-rounded ``fsum`` totals — pre-v2
#: entries hold last-ulp-different sequential sums and must not mix
#: with fresh runs)
#: (v3: SimulationConfig carries a FaultPlan — nested dataclasses
#: canonicalize recursively, so it hashes automatically — the
#: deprecated loss_probability knob canonicalizes onto the plan, and
#: RunMetrics may carry fault_stats)
CACHE_SCHEMA_VERSION = 3

#: config fields that record *how* a result was produced, not *what* it
#: is — excluded from canonicalization so they never perturb the key.
#: ``kernel_backend`` qualifies because backends are bit-identical by
#: contract (the cross-backend differential suite enforces it): a cached
#: result is valid under every backend, and keying on the backend would
#: silently fork the cache.  Keys are therefore unchanged from before
#: the field existed — no schema bump, old entries stay valid.
PROVENANCE_FIELDS = frozenset({"kernel_backend"})

#: fields that are provenance only in some states: ``monitor`` is
#: dropped while the plan is passive (pure observation, results
#: bit-identical to an unmonitored run) but hashed once it charges
#: ``g.monitor``; ``fluid`` is dropped while the plan is inert
#: (``discrete`` mode changes nothing about the run, so pre-fluid
#: cache entries stay valid without a schema bump) but hashed once
#: the fluid traffic model is enabled; ``trace`` follows the monitor
#: pattern exactly — a zero-charge-rate plan samples spans without
#: touching F/G/H or any job outcome, so it is dropped, while a plan
#: that charges ``g.trace`` is hashed — see :func:`canonical_config`.
CONDITIONAL_PROVENANCE_FIELDS = frozenset({"monitor", "fluid", "trace"})


def _plain(value: Any) -> Any:
    """Reduce a config field value to plain JSON types, recursively."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        # Collapse integral floats so 2.0 and 2 produced by different
        # construction paths hash identically.
        return int(value) if value.is_integer() else value
    raise TypeError(f"cannot canonicalize config field of type {type(value)!r}")


def canonical_config(config: SimulationConfig) -> Dict[str, Any]:
    """The config as a nested dict of plain JSON types.

    Field order is irrelevant to the eventual key (serialization sorts
    keys at every level).  Provenance fields (:data:`PROVENANCE_FIELDS`)
    are dropped: they describe the execution vehicle, not the result.

    The monitor plan is conditionally provenance: a **passive** plan
    (no probe charges) observes a run without changing anything it
    computes — F/G/H, attribution, and job outcomes are bit-identical
    to an unmonitored run — so it is dropped like ``kernel_backend``
    and keys stay unchanged from before the field existed (no schema
    bump; old entries remain valid and shareable with monitored runs).
    An **active** plan charges ``g.monitor`` and therefore hashes like
    any semantic field.

    The fluid plan follows the same pattern: an inert (``discrete``)
    plan *is* the pre-fluid behaviour, so dropping it keeps every key
    bit-for-bit what it was before the field existed; a ``fluid`` plan
    changes the traffic model and is hashed like any semantic field.

    The trace plan mirrors the monitor plan: sampling decisions are a
    pure hash (never a simulation RNG draw) and a zero-charge-rate
    plan records spans without perturbing F/G/H or any job outcome, so
    such **passive** plans are dropped from the key; a plan charging
    ``g.trace`` is hashed like any semantic field.
    """
    plain = _plain(config)
    for name in PROVENANCE_FIELDS:
        plain.pop(name, None)
    if not config.monitor.is_active:
        plain.pop("monitor", None)
    if not config.fluid.is_fluid:
        plain.pop("fluid", None)
    if not config.trace.is_active:
        plain.pop("trace", None)
    return plain


def canonical_json(payload: Any) -> bytes:
    """Serialize ``payload`` to canonical (sorted, compact) JSON bytes."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def config_key(config: SimulationConfig) -> str:
    """The content-addressed cache key of one simulation run.

    A hex SHA-256 digest over the canonicalized config plus the cache
    schema version; equal configs map to equal keys in every process.
    """
    payload = {"v": CACHE_SCHEMA_VERSION, "config": canonical_config(config)}
    return hashlib.sha256(canonical_json(payload)).hexdigest()
