"""The experiment engine: cached, parallel execution of simulation runs.

:class:`ExperimentEngine` is the single choke point through which the
tuner's candidate batches, replication fans, benchmark sweeps, and the
CLI all execute simulations.  For every batch it

1. deduplicates identical configs (the tuner frequently revisits
   points),
2. serves what it can from the :class:`~.cache.RunCache` (if attached),
3. fans the remaining *unique* configs out over a
   ``ProcessPoolExecutor`` — or runs them inline when ``jobs == 1`` —
4. writes fresh results back to the cache,

and returns results in input order.  Because every run is a pure
function of its config, the results are **independent of the worker
count**: ``jobs=1`` and ``jobs=8`` produce identical metrics, which is
what lets the run cache and the determinism test layer gate this whole
subsystem.

Worker-count resolution order: explicit argument, then the
``REPRO_JOBS`` environment variable, then 1 (serial).  ``jobs <= 0``
means "one per CPU".
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ...envknobs import get_int
from ...telemetry.spans import current as _telemetry
from ..config import SimulationConfig
from ..runner import RunMetrics, run_simulation
from .cache import RunCache
from .hashing import config_key

__all__ = ["ExperimentEngine", "resolve_jobs"]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``$REPRO_JOBS`` > 1.

    ``0`` or a negative value (from either source) selects
    ``os.cpu_count()`` workers.
    """
    jobs = get_int("REPRO_JOBS", override=jobs, default=1)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _run_config(config: SimulationConfig) -> RunMetrics:
    """Top-level worker (must be picklable for the process pool)."""
    return run_simulation(config)


def _run_config_timed(config: SimulationConfig) -> Tuple[RunMetrics, int, float]:
    """Worker that also reports its PID and wall-clock seconds.

    Used when telemetry is enabled so per-job timings measured *inside*
    the worker (not queue-inflated parent-side latencies) reach the
    trace.  The metrics are exactly :func:`_run_config`'s.
    """
    t0 = time.monotonic()
    metrics = run_simulation(config)
    return metrics, os.getpid(), time.monotonic() - t0


class ExperimentEngine:
    """Runs batches of independent simulations, cached and in parallel.

    Parameters
    ----------
    jobs:
        Worker processes (see :func:`resolve_jobs`).  ``1`` keeps
        everything in-process — no pool, no pickling — so debuggers,
        profilers, and coverage see every frame.
    cache:
        A :class:`RunCache`, or ``None`` to disable persistence
        entirely (the default: library callers opt in, the CLI and
        benchmarks attach one).

    The engine may be used as a context manager; otherwise call
    :meth:`close` to reap the worker pool (it is also reaped on
    garbage collection).
    """

    def __init__(self, jobs: Optional[int] = None, cache: Optional[RunCache] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        #: simulations actually executed (cache misses), for tests/UX
        self.runs_executed = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def run(self, config: SimulationConfig) -> RunMetrics:
        """Run (or fetch) a single simulation."""
        return self.run_many([config])[0]

    def run_many(self, configs: Sequence[SimulationConfig]) -> List[RunMetrics]:
        """Run a batch of independent simulations; results in input order.

        Identical configs are executed once; cache hits are not
        executed at all.  With ``jobs > 1`` the unique misses execute
        concurrently in worker processes.

        With an ambient telemetry session, the batch is wrapped in an
        ``engine.batch`` span (dedup/hit/miss counts, worker
        utilization) and every executed run emits an ``engine.run``
        event with its worker-side wall-clock — the before/after
        numbers performance work needs.
        """
        tel = _telemetry()
        configs = list(configs)
        keys = [config_key(c) for c in configs]
        results: Dict[str, RunMetrics] = {}

        with tel.span(
            "engine.batch", size=len(configs), unique=len(set(keys)), jobs=self.jobs
        ) as span:
            repairs_before = self.cache.repairs if self.cache is not None else 0

            # 1) cache reads
            if self.cache is not None:
                for key, config in zip(keys, configs):
                    if key not in results:
                        hit = self.cache.get(config, key=key)
                        if hit is not None:
                            results[key] = hit
            cache_hits = len(results)

            # 2) unique misses, in first-appearance order (determinism of
            #    execution order for the serial path); set-backed
            #    membership keeps large batches out of O(n^2)
            miss_keys: List[str] = []
            miss_configs: List[SimulationConfig] = []
            missed = set()
            for key, config in zip(keys, configs):
                if key not in results and key not in missed:
                    missed.add(key)
                    miss_keys.append(key)
                    miss_configs.append(config)

            # 3) execute — through the overridable seam, so alternative
            #    execution vehicles (the distributed fabric) plug in here
            #    while cache policy and result ordering stay identical
            busy = 0.0
            wall = 0.0
            if miss_configs:
                t_exec = time.monotonic()
                computed, busy = self._execute_batch(miss_keys, miss_configs, tel)
                wall = time.monotonic() - t_exec
                self.runs_executed += len(miss_configs)
                for key, config, metrics in zip(miss_keys, miss_configs, computed):
                    results[key] = metrics
                    # 4) cache writes
                    if self.cache is not None:
                        self.cache.put(config, metrics, key=key)

            if tel.enabled:
                repairs = (
                    self.cache.repairs - repairs_before if self.cache is not None else 0
                )
                span.set(
                    cache_hits=cache_hits,
                    executed=len(miss_configs),
                    cache_repairs=repairs,
                    utilization=(
                        round(busy / (wall * self.jobs), 4) if wall > 0 else None
                    ),
                )
                scope = tel.metrics.scope("engine")
                scope.counter("batches").increment()
                scope.counter("runs_requested").increment(len(configs))
                scope.counter("runs_executed").increment(len(miss_configs))
                scope.counter("cache_hits").increment(cache_hits)
                scope.gauge("jobs").set(self.jobs)
                if miss_configs:
                    scope.tally("batch_seconds").record(wall)

        return [results[key] for key in keys]

    # ------------------------------------------------------------------
    def _execute_batch(
        self, miss_keys: List[str], miss_configs: List[SimulationConfig], tel
    ) -> Tuple[List[RunMetrics], float]:
        """Execute the unique cache misses; return ``(metrics, busy_seconds)``.

        The execution seam of :meth:`run_many`: subclasses swap the
        vehicle (e.g. :class:`~repro.fabric.coordinator.FabricEngine`
        dispatches to socket workers) without touching dedup, cache
        policy, or result ordering — which is exactly what makes a
        fabric study byte-identical to a local ``--jobs N`` run.
        ``metrics`` must align with ``miss_keys``; ``busy_seconds`` is
        the summed worker-side wall-clock (0.0 when unknown).
        """
        busy = 0.0
        if self.jobs == 1 or len(miss_configs) == 1:
            computed = []
            for key, c in zip(miss_keys, miss_configs):
                t0 = time.monotonic()
                computed.append(_run_config(c))
                seconds = time.monotonic() - t0
                busy += seconds
                if tel.enabled:
                    tel.event(
                        "engine.run",
                        key=key[:12],
                        rms=c.rms,
                        seed=c.seed,
                        seconds=round(seconds, 6),
                        worker_pid=os.getpid(),
                    )
                    tel.metrics.histogram("engine.run_seconds").record(seconds)
        elif tel.enabled:
            computed = []
            for (metrics, pid, seconds), key, c in zip(
                self._executor().map(_run_config_timed, miss_configs),
                miss_keys,
                miss_configs,
            ):
                computed.append(metrics)
                busy += seconds
                tel.event(
                    "engine.run",
                    key=key[:12],
                    rms=c.rms,
                    seed=c.seed,
                    seconds=round(seconds, 6),
                    worker_pid=pid,
                )
                tel.metrics.histogram("engine.run_seconds").record(seconds)
        else:
            computed = list(self._executor().map(_run_config, miss_configs))
        return computed, busy

    def _executor(self) -> ProcessPoolExecutor:
        """The lazily created, reused worker pool."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        """Context-manager entry: the engine itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: reap the worker pool."""
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass
