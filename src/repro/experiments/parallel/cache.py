"""Content-addressed on-disk cache of simulation results.

One cache entry is one JSON file ``<root>/<kk>/<key>.json`` where
``key = config_key(config)`` (and ``kk`` its first two hex digits, to
keep directories small).  The payload is the full
:class:`~repro.experiments.runner.RunMetrics` record, so a cache hit
reconstructs exactly what :func:`run_simulation` would have returned —
the determinism tests prove the round trip is byte-faithful.

Robustness rules:

* a **corrupted or truncated** entry is treated as a miss (the run is
  recomputed and the entry rewritten), never an error;
* writes are **atomic** (temp file + ``os.replace``), so a killed sweep
  cannot leave a half-written entry that later poisons a read;
* ``read=False`` supports ``--no-cache``: reads are bypassed but fresh
  results are still written, so a forced recompute repopulates the
  cache instead of orphaning it.
"""

from __future__ import annotations

import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from ...core.efficiency import EfficiencyRecord
from ...envknobs import get_str
from ...telemetry.spans import current as _telemetry
from ..config import SimulationConfig
from ..runner import RunMetrics
from .hashing import CACHE_SCHEMA_VERSION, canonical_json, config_key

import json

log = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "RunCache",
    "metrics_to_jsonable",
    "metrics_from_jsonable",
    "metrics_json_bytes",
]

#: default cache location (relative to the working directory);
#: override with the ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = ".repro-cache"

#: RunMetrics scalar fields persisted verbatim
_METRIC_FIELDS = (
    "jobs_submitted",
    "jobs_completed",
    "jobs_successful",
    "mean_response",
    "throughput",
    "messages_sent",
    "scheduler_busy",
    "horizon",
)


def metrics_to_jsonable(metrics: RunMetrics) -> Dict[str, Any]:
    """Flatten a :class:`RunMetrics` into plain JSON types.

    The attribution decomposition and traffic summary ride along
    verbatim: JSON round-trips Python floats losslessly, so the
    conservation invariant (``fsum`` of attributed parts equals F/G/H
    exactly) survives the cache.
    """
    out: Dict[str, Any] = {
        "record": {"F": metrics.record.F, "G": metrics.record.G, "H": metrics.record.H}
    }
    for name in _METRIC_FIELDS:
        out[name] = getattr(metrics, name)
    if metrics.attribution is not None:
        out["attribution"] = metrics.attribution
    if metrics.traffic is not None:
        out["traffic"] = metrics.traffic
    if metrics.fault_stats is not None:
        out["fault_stats"] = metrics.fault_stats
    if metrics.series is not None:
        out["series"] = metrics.series
    if metrics.trace is not None:
        out["trace"] = metrics.trace
    return out


def metrics_from_jsonable(payload: Dict[str, Any]) -> RunMetrics:
    """Rebuild a :class:`RunMetrics` from :func:`metrics_to_jsonable` output.

    Raises
    ------
    KeyError / TypeError / ValueError
        If the payload is malformed; callers treat that as a cache miss.
    """
    record = payload["record"]
    return RunMetrics(
        record=EfficiencyRecord(
            F=float(record["F"]), G=float(record["G"]), H=float(record["H"])
        ),
        jobs_submitted=int(payload["jobs_submitted"]),
        jobs_completed=int(payload["jobs_completed"]),
        jobs_successful=int(payload["jobs_successful"]),
        mean_response=float(payload["mean_response"]),
        throughput=float(payload["throughput"]),
        messages_sent=int(payload["messages_sent"]),
        scheduler_busy=float(payload["scheduler_busy"]),
        horizon=float(payload["horizon"]),
        attribution=payload.get("attribution"),
        traffic=payload.get("traffic"),
        fault_stats=payload.get("fault_stats"),
        series=payload.get("series"),
        trace=payload.get("trace"),
    )


def metrics_json_bytes(metrics: RunMetrics) -> bytes:
    """Canonical JSON encoding of a run's metrics.

    Used by the determinism tests as the byte-identity witness: two
    runs are "byte-identical" iff these encodings are equal.
    """
    return canonical_json(metrics_to_jsonable(metrics))


class RunCache:
    """Persistent map ``SimulationConfig -> RunMetrics`` keyed by content.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
        ``.repro-cache``.  Created lazily on first write.
    read:
        When ``False`` (``--no-cache``), :meth:`get` always misses but
        :meth:`put` still persists results.
    write:
        When ``False``, the cache is read-only.
    """

    def __init__(
        self,
        root: "str | Path | None" = None,
        read: bool = True,
        write: bool = True,
    ) -> None:
        if root is None:
            root = get_str("REPRO_CACHE_DIR", default=DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.read = read
        self.write = write
        #: diagnostics: reads served / reads missed / entries written /
        #: unreadable entries encountered
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.errors = 0

    @property
    def repairs(self) -> int:
        """Corrupt entries encountered and scheduled for repair.

        Every unreadable entry is recomputed and rewritten by the
        engine's miss path, so the corrupt-read count *is* the repair
        count.  Each one is logged with the offending key and counted
        in the telemetry metrics (``cache.repairs``) — corruption is
        survivable, but never silent.
        """
        return self.errors

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, config: SimulationConfig, key: Optional[str] = None) -> Optional[RunMetrics]:
        """The cached result for ``config``, or ``None`` on any miss.

        Corrupted, truncated, or wrong-version entries count as misses
        (and are tallied in :attr:`errors`).
        """
        if not self.read:
            self.misses += 1
            return None
        key = key or config_key(config)
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text("utf-8"))
            if payload.get("version") != CACHE_SCHEMA_VERSION:
                raise ValueError(f"cache schema {payload.get('version')!r}")
            metrics = metrics_from_jsonable(payload["metrics"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # unreadable entry: fall back to recompute, never crash —
            # but say so, and count the repair
            self.errors += 1
            self.misses += 1
            log.warning(
                "corrupt run-cache entry %s (%s: %s); recomputing", key, type(exc).__name__, exc
            )
            tel = _telemetry()
            tel.metrics.counter("cache.repairs").increment()
            tel.event("cache.corrupt", key=key, error=f"{type(exc).__name__}: {exc}")
            return None
        self.hits += 1
        return metrics

    def put(
        self, config: SimulationConfig, metrics: RunMetrics, key: Optional[str] = None
    ) -> None:
        """Persist ``metrics`` under ``config``'s key (atomic replace).

        The entry records which kernel backend produced the result —
        provenance only: the key excludes the backend (backends are
        bit-identical, so the entry serves every backend), and readers
        ignore the field.
        """
        if not self.write:
            return
        from ...sim.backend import resolve_backend

        path = self.path_for(key or config_key(config))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_SCHEMA_VERSION,
            "kernel_backend": resolve_backend(config.kernel_backend),
            "metrics": metrics_to_jsonable(metrics),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(canonical_json(payload))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    # ------------------------------------------------------------------
    def entry_bytes(self) -> Dict[str, bytes]:
        """Every on-disk entry as ``{key: file bytes}``.

        The byte-identity witness for whole caches: two caches hold
        identical results iff these mappings are equal (entries are
        canonical JSON, so equal payloads are equal bytes).  Used by the
        fabric tests/CI to prove a distributed study populated the cache
        exactly as a local ``--jobs N`` run would have.
        """
        out: Dict[str, bytes] = {}
        if self.root.is_dir():
            for path in sorted(self.root.glob("*/*.json")):
                out[path.stem] = path.read_bytes()
        return out

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*/*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
