"""The four experimental cases (paper Tables 2–5).

Each :class:`ExperimentCase` binds the case's **scaling variables** (how
the system grows with ``k``) and **scaling enablers** (what the tuner
may adjust) and can manufacture the ``simulate(k, settings)`` closure
the core measurement procedure consumes.  All four scale the workload
"in the same proportion as the scaling variable" (paper §3.4).

* **Case 1** (Table 2): scale the RP by network size — resources *and*
  schedulers grow with ``k``; enablers: update interval, neighborhood
  set size, link delay.
* **Case 2** (Table 3): scale the RP by resource service rate on a
  fixed network; same enablers.
* **Case 3** (Table 4): scale the RMS by the number of status
  estimators on a fixed network; same enablers.
* **Case 4** (Table 5): scale the RMS by ``L_p`` (peers probed/polled);
  enablers: update interval, **volunteering interval**, link delay.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.scaling import (
    LINK_DELAY_SCALE,
    NEIGHBORHOOD_SIZE,
    UPDATE_INTERVAL,
    VOLUNTEER_INTERVAL,
    Enabler,
    EnablerSpace,
    ScalingPath,
)
from .config import PROFILES, ScaleProfile, SimulationConfig
from .runner import RunMetrics, run_simulation

__all__ = ["ExperimentCase", "CASES", "get_case", "make_simulate", "make_batch_simulate"]

#: the calibrated update-interval grid (see EXPERIMENTS.md): spans the
#: regime from scheduler saturation (tau=6) to near-zero state
#: maintenance (tau=160); default tau=9 puts the distributed designs in
#: the paper's efficiency band at the CI base scale.
_TAU_GRID = (6.0, 7.0, 7.5, 8.0, 8.5, 9.0, 10.0, 11.0, 13.0, 16.0, 24.0, 40.0, 80.0, 160.0)
_TAU_DEFAULT_INDEX = 4

_NEIGHBORHOOD_GRID = (2.0, 3.0, 5.0, 7.0)
_DELAY_GRID = (0.6, 1.0, 1.6)
_VOLUNTEER_GRID = (40.0, 80.0, 120.0, 240.0, 480.0)


def _standard_space() -> EnablerSpace:
    """Enablers of Tables 2–4: update interval, neighborhood, delay."""
    return EnablerSpace(
        [
            Enabler(UPDATE_INTERVAL, _TAU_GRID, default_index=_TAU_DEFAULT_INDEX),
            Enabler(NEIGHBORHOOD_SIZE, _NEIGHBORHOOD_GRID, default_index=1),
            Enabler(LINK_DELAY_SCALE, _DELAY_GRID, default_index=1),
        ]
    )


def _lp_space() -> EnablerSpace:
    """Enablers of Table 5: update interval, volunteering interval, delay."""
    return EnablerSpace(
        [
            Enabler(UPDATE_INTERVAL, _TAU_GRID, default_index=_TAU_DEFAULT_INDEX),
            Enabler(VOLUNTEER_INTERVAL, _VOLUNTEER_GRID, default_index=2),
            Enabler(LINK_DELAY_SCALE, _DELAY_GRID, default_index=1),
        ]
    )


@dataclass(frozen=True)
class ExperimentCase:
    """One of the paper's four scaling experiments.

    Attributes
    ----------
    case_id:
        1–4, matching Tables 2–5.
    name / description:
        Human-readable labels for reports.
    """

    case_id: int
    name: str
    description: str

    # ------------------------------------------------------------------
    def enabler_space(self) -> EnablerSpace:
        """The case's scaling-enabler search space."""
        return _lp_space() if self.case_id == 4 else _standard_space()

    def path(self, profile: ScaleProfile) -> ScalingPath:
        """The scaling path under ``profile``."""
        return ScalingPath(profile.scales)

    def config_for(
        self,
        rms: str,
        k: float,
        profile: ScaleProfile,
        seed: int = 7,
        faults=None,
        kernel_backend: Optional[str] = None,
        monitor=None,
        fluid=None,
        trace=None,
    ) -> SimulationConfig:
        """The simulation configuration at scale ``k`` (default enablers).

        Applies the case's scaling variables; the tuner layers enabler
        settings on top via ``SimulationConfig.with_enablers``.  An
        optional :class:`~repro.faults.plan.FaultPlan` rides along
        verbatim (``None`` keeps the inert default), as do an explicit
        kernel backend name (``None`` defers to the environment), a
        :class:`~repro.telemetry.timeseries.MonitorPlan` (``None`` keeps
        monitoring off), a :class:`~repro.fluid.plan.FluidPlan`
        (``None`` keeps the discrete traffic model), and a
        :class:`~repro.telemetry.tracing.TracePlan` (``None`` keeps
        tracing off).
        """
        config = self._base_config(rms, k, profile, seed)
        if faults is not None:
            config = replace(config, faults=faults)
        if kernel_backend is not None:
            config = replace(config, kernel_backend=kernel_backend)
        if monitor is not None:
            config = replace(config, monitor=monitor)
        if fluid is not None:
            config = replace(config, fluid=fluid)
        if trace is not None:
            config = replace(config, trace=trace)
        return config

    def _base_config(
        self, rms: str, k: float, profile: ScaleProfile, seed: int
    ) -> SimulationConfig:
        if self.case_id == 1:
            n_res = int(round(profile.base_resources * k))
            n_sched = max(1, int(round(profile.base_schedulers * k)))
            return SimulationConfig(
                rms=rms,
                n_schedulers=n_sched,
                n_resources=n_res,
                workload_rate=profile.base_rate_per_resource * profile.base_resources * k,
                horizon=profile.horizon,
                drain=profile.drain,
                seed=seed,
            )
        n_res = profile.fixed_resources
        n_sched = profile.fixed_schedulers
        base_rate = profile.base_rate_per_resource * n_res
        if self.case_id == 2:
            return SimulationConfig(
                rms=rms,
                n_schedulers=n_sched,
                n_resources=n_res,
                service_rate=float(k),
                workload_rate=base_rate * k,
                horizon=profile.horizon,
                drain=profile.drain,
                seed=seed,
            )
        if self.case_id == 3:
            return SimulationConfig(
                rms=rms,
                n_schedulers=n_sched,
                n_resources=n_res,
                n_estimators=max(1, int(round(n_sched * k))),
                workload_rate=base_rate * k,
                horizon=profile.horizon,
                drain=profile.drain,
                seed=seed,
            )
        if self.case_id == 4:
            return SimulationConfig(
                rms=rms,
                n_schedulers=n_sched,
                n_resources=n_res,
                l_p=max(1, int(round(2 * k))),
                workload_rate=base_rate * k,
                horizon=profile.horizon,
                drain=profile.drain,
                seed=seed,
            )
        raise ValueError(f"unknown case id {self.case_id}")


#: the paper's four cases
CASES: Dict[int, ExperimentCase] = {
    1: ExperimentCase(
        1,
        "case1-network-size",
        "Scale the RP by number of nodes; RMS grows proportionately (Table 2 / Fig. 2)",
    ),
    2: ExperimentCase(
        2,
        "case2-service-rate",
        "Scale the RP by resource service rate; network fixed (Table 3 / Fig. 3)",
    ),
    3: ExperimentCase(
        3,
        "case3-estimators",
        "Scale the RMS by number of status estimators; network fixed (Table 4 / Figs. 4, 6, 7)",
    ),
    4: ExperimentCase(
        4,
        "case4-lp",
        "Scale the RMS by L_p, the neighbors probed per decision (Table 5 / Fig. 5)",
    ),
}


def get_case(case_id: int) -> ExperimentCase:
    """Look up a case by Table number (1–4)."""
    try:
        return CASES[case_id]
    except KeyError:
        raise KeyError(f"unknown case {case_id}; valid: {sorted(CASES)}") from None


def make_simulate(
    case: ExperimentCase,
    rms: str,
    profile: ScaleProfile,
    seed: int = 7,
    memo: Optional[Dict] = None,
    engine=None,
    kernel_backend: Optional[str] = None,
    fluid=None,
) -> Callable[[float, Mapping[str, float]], RunMetrics]:
    """Build the ``simulate(k, settings)`` closure for one (case, RMS).

    Parameters
    ----------
    memo:
        Optional external cache ``{(k, settings-items): RunMetrics}``;
        sharing it with the figure drivers lets them re-read tuned
        points' full metrics (throughput, response times) for free.
    engine:
        Optional :class:`~repro.experiments.parallel.ExperimentEngine`;
        when given, runs execute through it (and hit its persistent run
        cache) instead of calling :func:`run_simulation` directly.
    kernel_backend:
        Kernel backend for every run of the closure (``None`` defers to
        the environment).  Carried on the config so engine workers use
        it too; never part of the run-cache key.
    fluid:
        Optional :class:`~repro.fluid.plan.FluidPlan` applied to every
        run of the closure (``None`` keeps the discrete model).  An
        inert plan never perturbs cache keys; a fluid one is hashed.
    """
    cache: Dict = memo if memo is not None else {}

    def simulate(k: float, settings: Mapping[str, float]) -> RunMetrics:
        key = (k, tuple(sorted(settings.items())))
        hit = cache.get(key)
        if hit is not None:
            return hit
        config = case.config_for(
            rms, k, profile, seed=seed, kernel_backend=kernel_backend, fluid=fluid
        ).with_enablers(dict(settings))
        metrics = engine.run(config) if engine is not None else run_simulation(config)
        cache[key] = metrics
        return metrics

    return simulate


def make_batch_simulate(
    case: ExperimentCase,
    rms: str,
    profile: ScaleProfile,
    seed: int = 7,
    memo: Optional[Dict] = None,
    engine=None,
    kernel_backend: Optional[str] = None,
    fluid=None,
) -> Callable[[Sequence[Tuple[float, Mapping[str, float]]]], List[RunMetrics]]:
    """Build the batch companion of :func:`make_simulate`.

    The returned ``simulate_many(pairs)`` evaluates a list of
    ``(k, settings)`` candidates — through ``engine.run_many`` when an
    engine is attached (process-pool fan-out + run cache), serially
    otherwise — and shares ``memo`` with the scalar closure so the two
    views never recompute each other's points.
    """
    cache: Dict = memo if memo is not None else {}

    def simulate_many(
        pairs: Sequence[Tuple[float, Mapping[str, float]]]
    ) -> List[RunMetrics]:
        keys = [(k, tuple(sorted(dict(s).items()))) for k, s in pairs]
        todo_keys = []
        todo_configs = []
        seen = set()
        for (k, settings), key in zip(pairs, keys):
            if key not in cache and key not in seen:
                seen.add(key)
                todo_keys.append(key)
                todo_configs.append(
                    case.config_for(
                        rms,
                        k,
                        profile,
                        seed=seed,
                        kernel_backend=kernel_backend,
                        fluid=fluid,
                    ).with_enablers(dict(settings))
                )
        if todo_configs:
            if engine is not None:
                metrics_list = engine.run_many(todo_configs)
            else:
                metrics_list = [run_simulation(c) for c in todo_configs]
            for key, metrics in zip(todo_keys, metrics_list):
                cache[key] = metrics
        return [cache[key] for key in keys]

    return simulate_many
