"""Overhead attribution reports: ``repro attrib``.

The paper's scalability verdict is the slope of ``G(k)``; this module
answers the operator's follow-up question — *which component makes G
grow* — from the attribution decomposition every tuned point now
carries (see :meth:`repro.core.ledger.CostLedger.attribution`).

Sources
-------
Reports read either

* a **study manifest** (``.repro-cache/manifests/study.json`` by
  default) — the checkpoint file a resumable study writes, whose tuned
  points embed their attribution; or
* a **telemetry run directory** — the ``procedure.scale`` events in
  ``spans.jsonl`` carry the same decomposition.

Conservation
------------
Every report re-checks the invariant before rendering: for each point,
``math.fsum`` over the attributed parts of a prefix must equal the
recorded F/G/H **exactly** (``==``, not approximately).  ``fsum``
returns the correctly-rounded sum of its inputs regardless of order and
JSON round-trips floats losslessly, so the equality survives the cache,
the manifest, and the telemetry file; a mismatch means the decomposition
can no longer be trusted and the report says so loudly.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ledger import SOURCE_SEP
from ..core.slope import slopes
from ..telemetry.report import load_run, resolve_run_dir
from .tabulate import format_table

__all__ = [
    "AttribPoint",
    "attrib_report",
    "check_conservation",
    "component_of",
    "load_points",
    "points_from_manifest",
    "points_from_telemetry",
    "rollup_components",
]


@dataclass
class AttribPoint:
    """One per-scale measurement with its attribution decomposition."""

    label: str                 # grouping label, e.g. "case1:LOWEST"
    rms: str
    scale: float
    F: float
    G: float
    H: float
    #: flattened ``category|component|entity|message class`` -> amount
    attribution: Dict[str, float] = field(default_factory=dict)


def component_of(key: str) -> str:
    """The component kind of a flattened attribution key.

    ``g.schedule|scheduler|sched0|job_submit`` → ``scheduler``; bare
    category keys (untagged charges) → ``untagged``.
    """
    parts = key.split(SOURCE_SEP)
    return parts[1] if len(parts) > 1 else "untagged"


def check_conservation(point: AttribPoint) -> List[str]:
    """Exact-equality conservation check of one point.

    Returns human-readable violation descriptions (empty = conserved).
    """
    sums: Dict[str, List[float]] = {"f.": [], "g.": [], "h.": []}
    for key, value in point.attribution.items():
        prefix = key[:2]
        if prefix in sums:
            sums[prefix].append(value)
    violations = []
    for prefix, total in (("f.", point.F), ("g.", point.G), ("h.", point.H)):
        attributed = math.fsum(sums[prefix])
        if attributed != total:
            violations.append(
                f"{point.label} k={point.scale:g}: {prefix}* attributed "
                f"{attributed!r} != recorded {total!r}"
            )
    return violations


def rollup_components(
    attribution: Dict[str, float], prefix: str = "g."
) -> Dict[str, float]:
    """Per-component totals of one prefix (``fsum`` per component)."""
    groups: Dict[str, List[float]] = {}
    for key, value in attribution.items():
        if key[:2] == prefix:
            groups.setdefault(component_of(key), []).append(value)
    return {comp: math.fsum(vals) for comp, vals in sorted(groups.items())}


# ---------------------------------------------------------------------------
# Loaders
# ---------------------------------------------------------------------------

def _parse_manifest_key(key: str) -> Tuple[str, str]:
    """(case label, rms) from a study point key.

    Keys look like ``ci:seed7:sa12:scales[...]:warm1:spec4:case1:LOWEST``
    (see ``Study._point_key``); unknown shapes degrade to the whole key
    as the case label and its last segment as the RMS.
    """
    segments = key.split(":")
    rms = segments[-1] if segments else key
    case = next((s for s in segments if s.startswith("case")), key)
    return case, rms


def points_from_manifest(path: "str | Path") -> List[AttribPoint]:
    """Attribution points of every completed study point in a manifest."""
    payload = json.loads(Path(path).read_text("utf-8"))
    completed = payload.get("completed")
    if not isinstance(completed, dict):
        raise ValueError(f"{path} is not a study manifest (no 'completed' map)")
    points: List[AttribPoint] = []
    for key, entry in completed.items():
        case, rms = _parse_manifest_key(key)
        result = (entry or {}).get("result") or {}
        for p in result.get("points", []):
            record = p.get("record", {})
            points.append(
                AttribPoint(
                    label=f"{case}:{rms}",
                    rms=rms,
                    scale=float(p.get("scale", math.nan)),
                    F=record.get("F", math.nan),
                    G=record.get("G", math.nan),
                    H=record.get("H", math.nan),
                    attribution=p.get("attribution") or {},
                )
            )
    return points


def points_from_telemetry(run_dir: "str | Path") -> List[AttribPoint]:
    """Attribution points from a telemetry run's ``procedure.scale`` events."""
    run = load_run(resolve_run_dir(run_dir))
    points: List[AttribPoint] = []
    for event in run.events_named("procedure.scale"):
        attrs = event.get("attrs") or {}
        rms = str(run.ancestor_attr(event, "rms") or attrs.get("name", "?"))
        case = run.ancestor_attr(event, "case")
        label = f"case{case}:{rms}" if case is not None else rms
        points.append(
            AttribPoint(
                label=label,
                rms=rms,
                scale=float(attrs.get("scale", math.nan)),
                F=attrs.get("F", math.nan),
                G=attrs.get("G", math.nan),
                H=attrs.get("H", math.nan),
                attribution=attrs.get("attribution") or {},
            )
        )
    return points


def load_points(source: "str | Path") -> List[AttribPoint]:
    """Load attribution points from a manifest file or telemetry dir."""
    path = Path(source)
    if path.is_file():
        return points_from_manifest(path)
    if path.is_dir():
        return points_from_telemetry(path)
    raise FileNotFoundError(f"attribution source {path} does not exist")


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------

def _group(points: Sequence[AttribPoint]) -> Dict[str, List[AttribPoint]]:
    groups: Dict[str, List[AttribPoint]] = {}
    for p in points:
        groups.setdefault(p.label, []).append(p)
    for series in groups.values():
        series.sort(key=lambda p: p.scale)
    return groups


def _component_slopes(series: List[AttribPoint]) -> Dict[str, float]:
    """Mean finite-difference slope of each component's G share.

    Absolute units (time units of overhead per unit of scale factor):
    the component whose slope dominates is the one making G(k) grow.
    """
    if len(series) < 2:
        return {}
    scales = [p.scale for p in series]
    components = sorted(
        {c for p in series for c in rollup_components(p.attribution)}
    )
    out: Dict[str, float] = {}
    for comp in components:
        values = [rollup_components(p.attribution).get(comp, 0.0) for p in series]
        try:
            segs = slopes(scales, values)
        except ValueError:
            continue
        out[comp] = sum(segs) / len(segs)
    return out


def attrib_report(
    points: Sequence[AttribPoint],
    top: int = 10,
    rms: Optional[str] = None,
) -> str:
    """Render the full attribution report.

    Per series (case × RMS): the per-scale F/G/H table with G broken
    down by component, the steepest per-component G(k) slopes, and the
    top-``top`` finest-grained contributors at the largest scale.
    Conservation is re-verified for every point first.
    """
    if rms is not None:
        points = [p for p in points if p.rms == rms]
    points = [p for p in points if p.attribution]
    if not points:
        return "(no attribution data found — re-run the study to record it)"

    parts: List[str] = []
    violations: List[str] = []
    for p in points:
        violations.extend(check_conservation(p))
    if violations:
        parts.append("CONSERVATION VIOLATED — decomposition is NOT trustworthy:")
        parts.extend(f"  {v}" for v in violations)
    else:
        parts.append(
            f"conservation: exact for all {len(points)} points "
            "(fsum of parts == F/G/H bit-for-bit)"
        )

    for label, series in sorted(_group(points).items()):
        parts.append(f"\n{label} — G(k) by component:")
        components = sorted(
            {c for p in series for c in rollup_components(p.attribution)}
        )
        rows = []
        for p in series:
            comp_totals = rollup_components(p.attribution)
            rows.append(
                [p.scale, p.F, p.G, p.H]
                + [comp_totals.get(c, 0.0) for c in components]
            )
        parts.append(
            format_table(["k", "F", "G", "H"] + [f"G:{c}" for c in components], rows,
                         precision=1)
        )

        comp_slopes = _component_slopes(series)
        if comp_slopes:
            ranked = sorted(comp_slopes.items(), key=lambda kv: -kv[1])
            slope_text = ", ".join(f"{c}={s:+.2f}" for c, s in ranked)
            parts.append(f"  slope of G(k) by component (time units / k): {slope_text}")

        last = series[-1]
        contributors = sorted(
            ((k, v) for k, v in last.attribution.items() if k[:2] != "f."),
            key=lambda kv: -kv[1],
        )[:top]
        if contributors:
            total_overhead = last.G + last.H
            parts.append(f"  top {len(contributors)} overhead contributors at k={last.scale:g}:")
            for key, value in contributors:
                share = value / total_overhead if total_overhead > 0 else math.nan
                parts.append(f"    {key}: {value:.1f} ({share:.1%} of G+H)")
    return "\n".join(parts)
