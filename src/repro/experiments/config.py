"""Experiment configuration: Table-1 constants, scale profiles, and the
full description of one simulation run.

Two **scale profiles** are provided:

* ``ci`` (default) — shrunk grids and horizons so that a full
  figure regeneration (7 RMSs x scales x annealing probes) completes in
  minutes on a laptop.  Cluster size, workload intensity per resource,
  and all cost constants match the ``full`` profile, so the *shape* of
  every result carries over; only absolute magnitudes differ.
* ``full`` — the paper's 1000-node networks (Cases 2-4) and its six
  scale factors.  Hours of compute; used for the archival numbers in
  EXPERIMENTS.md.

Calibration (see EXPERIMENTS.md): the base workload rate is chosen so
that, at the default enabler settings, the managed system's efficiency
``E = F/(F+G+H)`` lands inside the paper's Step-1 band [0.38, 0.42] —
the regime the paper studies, in which state estimation and scheduling
consume work comparable to the delivered computation.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..faults.plan import FaultPlan, plan_from_jsonable, plan_to_jsonable
from ..fluid.plan import FluidPlan, fluid_plan_from_jsonable, fluid_plan_to_jsonable
from ..grid.costs import CostModel
from ..telemetry.timeseries import (
    MonitorPlan,
    monitor_plan_from_jsonable,
    monitor_plan_to_jsonable,
)
from ..telemetry.tracing import (
    TracePlan,
    trace_plan_from_jsonable,
    trace_plan_to_jsonable,
)

__all__ = [
    "CommonParameters",
    "ScaleProfile",
    "SimulationConfig",
    "PROFILES",
    "config_from_jsonable",
    "config_to_jsonable",
]


@dataclass(frozen=True)
class CommonParameters:
    """Table 1: common variables used for all experiments.

    Attributes
    ----------
    t_cpu:
        LOCAL/REMOTE classification threshold: "Jobs with execution
        time <= T_CPU are LOCAL jobs" (700 time units).
    t_l:
        Threshold load at a scheduler (0.5).
    benefit_lo, benefit_hi:
        The user benefit function's factor range: ``U_b = u * runtime``
        with ``u ~ U[2, 5]``.
    efficiency_band:
        Step-1 band for ``E(k0)``: [0.38, 0.42].
    """

    t_cpu: float = 700.0
    t_l: float = 0.5
    benefit_lo: float = 2.0
    benefit_hi: float = 5.0
    efficiency_band: Tuple[float, float] = (0.38, 0.42)


@dataclass(frozen=True)
class ScaleProfile:
    """Base-scale system sizes for one compute budget.

    Attributes
    ----------
    name:
        Profile identifier (``ci`` or ``full``).
    base_resources:
        Resource-pool size of the Case-1 base configuration.
    base_schedulers:
        Scheduler count of the Case-1 base configuration.
    fixed_resources / fixed_schedulers:
        Pool shape for the fixed-network cases (2-4); the paper uses a
        1000-node network there.
    base_rate_per_resource:
        Base workload intensity (jobs per time unit per resource) —
        the calibrated value that puts base efficiency in the band.
    horizon:
        Measured simulation horizon (time units).
    drain:
        Extra time allowed for submitted jobs to finish after the
        arrival window closes.
    scales:
        The scaling path (paper: 1..6).
    sa_iterations:
        Annealing budget per (RMS, scale) tuning problem.
    """

    name: str
    base_resources: int
    base_schedulers: int
    fixed_resources: int
    fixed_schedulers: int
    base_rate_per_resource: float
    horizon: float
    drain: float
    scales: Tuple[float, ...]
    sa_iterations: int


#: the two standard profiles
PROFILES: Dict[str, ScaleProfile] = {
    "ci": ScaleProfile(
        name="ci",
        base_resources=24,
        base_schedulers=8,
        fixed_resources=48,
        fixed_schedulers=16,
        base_rate_per_resource=0.00028,
        horizon=12000.0,
        drain=6000.0,
        scales=(1, 2, 3),
        sa_iterations=10,
    ),
    "full": ScaleProfile(
        name="full",
        base_resources=160,
        base_schedulers=32,
        fixed_resources=960,
        fixed_schedulers=40,
        base_rate_per_resource=0.00028,
        horizon=20000.0,
        drain=10000.0,
        scales=(1, 2, 3, 4, 5, 6),
        sa_iterations=30,
    ),
    # Extreme-scale profile for the fluid traffic mode: Case 1 reaches
    # 1e5 resources at scale 4 (and 1e6 would be scale 40 of the same
    # base).  Discrete mode is intractable here — the periodic status /
    # keepalive storms alone would be tens of millions of events — so
    # this profile is intended to run with ``--traffic-mode fluid``.
    # The horizon is short (the point is G(k) measurability, not
    # steady-state averaging) and the annealing budget minimal.
    "extreme": ScaleProfile(
        name="extreme",
        base_resources=25_000,
        base_schedulers=32,
        fixed_resources=100_000,
        fixed_schedulers=128,
        # Light per-resource demand, calibrated against the status-scan
        # decision cost: clusters hold ~780 resources, so one decision
        # costs ``decision_base + scan_per_entry * 780 ~ 470`` time
        # units, and the per-scheduler arrival rate (rate x 780) must
        # keep utilization ``rate x 780 x 470 ~ 0.37`` under one.  The
        # extreme cases measure status-plane scaling, not queueing
        # collapse — the job plane just has to stay healthy enough that
        # F and the success rate are nonzero.
        base_rate_per_resource=0.000001,
        horizon=3000.0,
        drain=1500.0,
        scales=(1, 2, 4),
        sa_iterations=4,
    ),
}


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to build and run one simulation.

    The experiment cases construct these from their scaling variables;
    the enabler settings are injected by the tuner per probe.

    Attributes
    ----------
    rms:
        RMS design name (one of the seven).
    n_schedulers / n_resources / n_estimators:
        System shape.  ``n_estimators=None`` means one per scheduler
        (co-located base configuration).
    workload_rate:
        System-wide job arrival rate (jobs per time unit).
    service_rate:
        Per-resource service rate (Case 2's scaling variable).
    l_p:
        Peers contacted per scheduling action (Case 4's variable).
    update_interval:
        Status-update period tau (enabler).
    neighborhood_size:
        Size of each scheduler's candidate peer set (enabler).
    link_delay_scale:
        Multiplier on message transit delays (enabler).
    volunteer_interval:
        Period of volunteering/advert loops (enabler; push designs).
    horizon / drain:
        Arrival window and post-window drain allowance.
    seed:
        Root seed; every stream (topology, workload, protocol jitter)
        derives from it, so runs are exactly reproducible.
    common:
        Table-1 constants.
    costs:
        Processing-cost model.
    faults:
        The run's :class:`~repro.faults.plan.FaultPlan` (inert by
        default).  Hashed into the run-cache key like every other
        field.
    loss_probability:
        Deprecated: use ``faults.link_loss``.  A nonzero value emits a
        ``DeprecationWarning`` and is canonicalized onto the fault plan
        (the field itself is reset to 0), so equivalent configs hash to
        the same cache key regardless of which spelling was used.
    kernel_backend:
        Which kernel backend executes the run (``None`` defers to
        ``$REPRO_KERNEL_BACKEND``, then ``reference`` — see
        :mod:`repro.sim.backend`).  Backends are bit-identical by
        contract, so this field is **provenance, not semantics**: it is
        deliberately excluded from the run-cache key (a cached result
        is valid for every backend) and recorded as metadata in cache
        entries, manifests, and bench reports instead.
    monitor:
        The run's :class:`~repro.telemetry.timeseries.MonitorPlan`
        (disabled by default).  **Passive** plans (zero probe charge
        rate) observe without perturbing F/G/H and are excluded from
        the run-cache key like ``kernel_backend``; an **active** plan
        charges ``g.monitor`` and is hashed like any semantic field.
    trace:
        The run's :class:`~repro.telemetry.tracing.TracePlan`
        (disabled by default).  Same conditional-provenance discipline
        as ``monitor``: a plan with a zero charge rate observes
        without perturbing F/G/H and is excluded from the run-cache
        key; a plan that charges ``g.trace`` is hashed like any
        semantic field.
    """

    rms: str
    n_schedulers: int
    n_resources: int
    workload_rate: float
    service_rate: float = 1.0
    n_estimators: Optional[int] = None
    l_p: int = 2
    update_interval: float = 40.0
    neighborhood_size: int = 4
    link_delay_scale: float = 1.0
    volunteer_interval: float = 120.0
    horizon: float = 3000.0
    drain: float = 4000.0
    seed: int = 7
    common: CommonParameters = field(default_factory=CommonParameters)
    costs: CostModel = field(default_factory=CostModel)
    faults: FaultPlan = field(default_factory=FaultPlan)
    loss_probability: float = 0.0
    #: estimator aggregation period; ``None`` derives it as half the
    #: update interval, ``0`` disables batching (ablation).
    estimator_batch_window: Optional[float] = None
    #: probability a job depends on earlier jobs (paper future-work
    #: extension; 0 = the paper's independent-jobs evaluation)
    dependency_prob: float = 0.0
    #: maximum parents per dependent job
    max_parents: int = 2
    #: parents are drawn among this many most recent jobs
    dependency_window: int = 10
    #: kernel backend name (provenance; excluded from cache keys)
    kernel_backend: Optional[str] = None
    #: time-resolved monitoring plan (passive plans excluded from cache keys)
    monitor: MonitorPlan = field(default_factory=MonitorPlan)
    #: traffic mode plan (inert ``discrete`` plans excluded from cache
    #: keys so pre-fluid cache entries stay valid — see
    #: :mod:`repro.experiments.parallel.hashing`)
    fluid: FluidPlan = field(default_factory=FluidPlan)
    #: causal-tracing plan (passive plans excluded from cache keys)
    trace: TracePlan = field(default_factory=TracePlan)

    @property
    def effective_batch_window(self) -> float:
        """The estimator batch window actually applied."""
        if self.estimator_batch_window is None:
            return 0.5 * self.update_interval
        return self.estimator_batch_window

    def __post_init__(self) -> None:
        if self.n_schedulers < 1 or self.n_resources < self.n_schedulers:
            raise ValueError("need >= 1 scheduler and >= 1 resource per scheduler")
        if self.workload_rate <= 0 or self.service_rate <= 0:
            raise ValueError("rates must be positive")
        if self.l_p < 0:
            raise ValueError("l_p must be nonnegative")
        if self.update_interval <= 0 or self.volunteer_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.neighborhood_size < 1:
            raise ValueError("neighborhood_size must be >= 1")
        if self.horizon <= 0 or self.drain < 0:
            raise ValueError("horizon must be positive, drain nonnegative")
        if not (0.0 <= self.dependency_prob <= 1.0):
            raise ValueError("dependency_prob must be in [0, 1]")
        if self.loss_probability:
            warnings.warn(
                "SimulationConfig.loss_probability is deprecated; "
                "use faults=FaultPlan(link_loss=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if self.faults.link_loss:
                raise ValueError(
                    "loss_probability (deprecated) and faults.link_loss "
                    "both set; use only faults.link_loss"
                )
            if not (0.0 <= self.loss_probability < 1.0):
                raise ValueError("loss_probability must be in [0, 1)")
            # Canonicalize onto the plan: equivalent configs become
            # *literally* equal, so they hash to the same cache key.
            object.__setattr__(
                self,
                "faults",
                replace(self.faults, link_loss=self.loss_probability),
            )
            object.__setattr__(self, "loss_probability", 0.0)

    @property
    def heartbeat_timeout(self) -> float:
        """Dead-declaration silence span (plan override or derived)."""
        return self.faults.effective_heartbeat_timeout(self.update_interval)

    @property
    def heartbeat_interval(self) -> float:
        """Estimator liveness-sweep period (plan override or derived)."""
        return self.faults.effective_heartbeat_interval(self.update_interval)

    def with_enablers(self, settings: Dict[str, float]) -> "SimulationConfig":
        """A copy with enabler settings applied (unknown keys rejected)."""
        mapping = {
            "update_interval": "update_interval",
            "neighborhood_size": "neighborhood_size",
            "link_delay_scale": "link_delay_scale",
            "volunteer_interval": "volunteer_interval",
        }
        kwargs = {}
        for name, value in settings.items():
            if name not in mapping:
                raise KeyError(f"unknown enabler {name!r}")
            attr = mapping[name]
            kwargs[attr] = int(value) if attr == "neighborhood_size" else value
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# Wire (de)serialization — the fabric protocol's config transport
# ---------------------------------------------------------------------------

#: nested dataclass fields with dedicated (de)serializers
_NESTED_SERIALIZERS = {
    "common": (dataclasses.asdict, None),
    "costs": (dataclasses.asdict, None),
    "faults": (plan_to_jsonable, plan_from_jsonable),
    "monitor": (monitor_plan_to_jsonable, monitor_plan_from_jsonable),
    "fluid": (fluid_plan_to_jsonable, fluid_plan_from_jsonable),
    "trace": (trace_plan_to_jsonable, trace_plan_from_jsonable),
}


def config_to_jsonable(config: SimulationConfig) -> Dict[str, Any]:
    """Flatten a :class:`SimulationConfig` into plain JSON types.

    Every field rides along verbatim (plans through their existing plan
    serializers), so :func:`config_from_jsonable` reconstructs an
    **equal** config — same dataclass equality, same run-cache key.
    That exactness is what lets fabric workers receive configs over the
    wire and return results byte-identical to an in-process run.
    """
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(SimulationConfig):
        value = getattr(config, f.name)
        encode = _NESTED_SERIALIZERS.get(f.name, (None, None))[0]
        out[f.name] = value if encode is None else encode(value)
    return out


def config_from_jsonable(payload: Dict[str, Any]) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`config_to_jsonable`
    output (unknown keys rejected)."""
    if not isinstance(payload, dict):
        raise TypeError("a simulation config must be a JSON object")
    known = {f.name for f in dataclasses.fields(SimulationConfig)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    for name, value in payload.items():
        if name in _NESTED_SERIALIZERS:
            decode = _NESTED_SERIALIZERS[name][1]
            if decode is not None:
                kwargs[name] = decode(value)
            elif name == "common":
                value = dict(value)
                if "efficiency_band" in value:
                    value["efficiency_band"] = tuple(value["efficiency_band"])
                kwargs[name] = CommonParameters(**value)
            else:
                kwargs[name] = CostModel(**value)
        else:
            kwargs[name] = value
    return SimulationConfig(**kwargs)
