"""Cross-case study summary: the paper's concluding analysis as code.

The paper's conclusion reads three things off its framework: "(a)
[whether] a candidate scaling variable is indeed a feasible scaling
variable, (b) the relative scalability of the different schemes along a
given scaling strategy and (c) ... the scaling path ... over which the
system functions profitably."  :func:`summarize_study` computes exactly
those from measured :class:`~repro.experiments.reproduce.RMSSeries`:

* per (case, RMS): mean normalized-overhead slope, the largest scale
  with an unbroken feasible prefix, and the Eq.-(2) verdict;
* per case: the scalability ranking (lower mean slope wins among
  designs that stay feasible longest);
* per scaling variable: whether *any* design scales along it (a
  feasibility check of the variable itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from .reporting import format_table
from .reproduce import RMSSeries

__all__ = ["CaseSummary", "summarize_case", "study_report"]


@dataclass(frozen=True)
class CaseSummary:
    """The conclusion-grade read-out of one case's measurement."""

    case_label: str
    #: RMS -> (mean g-slope, feasible-through scale, all Eq.2 ok)
    rows: Dict[str, tuple]
    #: designs ordered best-first (feasible-through desc, slope asc)
    ranking: List[str]
    #: paper conclusion (a): is the scaling variable feasible at all?
    variable_feasible: bool


def summarize_case(case_label: str, series: Mapping[str, RMSSeries]) -> CaseSummary:
    """Summarize one case's per-RMS measurements."""
    rows: Dict[str, tuple] = {}
    for name, s in series.items():
        rows[name] = (
            s.result.slopes.mean_g_slope,
            s.result.feasible_through,
            all(s.result.eq2_ok),
        )
    ranking = sorted(rows, key=lambda n: (-rows[n][1], rows[n][0]))
    top_scale = max((s.scales[-1] for s in series.values()), default=0.0)
    variable_feasible = any(ft >= top_scale for _, ft, _ in rows.values())
    return CaseSummary(
        case_label=case_label,
        rows=rows,
        ranking=ranking,
        variable_feasible=variable_feasible,
    )


def study_report(summaries: List[CaseSummary]) -> str:
    """Render the cross-case conclusion tables as text."""
    blocks = []
    for cs in summaries:
        table_rows = [
            [name, slope, ft, eq2]
            for name, (slope, ft, eq2) in sorted(
                cs.rows.items(), key=lambda kv: cs.ranking.index(kv[0])
            )
        ]
        table = format_table(
            ["RMS", "mean g-slope", "feasible thru k", "Eq.(2) holds"],
            table_rows,
            precision=2,
        )
        verdict = (
            "feasible scaling variable"
            if cs.variable_feasible
            else "NO design scales along this variable to the top of the path"
        )
        blocks.append(
            f"{cs.case_label} — {verdict}\n{table}\n"
            f"ranking (best first): {' > '.join(cs.ranking)}\n"
        )
    return "\n".join(blocks)
