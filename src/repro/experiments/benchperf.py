"""The tracked performance benchmark: ``repro bench-perf``.

Measures the three layers this codebase optimizes and writes them to
``BENCH_perf.json`` so the perf trajectory is recorded alongside the
code:

* **kernel** — raw event throughput (events/sec) of every registered
  kernel backend, two cases each: a self-scheduling *storm* (steady
  small heap: pure ``schedule``/``pop``/dispatch cost plus a lazy-cancel
  stream) and *fel*, the future-event-list scaling case (preload a
  large batch of events in arrival order — the workload-injection
  pattern — then drain), with per-case ``fast`` vs ``reference``
  speedups.
* **sims** — end-to-end simulation throughput (sims/sec) on a
  representative configuration, through the same
  :func:`~repro.experiments.runner.run_simulation` every experiment
  uses.
* **study** — wall clock and per-scale tuner evaluation counts for a
  full isoefficiency measurement (one experiment case across the
  requested RMS designs), in three arms: the *baseline* serial tuner
  (cold-start walk, no speculation — the historical configuration), and
  the warm-started speculative tuner at ``jobs=1`` and ``jobs=N``.
  The arms run cache-free so the wall clocks are honest; the tuned
  points of the two speculative arms are compared and the report
  records whether they were identical (they must be — worker count may
  never change results).

The JSON is a *measurement record*, not a golden file: timings vary
with the machine, while every recorded tuned point and evaluation count
is deterministic for a fixed seed and flag set.
"""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.annealing import AnnealingSchedule
from ..core.procedure import ScalabilityProcedure
from ..rms.registry import rms_names
from .cases import get_case, make_batch_simulate, make_simulate
from .config import PROFILES, ScaleProfile, SimulationConfig
from .parallel import ExperimentEngine
from .reproduce import DEFAULT_SPECULATION_WIDTH
from .runner import run_simulation

__all__ = [
    "bench_fluid",
    "bench_kernel",
    "bench_kernel_fel",
    "bench_kernel_section",
    "bench_sims",
    "bench_study_arm",
    "run_bench",
    "render_report",
    "write_bench",
]

#: path the benchmark writes unless told otherwise
DEFAULT_OUTPUT = "BENCH_perf.json"


# ---------------------------------------------------------------------------
# Layer 1: kernel dispatch throughput
# ---------------------------------------------------------------------------

def bench_kernel(events: int = 200_000, fanout: int = 4, backend: str = "reference") -> Dict:
    """Dispatch throughput of the bare DES kernel (events/sec).

    Runs a self-scheduling storm of ``fanout`` interleaved periodic
    chains plus a cancellation stream (so the event store sees pushes,
    pops, and lazy-cancel discards — the mix the real protocols
    produce), and reports how many events per wall-clock second the
    selected ``backend`` retires.
    """
    from ..sim.backend import create_kernel

    sim = create_kernel(backend)
    state = {"left": events, "victim": None}

    def tick(lane: int) -> None:
        if state["left"] <= 0:
            return
        state["left"] -= 1
        # One cancellation per dispatched event on lane 0: schedule a
        # decoy and kill the previous one, exercising the lazy-cancel
        # path the protocols (timeouts, suppressed updates) lean on.
        if lane == 0:
            if state["victim"] is not None:
                sim.cancel(state["victim"])
            state["victim"] = sim.schedule(5.0, _noop)
        sim.schedule(1.0 + 0.1 * lane, tick, lane)

    def _noop() -> None:  # pragma: no cover - decoys never fire in-budget
        pass

    for lane in range(fanout):
        sim.schedule(0.1 * lane, tick, lane)
    t0 = time.perf_counter()
    sim.run(max_events=events)
    seconds = time.perf_counter() - t0
    return {
        "events": sim.events_executed,
        "seconds": round(seconds, 6),
        "events_per_sec": round(sim.events_executed / seconds) if seconds > 0 else None,
    }


def bench_kernel_fel(events: int = 1_000_000, backend: str = "reference") -> Dict:
    """The future-event-list scaling case (events/sec, schedule + drain).

    Preloads ``events`` pending events in nondecreasing time order —
    exactly how the runner pre-schedules a workload's job arrivals —
    then drains the whole list.  This is the regime the ROADMAP's
    million-pending-event ambitions live in, and the case the ``fast``
    backend's sorted-spine store is built for (the reference heap pays
    an O(log n) sift per event here).
    """
    from ..sim.backend import create_kernel

    sim = create_kernel(backend)

    def _noop() -> None:
        pass

    t0 = time.perf_counter()
    for i in range(events):
        sim.schedule(i * 1e-3, _noop)
    sim.run()
    seconds = time.perf_counter() - t0
    return {
        "events": events,
        "seconds": round(seconds, 6),
        "events_per_sec": round(events / seconds) if seconds > 0 else None,
    }


def bench_kernel_section(events: int = 200_000, fel_events: int = 1_000_000) -> Dict:
    """The per-backend kernel section of the bench record (schema 2).

    Every registered backend runs the same two cases; the section also
    records the ``fast``/``reference`` speedup per case — the tracked
    witness of the fast backend's win on the at-scale case.
    """
    from ..sim.backend import backend_names

    backends = {
        name: {
            "storm": bench_kernel(events=events, backend=name),
            "fel": bench_kernel_fel(events=fel_events, backend=name),
        }
        for name in backend_names()
    }
    speedups = {}
    ref = backends.get("reference")
    fast = backends.get("fast")
    if ref and fast:
        for case in ("storm", "fel"):
            base, cur = ref[case]["events_per_sec"], fast[case]["events_per_sec"]
            speedups[case] = round(cur / base, 3) if base and cur else None
    return {"backends": backends, "speedup_fast_vs_reference": speedups}


# ---------------------------------------------------------------------------
# Layer 2: end-to-end simulation throughput
# ---------------------------------------------------------------------------

def bench_sims(profile: ScaleProfile, rms: str = "LOWEST", runs: int = 3, seed: int = 7) -> Dict:
    """End-to-end simulation throughput (sims/sec) on one base config."""
    configs = [
        SimulationConfig(
            rms=rms,
            n_schedulers=profile.base_schedulers,
            n_resources=profile.base_resources,
            workload_rate=profile.base_rate_per_resource * profile.base_resources,
            horizon=profile.horizon,
            drain=profile.drain,
            seed=seed + i,
        )
        for i in range(runs)
    ]
    t0 = time.perf_counter()
    for config in configs:
        run_simulation(config)
    seconds = time.perf_counter() - t0
    return {
        "rms": rms,
        "runs": runs,
        "seconds": round(seconds, 6),
        "sims_per_sec": round(runs / seconds, 4) if seconds > 0 else None,
    }


# ---------------------------------------------------------------------------
# Layer 2b: fluid traffic mode — event-count reduction at extreme scale
# ---------------------------------------------------------------------------

def _run_counting_events(config: SimulationConfig):
    """Run one simulation and return ``(metrics, kernel_events, seconds, system)``.

    Mirrors :func:`~repro.experiments.runner.run_simulation`'s loop but
    keeps the kernel in hand so the bench can read its dispatch counter
    (``RunMetrics`` deliberately does not carry it — event counts are a
    property of the executor, not of the measured system).
    """
    from ..grid.jobs import JobState
    from .runner import build_system, summarize

    t0 = time.perf_counter()
    system = build_system(config)
    sim = system.sim
    sim.run(until=config.horizon)
    deadline = config.horizon + config.drain
    step = max(200.0, config.horizon / 10.0)
    while sim.now < deadline and any(
        j.state != JobState.COMPLETED for j in system.jobs
    ):
        sim.run(until=min(deadline, sim.now + step))
    metrics = summarize(system)
    seconds = time.perf_counter() - t0
    return metrics, sim.events_executed, seconds, system


def bench_fluid(
    rms: str = "LOWEST",
    seed: int = 7,
    overlap_resources: int = 500,
    overlap_schedulers: int = 4,
    overlap_estimators: Optional[int] = None,
    extreme_profile: "str | ScaleProfile" = "extreme",
    extreme_scale: float = 4.0,
) -> Dict:
    """The fluid-traffic section: cross-validation plus extreme scale.

    Two measurements:

    * **overlap** — the largest scale where discrete mode is still
      tractable *and unsaturated*, run in *both* modes on the identical
      config.  Records the kernel-event counts, wall clocks, and the
      F/G/H agreement (F must be bit-identical; G/H within the
      documented tolerance), so the cross-validation contract is part
      of the tracked record.  The estimator plane is sized Case-3
      style (~8 resources per estimator by default) so discrete
      estimators keep up with the update flow — a saturated discrete
      estimator silently sheds work its fluid counterpart charges for,
      which would poison the G comparison.
    * **extreme** — the extreme-profile Case-1 point (1e5 resources at
      the default scale), fluid mode only; discrete mode there is
      projected from the overlap run's per-resource event density
      (status/keepalive traffic is O(k), so the extrapolation is
      linear in ``resources x horizon``).  The recorded
      ``event_reduction_vs_discrete`` is the headline number: modeled
      message flows per kernel event actually dispatched.
    """
    from ..fluid.plan import FluidPlan
    from .cases import get_case

    prof = (
        extreme_profile
        if isinstance(extreme_profile, ScaleProfile)
        else PROFILES[extreme_profile]
    )
    if overlap_estimators is None:
        overlap_estimators = -(-overlap_resources // 8)
    overlap_cfg = SimulationConfig(
        rms=rms,
        n_schedulers=overlap_schedulers,
        n_resources=overlap_resources,
        n_estimators=overlap_estimators,
        workload_rate=prof.base_rate_per_resource * overlap_resources,
        horizon=prof.horizon,
        drain=prof.drain,
        seed=seed,
    )
    d_metrics, d_events, d_seconds, _ = _run_counting_events(overlap_cfg)
    f_metrics, f_events, f_seconds, f_system = _run_counting_events(
        replace(overlap_cfg, fluid=FluidPlan(mode="fluid"))
    )

    def _delta_pct(base: float, cur: float) -> Optional[float]:
        # None = incomparable (zero base); infinities are not valid JSON
        if base == 0.0:
            return None
        return round(100.0 * (cur - base) / base, 3)

    overlap = {
        "rms": rms,
        "n_resources": overlap_resources,
        "n_schedulers": overlap_schedulers,
        "n_estimators": overlap_estimators,
        "horizon": prof.horizon,
        "discrete": {
            "kernel_events": d_events,
            "seconds": round(d_seconds, 3),
        },
        "fluid": {
            "kernel_events": f_events,
            "seconds": round(f_seconds, 3),
            "stats": f_system.fluid.stats(),
        },
        "event_reduction": (
            round(d_events / f_events, 1) if f_events else None
        ),
        "speedup": round(d_seconds / f_seconds, 2) if f_seconds > 0 else None,
        "F_identical": d_metrics.record.F == f_metrics.record.F,
        "G_delta_pct": _delta_pct(d_metrics.record.G, f_metrics.record.G),
        "H_delta_pct": _delta_pct(d_metrics.record.H, f_metrics.record.H),
    }

    case = get_case(1)
    extreme_cfg = case.config_for(
        rms, extreme_scale, prof, seed=seed, fluid=FluidPlan(mode="fluid")
    )
    e_metrics, e_events, e_seconds, e_system = _run_counting_events(extreme_cfg)
    stats = e_system.fluid.stats()
    # Discrete kernel events scale ~linearly in resources x horizon at a
    # fixed per-resource rate (the status/keepalive storms dominate), so
    # the overlap run's event density projects the intractable run.
    density = d_events / (overlap_resources * prof.horizon)
    projected = density * extreme_cfg.n_resources * prof.horizon
    extreme = {
        "profile": prof.name,
        "scale": extreme_scale,
        "n_resources": extreme_cfg.n_resources,
        "n_schedulers": extreme_cfg.n_schedulers,
        "fluid": {
            "kernel_events": e_events,
            "seconds": round(e_seconds, 3),
            "sims_per_sec": round(1.0 / e_seconds, 5) if e_seconds > 0 else None,
            "stats": stats,
        },
        "success_rate": round(e_metrics.success_rate, 4),
        "G": round(e_metrics.record.G, 1),
        "discrete_events_projected": round(projected),
        "event_reduction_vs_discrete": (
            round(projected / e_events, 1) if e_events else None
        ),
    }
    return {"overlap": overlap, "extreme": extreme}


# ---------------------------------------------------------------------------
# Layer 3: the isoefficiency study, per arm
# ---------------------------------------------------------------------------

def bench_study_arm(
    profile: ScaleProfile,
    rms_list: Sequence[str],
    case_id: int,
    seed: int,
    sa_iterations: int,
    jobs: int,
    warm_start: bool,
    speculation: int,
) -> Dict:
    """One full study measurement under one (jobs, flags) combination.

    Every arm runs cache-free (fresh engine, no :class:`RunCache`), so
    its wall clock reflects real simulation work, and records the tuned
    settings per scale — the cross-arm identity check the determinism
    contract demands.
    """
    case = get_case(case_id)
    evaluations_by_scale: Dict[float, int] = {}
    tuned: Dict[str, List[Dict[str, float]]] = {}
    total_evaluations = 0
    t0 = time.perf_counter()
    with ExperimentEngine(jobs=jobs, cache=None) as engine:
        for rms in rms_list:
            memo: Dict = {}
            simulate = make_simulate(case, rms, profile, seed=seed, memo=memo, engine=engine)
            batch = make_batch_simulate(case, rms, profile, seed=seed, memo=memo, engine=engine)
            procedure = ScalabilityProcedure(
                simulate,
                case.enabler_space(),
                path=case.path(profile),
                warm_start=warm_start,
                schedule=AnnealingSchedule(iterations=sa_iterations, t0=0.5),
                seed=seed,
                batch_simulate=batch,
                speculation=speculation,
            )
            result = procedure.run(name=rms)
            tuned[rms] = [dict(p.settings) for p in result.points]
            for k, n in procedure.tuner.evaluations_by_scale().items():
                evaluations_by_scale[k] = evaluations_by_scale.get(k, 0) + n
            total_evaluations += procedure.tuner.evaluations
    seconds = time.perf_counter() - t0
    return {
        "jobs": jobs,
        "warm_start": warm_start,
        "speculation": speculation,
        "seconds": round(seconds, 3),
        "simulations": total_evaluations,
        "evaluations_by_scale": {str(k): n for k, n in sorted(evaluations_by_scale.items())},
        "tuned": tuned,
    }


# ---------------------------------------------------------------------------
# The whole benchmark
# ---------------------------------------------------------------------------

def run_bench(
    profile: "str | ScaleProfile" = "ci",
    rms: Optional[Sequence[str]] = None,
    case_id: int = 1,
    seed: int = 7,
    sa_iterations: Optional[int] = None,
    jobs: int = 4,
    speculation: int = DEFAULT_SPECULATION_WIDTH,
    kernel_events: int = 200_000,
    fel_events: int = 1_000_000,
    include_fluid: bool = True,
) -> Dict:
    """Run every layer and return the ``BENCH_perf.json`` payload.

    Schema 3 adds the ``fluid`` section (cross-validated event-count
    reduction at extreme scale); ``repro bench-check`` still reads
    schema-1 and schema-2 baselines and skips sections they lack.
    ``include_fluid=False`` drops that section — the extreme-scale run
    is minutes of wall clock a quick kernel-only check may not want.
    """
    prof = profile if isinstance(profile, ScaleProfile) else PROFILES[profile]
    rms_list = list(rms) if rms is not None else rms_names()
    iters = sa_iterations if sa_iterations is not None else prof.sa_iterations

    kernel = bench_kernel_section(events=kernel_events, fel_events=fel_events)
    sims = bench_sims(prof, rms=rms_list[0], seed=seed)
    # The fluid section always runs LOWEST: the cross-validation
    # contract (F bit-identical) is pinned to designs whose placements
    # are not delivery-timing-sensitive — CENTRAL diverges there by
    # documented design (EXPERIMENTS.md "Extreme scale") and its single
    # decision point saturates at 1e5 resources anyway.
    fluid = bench_fluid(seed=seed) if include_fluid else None

    baseline = bench_study_arm(
        prof, rms_list, case_id, seed, iters,
        jobs=1, warm_start=False, speculation=1,
    )
    arms = [
        bench_study_arm(
            prof, rms_list, case_id, seed, iters,
            jobs=j, warm_start=True, speculation=speculation,
        )
        for j in ([1, jobs] if jobs != 1 else [1])
    ]
    identical = all(arm["tuned"] == arms[0]["tuned"] for arm in arms[1:])
    speedups = {
        f"jobs={arm['jobs']}": (
            round(baseline["seconds"] / arm["seconds"], 3) if arm["seconds"] > 0 else None
        )
        for arm in arms
    }
    payload = {
        "schema": 3,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": _cpu_count(),
        },
        "profile": prof.name,
        "case": case_id,
        "seed": seed,
        "sa_iterations": iters,
        "rms": rms_list,
        "kernel": kernel,
        "sims": sims,
        "study": {
            "baseline": baseline,
            "arms": arms,
            "speedup_vs_baseline": speedups,
            "tuned_points_identical_across_jobs": identical,
        },
    }
    if fluid is not None:
        payload["fluid"] = fluid
    return payload


def _cpu_count() -> Optional[int]:
    import os

    return os.cpu_count()


def render_report(payload: Dict) -> str:
    """A short human-readable summary of one benchmark payload."""
    study = payload["study"]
    base = study["baseline"]
    lines = [
        f"perf benchmark — profile={payload['profile']} case={payload['case']} "
        f"seed={payload['seed']} rms={','.join(payload['rms'])}",
    ]
    kernel = payload["kernel"]
    if "backends" in kernel:  # schema 2: per-backend, multi-case
        for name, cases in kernel["backends"].items():
            per_case = ", ".join(
                f"{case} {rec['events_per_sec']:,} ev/s ({rec['events']:,} events)"
                for case, rec in cases.items()
            )
            lines.append(f"kernel[{name}]: {per_case}")
        speed = kernel.get("speedup_fast_vs_reference") or {}
        if speed:
            lines.append(
                "kernel fast vs reference: "
                + ", ".join(f"{case} x{ratio}" for case, ratio in speed.items())
            )
    else:  # schema 1
        lines.append(
            f"kernel: {kernel['events_per_sec']:,} events/sec "
            f"({kernel['events']:,} events in {kernel['seconds']:.3f}s)"
        )
    lines.append(
        f"sims:   {payload['sims']['sims_per_sec']} sims/sec ({payload['sims']['rms']} base config)"
    )
    fluid = payload.get("fluid")
    if fluid:
        ov, ex = fluid["overlap"], fluid["extreme"]
        lines.append(
            f"fluid overlap ({ov['n_resources']:,} resources): "
            f"{ov['event_reduction']}x fewer kernel events, {ov['speedup']}x faster, "
            f"F identical: {'yes' if ov['F_identical'] else 'NO — BUG'}, "
            f"G {ov['G_delta_pct']:+g}%, H {ov['H_delta_pct']:+g}%"
        )
        lines.append(
            f"fluid extreme ({ex['n_resources']:,} resources, {ex['rms'] if 'rms' in ex else ov['rms']}): "
            f"{ex['fluid']['kernel_events']:,} kernel events in {ex['fluid']['seconds']}s "
            f"— {ex['event_reduction_vs_discrete']}x below projected discrete"
        )
    lines.append(
        f"study baseline (serial tuner, cold start): {base['seconds']:.2f}s, "
        f"{base['simulations']} simulations"
    )
    for arm in study["arms"]:
        speedup = study["speedup_vs_baseline"][f"jobs={arm['jobs']}"]
        lines.append(
            f"study warm+speculative W={arm['speculation']} jobs={arm['jobs']}: "
            f"{arm['seconds']:.2f}s, {arm['simulations']} simulations "
            f"({speedup}x vs baseline)"
        )
    lines.append(
        "tuned points identical across jobs: "
        + ("yes" if study["tuned_points_identical_across_jobs"] else "NO — BUG")
    )
    return "\n".join(lines)


def write_bench(payload: Dict, output: "str | Path" = DEFAULT_OUTPUT) -> Path:
    """Write the payload to ``output`` (pretty-printed, trailing newline)."""
    path = Path(output)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path
