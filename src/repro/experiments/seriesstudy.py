"""Time-resolved observability study: ``repro series``.

Runs the Case-1 scaling path with a :class:`MonitorPlan` attached to
every config, so each (RMS, scale) run carries a windowed F/G/H stream
and (optionally) in-sim probe gauges.  On top of the per-run payloads
this driver renders:

* per-scale **E(t)/G(t) tables** — the windowed trajectory, thinned to
  a terminal-friendly row count (the exports carry every window);
* the **steady-state vs final-E comparison** — MSER warmup truncation
  per run, with the relative disagreement the acceptance bar checks;
* an **overhead/accuracy sweep** — several probe intervals at a fixed
  charge rate, demonstrating monotone ``G:monitor`` growth with probe
  frequency while F stays bit-for-bit conserved (ledger charges never
  feed back into behaviour, so the efficiency *measurement* degrades
  gracefully while the *workload outcome* is invariant);
* **exports** — per-window CSV, per-run JSONL, and a Prometheus text
  exposition of the study's summary gauges.

All runs go through the engine as one batch (results independent of
``--jobs``), and the study checkpoints into
``<cache>/manifests/series.json`` in the same manifest shape ``repro
attrib`` reads — the series payload rides inside each point.

Cache interaction: a passive plan shares cache keys with unmonitored
runs *by design* (see ``parallel.hashing``), which means a prior
figure sweep may have cached the same key **without** a series payload.
:class:`SeriesAwareCache` treats such an entry as a miss so the run is
recomputed (byte-identical, now carrying its stream) and the entry
upgraded in place.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO

from ..rms.registry import rms_names
from ..telemetry.promexport import attribution_labels, write_metric
from ..telemetry.timeseries import (
    MonitorPlan,
    efficiency_curve,
    merge_series,
    monitor_plan_to_jsonable,
    steady_state,
)
from .cases import get_case
from .config import PROFILES, ScaleProfile, SimulationConfig
from .parallel.cache import RunCache
from .parallel.hashing import canonical_json
from .parallel.manifest import StudyManifest
from .runner import RunMetrics, run_simulation
from .tabulate import format_table

__all__ = [
    "SeriesAwareCache",
    "SeriesStudyPoint",
    "SeriesStudyResult",
    "default_monitor_plan",
    "export_csv",
    "export_jsonl",
    "export_prometheus",
    "monitor_plan_key",
    "run_series_study",
    "series_report",
    "sweep_report",
]


def default_monitor_plan(
    profile: ScaleProfile,
    probe_interval: Optional[float] = None,
    charge_rate: Optional[float] = None,
) -> MonitorPlan:
    """The standard study plan for one profile.

    Windowed streams on with the derived width; probes default to the
    status-update period's order of magnitude (``horizon / 200``) so a
    run collects a few hundred sweeps — dense enough for the gauges to
    mean something, sparse enough to stay cheap.
    """
    if probe_interval is None:
        probe_interval = profile.horizon / 200.0
    return MonitorPlan(
        series=True,
        probe_interval=float(probe_interval),
        charge_rate=float(charge_rate) if charge_rate is not None else 0.0,
    )


def monitor_plan_key(plan: MonitorPlan) -> str:
    """A short stable digest of a plan (manifest key component)."""
    digest = hashlib.sha256(
        canonical_json(monitor_plan_to_jsonable(plan))
    ).hexdigest()
    return digest[:12]


class SeriesAwareCache(RunCache):
    """A run cache that refuses series-less hits for monitored configs.

    Passive monitor plans hash to the same key as unmonitored runs, so
    an entry cached by an earlier figure sweep may lack the series
    payload this study needs.  Such an entry is still *valid* — just
    incomplete for this consumer — so it reads as a miss here: the run
    is recomputed (byte-identical by the passive-plan contract) and the
    rewritten entry carries the stream for both consumers.
    """

    def get(
        self, config: SimulationConfig, key: Optional[str] = None
    ) -> Optional[RunMetrics]:
        metrics = super().get(config, key)
        if (
            metrics is not None
            and metrics.series is None
            and config.monitor.is_enabled
        ):
            self.hits -= 1
            self.misses += 1
            return None
        return metrics


@dataclass(frozen=True)
class SeriesStudyPoint:
    """One (RMS, scale) run with its time-resolved stream."""

    rms: str
    scale: float
    metrics: RunMetrics

    @property
    def series(self) -> Optional[Dict[str, Any]]:
        return self.metrics.series

    @property
    def monitor_g(self) -> float:
        """The run's total ``g.monitor`` probe overhead."""
        attribution = self.metrics.attribution or {}
        return math.fsum(
            v for k, v in attribution.items() if k.startswith("g.monitor")
        )

    @property
    def steady(self) -> Dict[str, float]:
        """Warmup/steady-state analysis of the run's stream."""
        if self.series is None:
            return {}
        return steady_state(self.series)


@dataclass(frozen=True)
class SeriesStudyResult:
    """Everything ``repro series`` measured."""

    profile: str
    seed: int
    plan: MonitorPlan
    #: traffic plan the runs executed under (``None`` means discrete)
    fluid: Optional[Any] = None
    #: RMS name -> points in ascending scale order
    series: Dict[str, List[SeriesStudyPoint]] = field(default_factory=dict)
    #: probe-interval sweep points (interval -> per-RMS points), present
    #: only when several intervals were requested
    sweep: Dict[float, Dict[str, SeriesStudyPoint]] = field(default_factory=dict)
    manifest_path: Optional[Path] = None


def run_series_study(
    profile: str = "ci",
    rms: Optional[Sequence[str]] = None,
    seed: int = 7,
    plan: Optional[MonitorPlan] = None,
    probe_interval: Optional[float] = None,
    charge_rate: Optional[float] = None,
    sweep_intervals: Optional[Sequence[float]] = None,
    engine=None,
    manifest_path: "str | Path | None" = None,
    fluid=None,
) -> SeriesStudyResult:
    """Run the time-resolved study: Case-1 scaling under a monitor plan.

    Parameters
    ----------
    plan:
        Explicit :class:`MonitorPlan`; when ``None``, a default study
        plan is derived from the profile (``probe_interval`` /
        ``charge_rate`` override its knobs).
    sweep_intervals:
        Additional probe intervals for the overhead/accuracy sweep,
        each run at the base scale for every design with the plan's
        charge rate.
    engine:
        Optional :class:`~repro.experiments.parallel.ExperimentEngine`;
        all runs (scaling path + sweep) go through it as **one** batch,
        so worker count cannot affect results.
    manifest_path:
        When given, each design's points are checkpointed there in the
        study-manifest shape ``repro attrib`` and ``repro watch`` read.
    fluid:
        Optional :class:`~repro.fluid.plan.FluidPlan` applied to every
        run.  In fluid mode the probe sampler reads the status plane's
        O(1) aggregate gauges instead of sweeping per-resource state,
        so the study stays cheap at extreme scale.
    """
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    names = list(rms) if rms else rms_names()
    if plan is None:
        plan = default_monitor_plan(
            prof, probe_interval=probe_interval, charge_rate=charge_rate
        )
    case = get_case(1)

    configs = [
        case.config_for(name, k, prof, seed=seed, monitor=plan, fluid=fluid)
        for name in names
        for k in prof.scales
    ]
    intervals = [
        float(i) for i in (sweep_intervals or ()) if float(i) != plan.probe_interval
    ]
    base_k = prof.scales[0]
    sweep_configs = [
        case.config_for(
            name,
            base_k,
            prof,
            seed=seed,
            monitor=MonitorPlan(
                series=True,
                window=plan.window,
                max_windows=plan.max_windows,
                probe_interval=interval,
                charge_rate=plan.charge_rate,
            ),
            fluid=fluid,
        )
        for interval in intervals
        for name in names
    ]
    if engine is not None:
        metrics_list = engine.run_many(configs + sweep_configs)
    else:
        metrics_list = [run_simulation(c) for c in configs + sweep_configs]

    it = iter(metrics_list)
    series: Dict[str, List[SeriesStudyPoint]] = {}
    for name in names:
        series[name] = [
            SeriesStudyPoint(rms=name, scale=float(k), metrics=next(it))
            for k in prof.scales
        ]
    sweep: Dict[float, Dict[str, SeriesStudyPoint]] = {}
    for interval in intervals:
        sweep[interval] = {
            name: SeriesStudyPoint(rms=name, scale=float(base_k), metrics=next(it))
            for name in names
        }
    if intervals:
        # The study's own points cover the plan's interval at base scale.
        sweep[plan.probe_interval] = {
            name: series[name][0] for name in names
        }

    result = SeriesStudyResult(
        profile=prof.name,
        seed=seed,
        plan=plan,
        fluid=fluid,
        series=series,
        sweep=dict(sorted(sweep.items())),
        manifest_path=Path(manifest_path) if manifest_path else None,
    )
    if result.manifest_path is not None:
        _write_manifest(result)
    return result


def _write_manifest(result: SeriesStudyResult) -> None:
    """Checkpoint the study in the shape ``repro attrib``/``watch`` read."""
    manifest = StudyManifest(result.manifest_path)
    digest = monitor_plan_key(result.plan)
    fluid = ""
    if result.fluid is not None and getattr(result.fluid, "is_fluid", False):
        fluid = f":fluid{result.fluid.mode}-fan{result.fluid.aggregator_fanout}"
    for name, points in result.series.items():
        key = f"{result.profile}:seed{result.seed}:series{digest}{fluid}:case1:{name}"
        payload = {
            "monitor": monitor_plan_to_jsonable(result.plan),
            "result": {
                "points": [
                    {
                        "scale": p.scale,
                        "record": {
                            "F": p.metrics.record.F,
                            "G": p.metrics.record.G,
                            "H": p.metrics.record.H,
                        },
                        "attribution": p.metrics.attribution or {},
                        "series": p.series,
                        "steady": p.steady,
                    }
                    for p in points
                ]
            },
        }
        manifest.mark_done(key, payload)


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

def _thin(indices: Sequence[int], limit: int) -> List[int]:
    """At most ``limit`` evenly spaced entries, endpoints included."""
    n = len(indices)
    if n <= limit:
        return list(indices)
    step = (n - 1) / (limit - 1)
    picked = {int(round(i * step)) for i in range(limit)}
    return [indices[i] for i in sorted(picked)]


def series_report(
    result: SeriesStudyResult, precision: int = 3, curve_rows: int = 12
) -> str:
    """Render the study: steady-state tables plus thinned E(t)/G(t) curves."""
    plan = result.plan
    parts: List[str] = [
        f"monitor plan {monitor_plan_key(plan)}: "
        f"probe_interval={plan.probe_interval:g}, "
        f"charge_rate={plan.charge_rate:g} "
        f"(profile {result.profile}, seed {result.seed})"
    ]

    worst = 0.0
    rows = []
    for name, points in result.series.items():
        for p in points:
            ss = p.steady
            if not ss:
                continue
            rel = ss["rel_error"]
            if rel == rel and rel > worst:
                worst = rel
            rows.append(
                [
                    name,
                    p.scale,
                    ss["steady_E"],
                    ss["final_E"],
                    rel * 100.0,
                    ss["warmup_time"],
                    p.monitor_g,
                ]
            )
    parts.append("\nsteady-state detection (MSER warmup truncation):")
    parts.append(
        format_table(
            ["RMS", "k", "steady E", "final E", "|err| %", "warmup t", "G:monitor"],
            rows,
            precision=precision,
        )
    )
    parts.append(
        f"steady-state vs final-E agreement: worst {worst * 100.0:.3f}%"
        + (" (within 2%)" if worst <= 0.02 else " (EXCEEDS 2%)")
    )

    for name, points in result.series.items():
        payloads = [p.series for p in points if p.series is not None]
        if not payloads:
            continue
        parts.append(f"\n{name} — E(t)/G(t) per scale (thinned to {curve_rows} rows):")
        for p in points:
            if p.series is None:
                continue
            curve = efficiency_curve(p.series)
            g = p.series["sums"].get("G", [])
            idx = _thin(range(len(curve)), curve_rows)
            crows = [
                [
                    curve[i][0],
                    curve[i][1],
                    curve[i][2],
                    g[i] if i < len(g) else 0.0,
                ]
                for i in idx
            ]
            parts.append(f"  k={p.scale:g}:")
            parts.append(
                format_table(
                    ["t", "e(t) inst", "E(t) cum", "G(t) window"],
                    crows,
                    precision=precision,
                )
            )
        merged = merge_series(payloads)
        mss = steady_state(merged)
        parts.append(
            f"  merged across scales: steady E={mss['steady_E']:.{precision}f}, "
            f"final E={mss['final_E']:.{precision}f}, "
            f"warmup t={mss['warmup_time']:g}"
        )
    return "\n".join(parts)


def sweep_report(result: SeriesStudyResult, precision: int = 3) -> str:
    """Render the overhead/accuracy sweep (monotone G:monitor check).

    Charges never feed back into simulation behaviour, so F must be
    bit-for-bit identical across probe intervals; the report says so
    explicitly (and flags any violation).
    """
    if not result.sweep:
        return ""
    parts: List[str] = ["\noverhead/accuracy sweep (base scale, per design):"]
    conserved = True
    monotone = True
    for name in sorted(next(iter(result.sweep.values()))):
        rows = []
        f_values = []
        g_monitor_by_rate = []
        for interval, by_rms in result.sweep.items():
            p = by_rms[name]
            sweeps = (p.series or {}).get("sweeps", 0)
            f_values.append(p.metrics.record.F)
            g_monitor_by_rate.append((1.0 / interval, p.monitor_g))
            rows.append(
                [
                    interval,
                    int(sweeps),
                    p.monitor_g,
                    p.metrics.record.G,
                    p.metrics.efficiency,
                    p.metrics.record.F,
                ]
            )
        if any(f != f_values[0] for f in f_values[1:]):
            conserved = False
        g_monitor_by_rate.sort()
        gm = [g for _, g in g_monitor_by_rate]
        if any(b < a for a, b in zip(gm, gm[1:])):
            monotone = False
        parts.append(f"\n{name}:")
        parts.append(
            format_table(
                ["probe_interval", "sweeps", "G:monitor", "G", "E", "F"],
                rows,
                precision=precision,
            )
        )
    parts.append(
        "\nF conserved across sweep: " + ("yes" if conserved else "NO — VIOLATION")
    )
    parts.append(
        "G:monitor monotone in probe frequency: "
        + ("yes" if monotone else "NO — VIOLATION")
    )
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Exports
# ---------------------------------------------------------------------------

def export_csv(result: SeriesStudyResult, fh: TextIO) -> int:
    """Every window of every run as CSV rows; returns the row count."""
    writer = csv.writer(fh)
    writer.writerow(
        ["rms", "scale", "t", "width", "F", "G", "H", "e_inst", "E_cum"]
    )
    n = 0
    for name, points in result.series.items():
        for p in points:
            if p.series is None:
                continue
            sums = p.series["sums"]
            f = sums.get("F", [])
            g = sums.get("G", [])
            h = sums.get("H", [])
            width = p.series["width"]
            for i, (t, inst, cum) in enumerate(efficiency_curve(p.series)):
                writer.writerow(
                    [
                        name,
                        p.scale,
                        t,
                        width,
                        f[i] if i < len(f) else 0.0,
                        g[i] if i < len(g) else 0.0,
                        h[i] if i < len(h) else 0.0,
                        "" if inst != inst else inst,
                        "" if cum != cum else cum,
                    ]
                )
                n += 1
    return n


def export_jsonl(result: SeriesStudyResult, fh: TextIO) -> int:
    """One JSON line per run (full series payload); returns line count."""
    n = 0
    for name, points in result.series.items():
        for p in points:
            fh.write(
                json.dumps(
                    {
                        "rms": name,
                        "scale": p.scale,
                        "profile": result.profile,
                        "seed": result.seed,
                        "monitor": monitor_plan_to_jsonable(result.plan),
                        "record": {
                            "F": p.metrics.record.F,
                            "G": p.metrics.record.G,
                            "H": p.metrics.record.H,
                        },
                        "steady": p.steady,
                        "series": p.series,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            n += 1
    return n


def export_prometheus(result: SeriesStudyResult, fh: TextIO) -> int:
    """Prometheus text exposition of the study's summary gauges.

    One sample per (metric, rms, scale) — the end-of-study snapshot a
    scrape of a live study would serve — rendered via the shared
    :mod:`~repro.telemetry.promexport` path, plus a per-component
    attribution family (``repro_overhead_component_total``) labeled by
    the flattened ledger cell.  Returns the sample count.
    """
    metrics: Dict[str, tuple] = {
        "repro_useful_work_total": ("counter", lambda p, s: p.metrics.record.F),
        "repro_rms_overhead_total": ("counter", lambda p, s: p.metrics.record.G),
        "repro_rp_overhead_total": ("counter", lambda p, s: p.metrics.record.H),
        "repro_monitor_overhead_total": ("counter", lambda p, s: p.monitor_g),
        "repro_efficiency": ("gauge", lambda p, s: p.metrics.efficiency),
        "repro_steady_efficiency": ("gauge", lambda p, s: s.get("steady_E")),
        "repro_warmup_time": ("gauge", lambda p, s: s.get("warmup_time")),
    }
    points = [p for pts in result.series.values() for p in pts]
    n = 0
    for mname, (mtype, getter) in metrics.items():
        n += write_metric(
            fh,
            mname,
            mtype,
            (
                (
                    {"rms": p.rms, "scale": p.scale, "profile": result.profile},
                    getter(p, p.steady),
                )
                for p in points
            ),
        )
    n += write_metric(
        fh,
        "repro_overhead_component_total",
        "counter",
        (
            (
                {
                    "rms": p.rms,
                    "scale": p.scale,
                    "profile": result.profile,
                    **attribution_labels(key),
                },
                value,
            )
            for p in points
            for key, value in sorted((p.metrics.attribution or {}).items())
            if key.startswith("g.")
        ),
    )
    return n
