"""The unified :class:`StudySpec`: one description of one study.

Every way of running a study — the Python API (:func:`repro.api.run_study`),
each CLI subcommand, and the distributed fabric's wire protocol — constructs
and consumes the same frozen dataclass.  A spec answers three questions:

* **what** to measure — ``kind`` (``figure``/``compare``/``faults``/
  ``series``/``trace``) plus the kind's scientific knobs (figure number,
  profile, RMS subset, seed, fault plan, probe intervals, ...);
* **how** to execute it — ``jobs``, ``cache_dir``, ``no_cache``,
  ``resume`` (these never change the numbers, only the mechanics);
* **how** to present it — ``quantity``, ``precision``.

:func:`spec_digest` hashes only the first group: two specs with the same
digest describe the same science, so their results (and cache/manifest
bytes) must be identical regardless of job count or transport.  That is
the fabric's correctness contract — a study executed through
``repro serve`` / ``repro work`` is byte-identical to the same spec run
locally with ``--jobs N``.

Wire format: :func:`spec_to_jsonable` / :func:`spec_from_jsonable` are
exact inverses over plain JSON types (unknown keys rejected), shared by
the fabric protocol and any on-disk spec files.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..faults import FaultPlan, plan_from_jsonable, plan_to_jsonable
from .parallel.cache import canonical_json

__all__ = [
    "KINDS",
    "SPEC_VERSION",
    "StudySpec",
    "spec_digest",
    "spec_from_jsonable",
    "spec_to_jsonable",
]

#: wire/schema version of the jsonable spec format
SPEC_VERSION = 1

#: the study kinds a spec can describe
KINDS = ("figure", "compare", "faults", "series", "trace")

#: fields that do not affect the measured numbers — execution mechanics
#: and presentation only; :func:`spec_digest` excludes them (the kernel
#: backend is bit-identical by contract, hence provenance, not science)
EXECUTION_FIELDS = frozenset(
    {"jobs", "cache_dir", "no_cache", "resume", "kernel_backend",
     "quantity", "precision"}
)


@dataclass(frozen=True)
class StudySpec:
    """One study, fully described (frozen; validated on construction)."""

    # -- what ----------------------------------------------------------
    kind: str = "figure"
    figure: Optional[int] = None          # kind=figure: 2..7 (default 2)
    profile: str = "ci"
    rms: Optional[Tuple[str, ...]] = None  # None = the kind's default set
    seed: int = 7
    sa_iterations: Optional[int] = None
    speculate: Optional[int] = None
    warm_start: Optional[bool] = None
    traffic_mode: Optional[str] = None
    aggregator_fanout: Optional[int] = None
    faults: Optional[FaultPlan] = None     # kinds: faults, compare, trace
    mttf: Optional[float] = None           # kind=faults
    mttr: Optional[float] = None           # kind=faults
    window: Optional[float] = None         # kind=series
    probe_intervals: Tuple[float, ...] = ()  # kind=series: base + sweep
    charge_rate: Optional[float] = None    # kind=series
    trace_sample: Optional[float] = None   # kind=trace
    trace_charge: Optional[float] = None   # kind=trace
    max_events: Optional[int] = None       # kind=trace

    # -- how to execute (never changes the numbers) --------------------
    jobs: Optional[int] = None
    cache_dir: Optional[str] = None
    no_cache: bool = False
    resume: bool = False
    kernel_backend: Optional[str] = None   # bit-identical: provenance only

    # -- how to present ------------------------------------------------
    quantity: Optional[str] = None         # kind=figure: plotted quantity
    precision: Optional[int] = None        # table precision (kind default)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown study kind {self.kind!r}; valid: {list(KINDS)}")
        if self.figure is not None:
            if self.kind != "figure":
                raise ValueError(f"figure number is meaningless for kind={self.kind!r}")
            if self.figure not in range(2, 8):
                raise ValueError(f"the paper has figures 2-7, not {self.figure}")
        if self.rms is not None:
            object.__setattr__(self, "rms", tuple(str(x) for x in self.rms))
        object.__setattr__(
            self, "probe_intervals", tuple(float(x) for x in self.probe_intervals)
        )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError("faults must be a FaultPlan (or None)")

    # -- convenience ---------------------------------------------------
    @property
    def figure_number(self) -> int:
        """The effective figure number (kind=figure; default 2)."""
        return 2 if self.figure is None else self.figure

    @property
    def rms_list(self) -> "Optional[list]":
        """The RMS subset as the list the study functions expect."""
        return list(self.rms) if self.rms is not None else None

    def replace(self, **changes: Any) -> "StudySpec":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------

def spec_to_jsonable(spec: StudySpec) -> Dict[str, Any]:
    """The spec as plain JSON types (inverse of :func:`spec_from_jsonable`).

    Defaults are included so the payload is self-describing; tuples
    become lists; the fault plan uses the shared ``plan_to_jsonable``
    shape.
    """
    out: Dict[str, Any] = {"version": SPEC_VERSION}
    for f in dataclasses.fields(StudySpec):
        value = getattr(spec, f.name)
        if f.name == "faults":
            value = None if value is None else plan_to_jsonable(value)
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


def spec_from_jsonable(payload: Dict[str, Any]) -> StudySpec:
    """Build a :class:`StudySpec` from a JSON dict (unknown keys rejected)."""
    if not isinstance(payload, dict):
        raise TypeError("a study spec must be a JSON object")
    payload = dict(payload)
    version = payload.pop("version", SPEC_VERSION)
    if version != SPEC_VERSION:
        raise ValueError(f"unsupported spec version {version!r} (have {SPEC_VERSION})")
    known = {f.name for f in dataclasses.fields(StudySpec)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown study-spec keys: {sorted(unknown)}")
    kwargs: Dict[str, Any] = dict(payload)
    if kwargs.get("faults") is not None:
        kwargs["faults"] = plan_from_jsonable(kwargs["faults"])
    if kwargs.get("rms") is not None:
        kwargs["rms"] = tuple(kwargs["rms"])
    if kwargs.get("probe_intervals"):
        kwargs["probe_intervals"] = tuple(kwargs["probe_intervals"])
    else:
        kwargs.pop("probe_intervals", None)
    return StudySpec(**kwargs)


def spec_digest(spec: StudySpec) -> str:
    """SHA-256 identity of the spec's *science*.

    Execution and presentation fields (:data:`EXECUTION_FIELDS`) are
    excluded: two specs with equal digests must produce byte-identical
    results whether run with ``--jobs 1``, ``--jobs N``, or through the
    fabric.
    """
    payload = spec_to_jsonable(spec)
    for name in EXECUTION_FIELDS:
        payload.pop(name, None)
    return hashlib.sha256(canonical_json(payload)).hexdigest()
