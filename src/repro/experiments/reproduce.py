"""Reproduction drivers: one function per paper figure.

``figure2()`` … ``figure7()`` regenerate the corresponding paper
figure's data series under a scale profile, returning a
:class:`FigureData` whose rows the reporting module renders.  Figures
4, 6, and 7 share a single Case-3 measurement (the paper derives all
three from the same experiment), so the drivers memoize per-case
results within a :class:`Study`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.annealing import AnnealingSchedule
from ..core.procedure import ScalabilityProcedure, ScalabilityResult
from ..envknobs import get_bool, get_str, raw as _env_raw
from ..fluid.plan import FluidPlan, resolve_fluid_plan
from ..rms.registry import rms_names
from ..sim.backend import resolve_backend
from ..telemetry.spans import current as _telemetry
from .cases import ExperimentCase, get_case, make_batch_simulate, make_simulate
from .config import PROFILES, ScaleProfile
from .parallel.cache import DEFAULT_CACHE_DIR, metrics_from_jsonable, metrics_to_jsonable
from .parallel.manifest import StudyManifest, result_from_jsonable, result_to_jsonable
from .runner import RunMetrics

__all__ = [
    "DEFAULT_SPECULATION_WIDTH",
    "RMSSeries",
    "FigureData",
    "Study",
    "resolve_speculation",
    "resolve_warm_start",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
]

#: annealing speculation width used when speculation is switched on
#: without an explicit width (``--speculate`` bare, ``REPRO_SPECULATE=1``)
DEFAULT_SPECULATION_WIDTH = 4


def resolve_speculation(speculate: "bool | int | None" = None) -> int:
    """Resolve the annealing speculation width: argument > env > off.

    ``None`` defers to ``$REPRO_SPECULATE``; ``False``/``0`` (and an
    unset/falsy environment) mean no speculation (width 1, the classic
    serial walk); ``True`` (or ``REPRO_SPECULATE=1``/``true``) selects
    :data:`DEFAULT_SPECULATION_WIDTH`; any larger integer is used as
    the width directly.
    """
    if speculate is None:
        env = (_env_raw("REPRO_SPECULATE") or "").lower()
        if env in ("", "0", "false", "no", "off"):
            return 1
        if env in ("1", "true", "yes", "on"):
            return DEFAULT_SPECULATION_WIDTH
        speculate = int(env)
    if speculate is True:
        return DEFAULT_SPECULATION_WIDTH
    if not speculate:
        return 1
    return max(1, int(speculate))


def resolve_warm_start(warm_start: "bool | None" = None) -> bool:
    """Resolve the warm-start flag: argument > ``$REPRO_WARM_START`` > on."""
    return get_bool("REPRO_WARM_START", override=warm_start, default=True)


@dataclass
class RMSSeries:
    """One RMS's measured series along a case's scaling path."""

    rms: str
    result: ScalabilityResult
    metrics: List[RunMetrics]

    @property
    def scales(self) -> Tuple[float, ...]:
        """Scale factors of the path."""
        return self.result.scales

    @property
    def G(self) -> Tuple[float, ...]:
        """Tuned minimum overhead per scale."""
        return self.result.G

    @property
    def g_norm(self) -> Tuple[float, ...]:
        """Normalized overhead ``g(k) = G(k)/G(k0)``."""
        return self.result.curves.g

    @property
    def f_norm(self) -> Tuple[float, ...]:
        """Normalized useful work ``f(k) = F(k)/F(k0)``."""
        return self.result.curves.f

    @property
    def h_norm(self) -> Tuple[float, ...]:
        """Normalized RP overhead ``h(k) = H(k)/H(k0)`` — the axis the
        paper's future work (c) proposes measuring scalability on."""
        return self.result.curves.h

    @property
    def efficiency(self) -> Tuple[float, ...]:
        """Achieved efficiency per scale."""
        return self.result.efficiencies

    @property
    def throughput(self) -> Tuple[float, ...]:
        """Successful jobs per unit time, per scale (Fig. 6's y-axis)."""
        return tuple(m.throughput for m in self.metrics)

    @property
    def response(self) -> Tuple[float, ...]:
        """Mean job response time per scale (Fig. 7's y-axis)."""
        return tuple(m.mean_response for m in self.metrics)


@dataclass
class FigureData:
    """One regenerated figure: a named family of per-RMS series."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, RMSSeries]

    def rows(self, quantity: str = "G") -> List[List]:
        """Tabular view: one row per RMS, one column per scale."""
        out = []
        for name, s in self.series.items():
            values = getattr(s, quantity)
            out.append([name, *values])
        return out

    @property
    def scales(self) -> Tuple[float, ...]:
        """The common scale axis."""
        first = next(iter(self.series.values()))
        return first.scales


class Study:
    """A reproduction session: caches per-case measurements.

    Parameters
    ----------
    profile:
        ``"ci"`` (default) or ``"full"`` — see
        :mod:`repro.experiments.config`.
    rms:
        Which designs to measure (default: all seven).
    seed:
        Root seed for every simulation in the study.
    engine:
        Optional :class:`~repro.experiments.parallel.ExperimentEngine`;
        every simulation of the study then executes through it —
        independent candidate batches fan out over its worker pool and
        repeat runs are served from its run cache.  ``None`` keeps the
        historical serial in-process behavior.
    resume:
        Checkpoint/resume the study through a
        :class:`~repro.experiments.parallel.StudyManifest`: completed
        (case, RMS) points are persisted as they finish and *skipped*
        (reconstructed from the manifest, zero simulations) on the next
        run.
    manifest_path:
        Manifest file location (implies ``resume``); defaults to
        ``<cache-dir>/manifests/study.json``.
    speculate:
        Speculative-annealing width (see :func:`resolve_speculation`;
        default: ``$REPRO_SPECULATE`` or off).  With a width ``W > 1``
        every annealing round evaluates up to ``W`` proposed neighbors
        as one engine batch.  Tuned points stay identical across worker
        counts — only wall-clock changes.
    warm_start:
        Warm-start each scale of the walk from the previous scale's
        tuned settings (see :func:`resolve_warm_start`; default:
        ``$REPRO_WARM_START`` or on).  ``False`` restores the
        historical cold-start walk.
    kernel_backend:
        Kernel backend for every simulation of the study (default:
        ``$REPRO_KERNEL_BACKEND`` or ``reference`` — see
        :mod:`repro.sim.backend`).  Backends are bit-identical, so the
        choice never enters point identities or cache keys; it is
        recorded in the manifest payloads as provenance.
    fluid:
        Traffic model for every simulation of the study (default:
        ``$REPRO_TRAFFIC_MODE`` or discrete — see
        :mod:`repro.fluid.plan`).  A fluid plan changes what the runs
        compute (G/H carry the modeled rates), so unlike the kernel
        backend it *is* part of point identities and cache keys.
    """

    def __init__(
        self,
        profile: "str | ScaleProfile" = "ci",
        rms: Optional[Sequence[str]] = None,
        seed: int = 7,
        sa_iterations: Optional[int] = None,
        engine=None,
        resume: bool = False,
        manifest_path: "str | Path | None" = None,
        speculate: "bool | int | None" = None,
        warm_start: "bool | None" = None,
        kernel_backend: Optional[str] = None,
        fluid: "FluidPlan | None" = None,
    ) -> None:
        if isinstance(profile, ScaleProfile):
            self.profile = profile
        elif profile in PROFILES:
            self.profile = PROFILES[profile]
        else:
            raise KeyError(f"unknown profile {profile!r}; valid: {sorted(PROFILES)}")
        self.rms_list = list(rms) if rms is not None else rms_names()
        self.seed = seed
        self.sa_iterations = (
            sa_iterations if sa_iterations is not None else self.profile.sa_iterations
        )
        self.engine = engine
        self.speculation = resolve_speculation(speculate)
        self.warm_start = resolve_warm_start(warm_start)
        self.kernel_backend = resolve_backend(kernel_backend)
        self.fluid = fluid if fluid is not None else resolve_fluid_plan()
        self._manifest: Optional[StudyManifest] = None
        if resume or manifest_path is not None:
            if manifest_path is None:
                root = get_str("REPRO_CACHE_DIR", default=DEFAULT_CACHE_DIR)
                manifest_path = Path(root) / "manifests" / "study.json"
            self._manifest = StudyManifest(manifest_path)
        self._case_cache: Dict[int, Dict[str, RMSSeries]] = {}

    # ------------------------------------------------------------------
    def run_case(self, case_id: int) -> Dict[str, RMSSeries]:
        """Measure every requested RMS on one case (memoized).

        With a manifest attached (``resume=True``), points the manifest
        records as completed are reconstructed from it without running
        a single simulation; newly measured points are checkpointed as
        they finish.
        """
        if case_id in self._case_cache:
            return self._case_cache[case_id]
        case = get_case(case_id)
        out: Dict[str, RMSSeries] = {}
        for rms in self.rms_list:
            key = self._point_key(case_id, rms)
            if self._manifest is not None and self._manifest.is_done(key):
                series = self._series_from_payload(rms, self._manifest.payload(key))
                if series is not None:
                    out[rms] = series
                    continue
            series = self._measure(case, rms)
            out[rms] = series
            if self._manifest is not None:
                self._manifest.mark_done(key, self._series_payload(series))
        self._case_cache[case_id] = out
        return out

    def _point_key(self, case_id: int, rms: str) -> str:
        """Identity of one study point: everything that shapes its result.

        Warm-start and speculation change which candidates the search
        examines (and therefore the tuned points), so they are part of
        the identity — a manifest written under one flag set is never
        replayed under another.
        """
        scales = ",".join(str(s) for s in self.profile.scales)
        # An inert fluid plan leaves keys bit-for-bit what they were
        # before the field existed, so pre-fluid manifests stay valid;
        # a fluid plan computes different G/H and gets its own points.
        fluid = ""
        if self.fluid.is_fluid:
            fluid = f":fluid{self.fluid.mode}-fan{self.fluid.aggregator_fanout}"
        return (
            f"{self.profile.name}:seed{self.seed}:sa{self.sa_iterations}"
            f":scales[{scales}]:warm{int(self.warm_start)}"
            f":spec{self.speculation}{fluid}:case{case_id}:{rms}"
        )

    def _series_payload(self, series: RMSSeries) -> Dict:
        """Serialize one measured series for the manifest.

        The kernel backend rides along as provenance only — it is not
        part of the point key, so a manifest written under one backend
        resumes cleanly under another (results are bit-identical).
        """
        return {
            "result": result_to_jsonable(series.result),
            "metrics": [metrics_to_jsonable(m) for m in series.metrics],
            "kernel_backend": self.kernel_backend,
        }

    @staticmethod
    def _series_from_payload(rms: str, payload) -> Optional[RMSSeries]:
        """Rebuild a series from its manifest payload (``None`` if bad)."""
        try:
            return RMSSeries(
                rms=rms,
                result=result_from_jsonable(payload["result"]),
                metrics=[metrics_from_jsonable(m) for m in payload["metrics"]],
            )
        except (KeyError, TypeError, ValueError):
            return None

    def _measure(self, case: ExperimentCase, rms: str) -> RMSSeries:
        memo: Dict = {}
        simulate = make_simulate(
            case, rms, self.profile, seed=self.seed, memo=memo, engine=self.engine,
            kernel_backend=self.kernel_backend, fluid=self.fluid,
        )
        batch = make_batch_simulate(
            case, rms, self.profile, seed=self.seed, memo=memo, engine=self.engine,
            kernel_backend=self.kernel_backend, fluid=self.fluid,
        )
        procedure = ScalabilityProcedure(
            simulate,
            case.enabler_space(),
            path=case.path(self.profile),
            warm_start=self.warm_start,
            schedule=AnnealingSchedule(iterations=self.sa_iterations, t0=0.5),
            seed=self.seed,
            batch_simulate=batch,
            speculation=self.speculation,
        )
        # The study.measure span labels everything nested under it —
        # tuner iterations, engine batches, ledger snapshots — with the
        # (case, rms) pair; `repro telemetry tuner` groups by it.
        with _telemetry().span(
            "study.measure", case=case.case_id, rms=rms, profile=self.profile.name
        ):
            result = procedure.run(name=rms)
            # Re-read the tuned points' full metrics from the shared memo
            # (cache hits: no extra simulation).
            metrics = [simulate(p.scale, p.settings) for p in result.points]
        return RMSSeries(rms=rms, result=result, metrics=metrics)

    # ------------------------------------------------------------------
    def figure(self, number: int) -> FigureData:
        """Regenerate paper Figure ``number`` (2–7)."""
        if number == 2:
            return FigureData(
                "Figure 2",
                "Variation in G(k) on scaling the RP by number of nodes",
                "scale factor k (network size)",
                "G(k) [time units]",
                self.run_case(1),
            )
        if number == 3:
            return FigureData(
                "Figure 3",
                "Variation in G(k) on scaling the RP by service rate (fixed network)",
                "scale factor k (service rate)",
                "G(k) [time units]",
                self.run_case(2),
            )
        if number == 4:
            return FigureData(
                "Figure 4",
                "Variation of G(k) on scaling the RMS by number of estimators",
                "scale factor k (estimators)",
                "G(k) [time units]",
                self.run_case(3),
            )
        if number == 5:
            return FigureData(
                "Figure 5",
                "Variation in G(k) on scaling the RMS by L_p",
                "scale factor k (L_p)",
                "G(k) [time units]",
                self.run_case(4),
            )
        if number == 6:
            return FigureData(
                "Figure 6",
                "Throughput obtained by scaling the RMS by number of estimators",
                "scale factor k (estimators)",
                "throughput [successful jobs / time unit]",
                self.run_case(3),
            )
        if number == 7:
            return FigureData(
                "Figure 7",
                "Average response times obtained by scaling the RMS by estimators",
                "scale factor k (estimators)",
                "mean response time [time units]",
                self.run_case(3),
            )
        raise ValueError(f"the paper has figures 2-7; got {number}")


# Convenience single-figure entry points -------------------------------------

def _one(number: int, profile: str = "ci", **kw) -> FigureData:
    return Study(profile=profile, **kw).figure(number)


def figure2(profile: str = "ci", **kw) -> FigureData:
    """Regenerate paper Figure 2 (Case 1: scale RP by network size)."""
    return _one(2, profile, **kw)


def figure3(profile: str = "ci", **kw) -> FigureData:
    """Regenerate paper Figure 3 (Case 2: scale RP by service rate)."""
    return _one(3, profile, **kw)


def figure4(profile: str = "ci", **kw) -> FigureData:
    """Regenerate paper Figure 4 (Case 3: scale RMS by estimators)."""
    return _one(4, profile, **kw)


def figure5(profile: str = "ci", **kw) -> FigureData:
    """Regenerate paper Figure 5 (Case 4: scale RMS by L_p)."""
    return _one(5, profile, **kw)


def figure6(profile: str = "ci", **kw) -> FigureData:
    """Regenerate paper Figure 6 (throughput under estimator scaling)."""
    return _one(6, profile, **kw)


def figure7(profile: str = "ci", **kw) -> FigureData:
    """Regenerate paper Figure 7 (response times under estimator scaling)."""
    return _one(7, profile, **kw)
