"""The managed distributed system substrate: resources, clusters,
schedulers, estimators, status plane, and the Grid middleware."""

from .costs import CostModel
from .estimator import Estimator
from .jobs import Job, JobState
from .middleware import Middleware
from .resource import Resource
from .scheduler import SchedulerBase
from .status import StatusTable

__all__ = [
    "CostModel",
    "Estimator",
    "Job",
    "JobState",
    "Middleware",
    "Resource",
    "SchedulerBase",
    "StatusTable",
]
