"""Runtime job objects and their lifecycle.

A :class:`Job` wraps an immutable :class:`~repro.workload.generator.JobSpec`
with the mutable state the managed system attaches to it: where it is,
when it started service, how many times it was transferred between
clusters, and whether it ultimately met its user-benefit bound.

Lifecycle::

    SUBMITTED --> WAITING (held in a scheduler wait queue; R-I/Sy-I)
              \\-> PLACED  (dispatched toward a resource)
                   -> RUNNING -> COMPLETED
                \\        \\-> FAILED (resource crashed; re-dispatched
                 \\------------/      back to SUBMITTED with backoff)

A completed job is **successful** iff its response time (completion -
arrival) is within ``U_b = benefit_factor * execution_time`` (Table 1).
Only successful jobs contribute useful work ``F``.  Work a crashed
resource performed on a job is lost — only the final, completed run
charges ``F`` — so recovery shows up both as lost time (the response
clock keeps running) and as ``g.faults`` re-dispatch overhead.
"""

from __future__ import annotations

from typing import Optional

from ..workload.generator import JobClass, JobSpec

__all__ = ["Job", "JobState"]


class JobState:
    """Lifecycle states of a job inside the managed system."""

    SUBMITTED = "submitted"
    WAITING = "waiting"
    PLACED = "placed"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"

    ORDER = (SUBMITTED, WAITING, PLACED, RUNNING, COMPLETED, FAILED)


class Job:
    """Mutable runtime state of one job.

    Attributes
    ----------
    spec:
        The immutable workload description.
    state:
        Current :class:`JobState`.
    executed_cluster:
        Cluster where the job (last) executed; ``None`` until placed.
    start_service / completion_time:
        Service start and completion instants at the resource.
    transfers:
        Number of inter-cluster moves the RMS performed on the job.
    retries:
        Number of re-dispatches after resource crashes.
    dispatch_epoch:
        Monotonic placement counter; every dispatch carries the epoch
        it was issued under, so a resource can reject a stale dispatch
        that raced a crash-triggered re-dispatch of the same job.
    """

    __slots__ = (
        "spec",
        "state",
        "executed_cluster",
        "start_service",
        "completion_time",
        "transfers",
        "retries",
        "dispatch_epoch",
    )

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.state = JobState.SUBMITTED
        self.executed_cluster: Optional[int] = None
        self.start_service: Optional[float] = None
        self.completion_time: Optional[float] = None
        self.transfers = 0
        self.retries = 0
        self.dispatch_epoch = 0

    # Convenience passthroughs ------------------------------------------
    @property
    def job_id(self) -> int:
        """Workload job id."""
        return self.spec.job_id

    @property
    def is_remote_class(self) -> bool:
        """Whether the job is REMOTE-eligible (runtime > T_CPU)."""
        return self.spec.job_class == JobClass.REMOTE

    @property
    def response_time(self) -> Optional[float]:
        """Completion minus arrival; ``None`` until completed."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.spec.arrival_time

    @property
    def successful(self) -> Optional[bool]:
        """Whether the job met its benefit bound; ``None`` until completed."""
        rt = self.response_time
        if rt is None:
            return None
        return rt <= self.spec.benefit_bound

    # State transitions ---------------------------------------------------
    def mark_waiting(self) -> None:
        """Scheduler parked the job in its wait queue."""
        self._require(JobState.SUBMITTED, JobState.WAITING)
        self.state = JobState.WAITING

    def mark_placed(self, cluster: int) -> None:
        """Job sent toward a resource in ``cluster`` (counts transfers)."""
        if self.state not in (JobState.SUBMITTED, JobState.WAITING):
            raise ValueError(f"cannot place job in state {self.state}")
        if self.executed_cluster is not None and self.executed_cluster != cluster:
            self.transfers += 1
        elif self.executed_cluster is None and cluster != self.spec.submit_cluster:
            self.transfers += 1
        self.executed_cluster = cluster
        self.state = JobState.PLACED
        self.dispatch_epoch += 1

    def mark_running(self, now: float) -> None:
        """Resource began serving the job."""
        self._require(JobState.PLACED, JobState.RUNNING)
        self.start_service = now
        self.state = JobState.RUNNING

    def mark_completed(self, now: float) -> None:
        """Resource finished the job."""
        self._require(JobState.RUNNING, JobState.COMPLETED)
        self.completion_time = now
        self.state = JobState.COMPLETED

    def mark_failed(self) -> None:
        """The resource holding the job crashed; work in progress is lost."""
        if self.state not in (JobState.PLACED, JobState.RUNNING):
            raise ValueError(f"cannot fail job in state {self.state}")
        self.start_service = None
        self.state = JobState.FAILED

    def mark_requeued(self) -> None:
        """Scheduler re-dispatches the job after a crash (counts a retry)."""
        if self.state not in (JobState.FAILED, JobState.PLACED):
            raise ValueError(f"cannot requeue job in state {self.state}")
        self.retries += 1
        self.state = JobState.SUBMITTED

    def _require(self, expected: str, target: str) -> None:
        if self.state != expected:
            raise ValueError(
                f"job {self.job_id}: illegal transition {self.state} -> {target}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job(#{self.job_id} {self.spec.job_class} {self.state})"
