"""Status tables: the manager's (stale) view of the managee.

Schedulers never inspect resources directly — they act on the last
status update that reached them, which is the whole reason state
estimation appears in ``G(k)``.  :class:`StatusTable` stores, per
resource, the last known load and its timestamp, and supports the
**optimistic increment** every dispatching scheduler performs: when it
sends a job to a resource it bumps its own view immediately rather than
waiting a full update interval (otherwise every scheduler would dump all
arrivals onto the same momentarily-least-loaded resource).

Failure semantics: a resource the estimator declared dead is *aged out*
— :meth:`StatusTable.mark_dead` keeps the entry (the table still tracks
it) but excludes it from every placement view (``least_loaded``,
``average_load``, ``min_load``) until fresh news arrives.  Any newer
status update revives the entry automatically, so detection stays purely
message-driven.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Optional, Set, Tuple

__all__ = ["StatusTable"]


class StatusTable:
    """Last-known loads of a set of resources.

    Parameters
    ----------
    resource_ids:
        The resources this table tracks (a cluster for distributed
        schedulers, the whole pool for CENTRAL).
    """

    __slots__ = ("_load", "_stamp", "_dead", "_heap")

    def __init__(self, resource_ids: Iterable[int]) -> None:
        self._load: Dict[int, float] = {r: 0.0 for r in resource_ids}
        self._stamp: Dict[int, float] = {r: -math.inf for r in self._load}
        self._dead: Set[int] = set()
        # Lazy min-heap over (load, id): every mutation pushes a fresh
        # entry; stale/dead entries are discarded when they surface at
        # the top.  `least_loaded` is the per-decision hot path (every
        # placement calls it), and the lexicographic heap minimum is
        # exactly the old sorted-scan answer — smallest load, lowest id
        # on ties — at O(log n) per mutation instead of O(n log n) per
        # decision, which is what keeps decisions affordable when one
        # table tracks 1e5-scale pools.
        self._heap = [(0.0, r) for r in sorted(self._load)]

    def __contains__(self, resource_id: int) -> bool:
        return resource_id in self._load

    def __len__(self) -> int:
        return len(self._load)

    def record(self, resource_id: int, load: float, time: float) -> None:
        """Store an observed load for ``resource_id`` at ``time``.

        Out-of-order updates (older than the stored stamp) are ignored —
        the network can reorder messages sent over different paths.
        """
        if resource_id not in self._load:
            raise KeyError(f"resource {resource_id} not tracked by this table")
        if time >= self._stamp[resource_id]:
            self._load[resource_id] = load
            self._stamp[resource_id] = time
            # Fresh news proves liveness: a recovered resource rejoins
            # the placement view on its first post-repair report.
            self._dead.discard(resource_id)
            # Revivals must re-enter the heap even when the load is
            # unchanged: the dead entry may already have been discarded.
            heapq.heappush(self._heap, (load, resource_id))
            self._maybe_compact()

    def bump(self, resource_id: int, by: float = 1.0) -> None:
        """Optimistically adjust a tracked load (local dispatch bookkeeping)."""
        if resource_id not in self._load:
            raise KeyError(f"resource {resource_id} not tracked by this table")
        load = max(0.0, self._load[resource_id] + by)
        self._load[resource_id] = load
        heapq.heappush(self._heap, (load, resource_id))
        self._maybe_compact()

    def load_of(self, resource_id: int) -> float:
        """Last known load of one resource."""
        return self._load[resource_id]

    def mark_dead(self, resource_id: int) -> None:
        """Age the resource out of every placement view (entry is kept)."""
        if resource_id not in self._load:
            raise KeyError(f"resource {resource_id} not tracked by this table")
        self._dead.add(resource_id)

    def is_dead(self, resource_id: int) -> bool:
        """Whether the resource is currently aged out."""
        return resource_id in self._dead

    @property
    def alive_count(self) -> int:
        """Tracked resources not currently aged out."""
        return len(self._load) - len(self._dead)

    def _maybe_compact(self) -> None:
        """Rebuild the heap from live state once lazy entries pile up."""
        if len(self._heap) > max(64, 8 * len(self._load)):
            dead = self._dead
            self._heap = [
                (v, r) for r, v in self._load.items() if r not in dead
            ]
            heapq.heapify(self._heap)

    def least_loaded(self) -> Tuple[Optional[int], float]:
        """Live resource with the smallest known load (ties -> lowest id).

        Returns ``(None, inf)`` for an empty table or when every tracked
        resource is aged out.
        """
        heap = self._heap
        load = self._load
        dead = self._dead
        while heap:
            v, r = heap[0]
            if r in dead or load[r] != v:
                heapq.heappop(heap)  # stale lazy entry
                continue
            return r, v
        return None, math.inf

    def average_load(self) -> float:
        """Mean known load over live resources (``nan`` if none)."""
        n = len(self._load) - len(self._dead)
        if n == 0:
            return math.nan
        if not self._dead:
            return sum(self._load.values()) / n
        return (
            sum(v for r, v in self._load.items() if r not in self._dead) / n
        )

    def min_load(self) -> float:
        """Smallest known live load (``inf`` if none)."""
        if not self._dead:
            return min(self._load.values(), default=math.inf)
        return min(
            (v for r, v in self._load.items() if r not in self._dead),
            default=math.inf,
        )

    def staleness_of(self, resource_id: int, now: float) -> float:
        """Age of one entry at ``now`` (``nan`` if never updated).

        The per-decision twin of :meth:`mean_staleness`: the causal
        tracer records it on every dispatch, so a trace shows how stale
        the status row behind each placement actually was.
        """
        stamp = self._stamp[resource_id]
        if stamp == -math.inf:
            return math.nan
        return now - stamp

    def mean_staleness(self, now: float) -> float:
        """Mean age of the table's live entries at ``now``.

        How old, on average, the placement view is — the accuracy side
        of the monitoring overhead/accuracy tradeoff the probe layer
        samples.  Entries that never received an update (stamp
        ``-inf``) and aged-out dead entries are excluded; ``nan`` when
        nothing qualifies.
        """
        total = 0.0
        n = 0
        dead = self._dead
        for r, stamp in self._stamp.items():
            if stamp == -math.inf or r in dead:
                continue
            total += now - stamp
            n += 1
        return total / n if n else math.nan

    def loads(self) -> Dict[int, float]:
        """Copy of the full view (diagnostics/tests)."""
        return dict(self._load)
