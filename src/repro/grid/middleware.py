"""The Grid middleware queue used by the superscheduler RMSs.

For S-I, R-I, and Sy-I the paper models inter-scheduler communication
through a Grid middleware: "a simple queue with infinite capacity and
finite but small service time".  :class:`Middleware` implements exactly
that: a single FIFO message server; every relayed message occupies it
for ``costs.middleware_service`` time units before being forwarded to
its true recipient over the network.

Because the middleware is a *single shared* server, it is a potential
hot spot: superscheduler protocols that multiply control traffic queue
up behind it, adding latency to their own scheduling decisions — one of
the mechanisms behind Sy-I's poor large-scale behaviour in the paper's
Figures 2 and 4.
"""

from __future__ import annotations

from ..core.ledger import Category, CostLedger
from ..network.messages import Message, MessageKind
from ..sim.entity import Entity, MessageServer
from ..sim.kernel import Simulator
from .costs import CostModel

__all__ = ["Middleware"]


class Middleware(MessageServer):
    """Shared store-and-forward relay for superscheduler traffic.

    Parameters
    ----------
    sim, name, node:
        Standard entity wiring (placed at a well-connected router).
    ledger, costs:
        Cost accounting; relay busy time rolls into ``G`` under
        ``g.middleware``.
    """

    component = "middleware"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node: int,
        ledger: CostLedger,
        costs: CostModel,
    ) -> None:
        super().__init__(sim, name, node, ledger=ledger)
        self.costs = costs
        #: relayed message count (diagnostics)
        self.relayed = 0
        # wired by the builder
        self.network = None

    def service_time(self, message: Message) -> float:
        """Fixed, small relay service time."""
        return self.costs.middleware_service

    def cost_category(self, message: Message) -> str:
        """Middleware busy time is RMS overhead."""
        return Category.MIDDLEWARE

    def relay(self, inner: Message, sender: Entity, recipient: Entity) -> None:
        """Send ``inner`` from ``sender`` to ``recipient`` via this relay.

        The message first travels sender → middleware, waits for relay
        service, then travels middleware → recipient.
        """
        wrapper = Message(
            MessageKind.MIDDLEWARE_RELAY,
            payload={"inner": inner, "recipient": recipient},
            size=inner.size,
        )
        inner.sender = sender
        self.network.send_from(wrapper, sender, self)

    def handle(self, message: Message) -> None:
        """Forward the wrapped message to its true recipient."""
        if message.kind != MessageKind.MIDDLEWARE_RELAY:
            raise ValueError(f"middleware got unexpected {message.kind}")
        inner: Message = message.payload["inner"]
        recipient: Entity = message.payload["recipient"]
        self.relayed += 1
        self.network.send(inner, self.node, recipient)
