"""Status estimators: the RMS nodes that aggregate resource state.

Per the paper's Figure-4 caption: "Estimators are the RMS nodes which
receive the status updates from RP resources and distribute to the
scheduling decision makers."  An :class:`Estimator` is a finite-rate
message server that accepts ``STATUS_UPDATE`` messages from the
resources it covers and **distributes** the state to the schedulers
owning those resources' clusters.

Distribution is *batched*: an estimator accumulates the latest load per
resource and, every ``batch_window`` time units, emits one aggregated
``STATUS_FORWARD`` per covered cluster.  Batching is what real
monitoring planes do, and it is the load-bearing mechanism of the
paper's Case 3: with one estimator per cluster a scheduler pays for one
forward per window, but when the estimator plane is scaled up each
cluster's resources are spread over several estimators, so the
scheduler receives (and pays for) several forwards per window — and
trigger-driven RMSs (AUCTION's invitations, RESERVE's advertisements,
Sy-I's volunteering reactions) re-evaluate their push triggers on every
one of them.  That is how "scaling the RMS by the number of status
estimators" inflates ``G(k)`` superlinearly for the hybrid designs
(paper Figs. 4, 6, 7).

Setting ``batch_window = 0`` disables batching (immediate per-update
forwarding) — used by unit tests and the ablation bench.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

from ..core.ledger import Category, CostLedger
from ..network.messages import Message, MessageKind
from ..sim.entity import MessageServer
from ..sim.kernel import Simulator
from .costs import CostModel

__all__ = ["Estimator"]


class Estimator(MessageServer):
    """A status-estimation node of the RMS.

    Parameters
    ----------
    sim, name, node:
        Standard entity wiring.
    estimator_id:
        Dense id within the RMS's estimator set.
    ledger, costs:
        Cost accounting (estimator busy time rolls into ``G``).
    batch_window:
        Aggregation period; ``0`` forwards every update immediately.
    """

    component = "estimator"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node: int,
        estimator_id: int,
        ledger: CostLedger,
        costs: CostModel,
        batch_window: float = 0.0,
    ) -> None:
        super().__init__(sim, name, node, ledger=ledger)
        if batch_window < 0.0:
            raise ValueError("batch_window must be nonnegative")
        self.estimator_id = estimator_id
        self.costs = costs
        self.batch_window = batch_window
        #: scheduler id -> scheduler entity, wired by the builder
        self.schedulers = {}
        #: forwards emitted (diagnostics)
        self.forwarded = 0
        # pending aggregated state: cluster -> {resource_id: load}
        self._pending: Dict[int, Dict[int, float]] = {}
        self._flush_event = None
        # wired by the builder
        self.network = None

        # Liveness watch (armed only when the run's FaultPlan can crash
        # resources; see start_watch)
        self._watched: Dict[int, int] = {}
        self._last_seen: Dict[int, float] = {}
        self._last_incarnation: Dict[int, int] = {}
        self._notified: Set[int] = set()
        self._declared_at: Dict[int, float] = {}
        self._watch_timeout: Optional[float] = None
        self._watch_interval: Optional[float] = None
        #: dead declarations emitted (diagnostics)
        self.dead_reported = 0
        # recovery work is attributed to the cross-cutting "faults"
        # component (the entity segment still names this estimator), so
        # `repro attrib` shows recovery as its own G column
        self._src_heartbeat = ("faults", name, "heartbeat")

    def service_time(self, message: Message) -> float:
        """Processing cost of one status update."""
        return self.costs.estimator_proc

    def cost_category(self, message: Message) -> str:
        """Estimator busy time is RMS overhead."""
        return Category.ESTIMATOR

    def _deliver_watched(self, message: Message) -> None:
        """Liveness bookkeeping at *arrival*, then normal queueing.

        Installed as the instance's ``deliver`` by :meth:`start_watch`
        (zero overhead on the hot path of watch-free runs).  The watch
        reads receipt timestamps, not service completions: a saturated
        estimator (CENTRAL under churn) would otherwise see every
        healthy report hours late through its own backlog and
        mass-declare false deaths.  Real failure detectors timestamp at
        the transport layer for the same reason; the O(1) bookkeeping
        here is free — detection *work* is charged by the sweep.
        """
        if (
            self._watch_timeout is not None
            and getattr(message, "kind", None) == MessageKind.STATUS_UPDATE
        ):
            rid = message.payload["resource_id"]
            if rid in self._watched:
                # A report created before the death was declared is not
                # evidence of revival — it was in flight when the node
                # went down.  Ignoring it keeps a genuinely dead
                # resource declared instead of flapping
                # re-clear/re-declare/re-sweep on every late pre-crash
                # update.
                declared = self._declared_at.get(rid)
                sent = message.created_at
                if not (
                    declared is not None and sent is not None and sent <= declared
                ):
                    incarnation = message.payload.get("incarnation", 0)
                    previous = self._last_incarnation.get(rid)
                    if (
                        previous is not None
                        and incarnation > previous
                        and rid not in self._notified
                    ):
                        # The resource rebooted between two reports: its
                        # silence never exceeded the timeout, but
                        # everything it was running is gone.  Declare
                        # the death retroactively so the scheduler
                        # re-dispatches.
                        self._declare_dead(rid)
                    self._last_incarnation[rid] = incarnation
                    self._last_seen[rid] = self.sim.now
                    self._notified.discard(rid)
        super().deliver(message)

    def handle(self, message: Message) -> None:
        """Absorb the update; forward now (unbatched) or at the flush."""
        if message.kind != MessageKind.STATUS_UPDATE:
            raise ValueError(f"estimator {self.name} got unexpected {message.kind}")
        if self._watch_timeout is not None:
            rid = message.payload["resource_id"]
            if rid in self._watched:
                # Drop pre-declaration reports for state too — a stale
                # load snapshot must not revive the dead entry in the
                # scheduler's table and draw placements onto a dead node.
                declared = self._declared_at.get(rid)
                sent = message.created_at
                if declared is not None and sent is not None and sent <= declared:
                    return
        cluster_id = message.payload["cluster_id"]
        if cluster_id not in self.schedulers:
            return  # estimator covers no resources of that cluster
        if self.batch_window <= 0.0:
            self._forward(
                cluster_id,
                {message.payload["resource_id"]: message.payload["load"]},
            )
            return
        bucket = self._pending.setdefault(cluster_id, {})
        bucket[message.payload["resource_id"]] = message.payload["load"]
        if self._flush_event is None:
            self._flush_event = self.sim.schedule(self.batch_window, self._flush)

    def _flush(self) -> None:
        self._flush_event = None
        pending, self._pending = self._pending, {}
        for cluster_id, entries in pending.items():
            self._forward(cluster_id, entries)

    def _forward(self, cluster_id: int, entries: Dict[int, float]) -> None:
        # Takes ownership of `entries` — both call sites hand over a
        # dict they never touch again (handle() builds a fresh literal,
        # _flush() swaps the pending map out first), so the forward
        # message carries it without a defensive copy.  This is the
        # status plane's hottest allocation site: one forward per
        # covered cluster per batch window, usually to a co-located
        # scheduler.
        scheduler = self.schedulers.get(cluster_id)
        if scheduler is None:  # pragma: no cover - guarded in handle()
            return
        fwd = Message(
            MessageKind.STATUS_FORWARD,
            payload={"cluster_id": cluster_id, "entries": entries},
            size=max(1.0, float(len(entries))),
        )
        self.forwarded += 1
        if scheduler.node == self.node:
            # Co-located (base configuration): local handoff, no network.
            fwd.sender = self
            fwd.created_at = self.sim.now
            scheduler.deliver(fwd)
        else:
            self.network.send_from(fwd, self, scheduler)

    def heartbeat_gap(self) -> float:
        """Widest current heartbeat silence over watched resources.

        How long ago the quietest still-undeclared watched resource was
        last heard from — the live fault-detection-latency signal the
        probe layer samples.  ``nan`` when no watch is armed (fault-free
        runs) or every watched resource is already declared dead.
        """
        if self._watch_timeout is None or not self._watched:
            return math.nan
        now = self.sim.now
        gap = math.nan
        for rid, seen in self._last_seen.items():
            if rid in self._notified:
                continue
            g = now - seen
            if not (g <= gap):  # first value or larger
                gap = g
        return gap

    # ------------------------------------------------------------------
    # Liveness watch (failure detection)
    # ------------------------------------------------------------------
    def start_watch(
        self,
        resources: Dict[int, int],
        timeout: float,
        interval: float,
        phase: float = 0.0,
    ) -> None:
        """Watch ``resources`` (``resource_id -> cluster_id``) for
        silence exceeding ``timeout``.

        A periodic sweep (period ``interval``, offset ``phase``) checks
        when each watched resource was last heard from; one that stayed
        silent beyond ``timeout`` is declared dead exactly once — a
        reliable ``RESOURCE_DEAD`` goes to its cluster's scheduler — and
        any later update from it clears the declaration.  ``timeout``
        must exceed the resources' keepalive span, or healthy quiet
        resources get declared dead.

        Every sweep charges ``heartbeat_proc`` per watched resource to
        ``g.faults``: failure detection is RMS overhead the efficiency
        model must see.
        """
        if timeout <= 0.0 or interval <= 0.0:
            raise ValueError("watch timeout and interval must be positive")
        self._watched = dict(resources)
        # Baseline: wiring time counts as "heard from" so a resource is
        # never declared dead before its first report was even due.
        self._last_seen = {rid: self.sim.now for rid in self._watched}
        self._last_incarnation = {}
        self._notified = set()
        self._declared_at = {}
        self._watch_timeout = timeout
        self._watch_interval = interval
        # Shadow the class method on this instance only: watch-free
        # runs keep the base deliver() with no extra call layer.
        self.deliver = self._deliver_watched
        self.sim.schedule(phase % interval, self._watch_sweep)

    def _watch_sweep(self) -> None:
        if self._watch_timeout is None or not self._watched:
            return
        self.ledger.charge(
            Category.FAULTS,
            self.costs.heartbeat_proc * len(self._watched),
            self._src_heartbeat,
        )
        now = self.sim.now
        for rid in sorted(self._watched):
            if rid in self._notified:
                continue
            if now - self._last_seen[rid] > self._watch_timeout:
                self._declare_dead(rid)
        self.sim.schedule(self._watch_interval, self._watch_sweep)

    def _declare_dead(self, rid: int) -> None:
        """Declare ``rid`` dead once: reliable ``RESOURCE_DEAD`` to its
        cluster's scheduler.  Reached from the silence sweep and from
        incarnation jumps (reboot faster than the timeout)."""
        self._notified.add(rid)
        self._declared_at[rid] = self.sim.now
        self.dead_reported += 1
        scheduler = self.schedulers.get(self._watched[rid])
        if scheduler is not None and self.network is not None:
            self.network.send_from(
                Message(
                    MessageKind.RESOURCE_DEAD,
                    payload={
                        "resource_id": rid,
                        "cluster_id": self._watched[rid],
                    },
                ),
                self,
                scheduler,
            )
