"""Status estimators: the RMS nodes that aggregate resource state.

Per the paper's Figure-4 caption: "Estimators are the RMS nodes which
receive the status updates from RP resources and distribute to the
scheduling decision makers."  An :class:`Estimator` is a finite-rate
message server that accepts ``STATUS_UPDATE`` messages from the
resources it covers and **distributes** the state to the schedulers
owning those resources' clusters.

Distribution is *batched*: an estimator accumulates the latest load per
resource and, every ``batch_window`` time units, emits one aggregated
``STATUS_FORWARD`` per covered cluster.  Batching is what real
monitoring planes do, and it is the load-bearing mechanism of the
paper's Case 3: with one estimator per cluster a scheduler pays for one
forward per window, but when the estimator plane is scaled up each
cluster's resources are spread over several estimators, so the
scheduler receives (and pays for) several forwards per window — and
trigger-driven RMSs (AUCTION's invitations, RESERVE's advertisements,
Sy-I's volunteering reactions) re-evaluate their push triggers on every
one of them.  That is how "scaling the RMS by the number of status
estimators" inflates ``G(k)`` superlinearly for the hybrid designs
(paper Figs. 4, 6, 7).

Setting ``batch_window = 0`` disables batching (immediate per-update
forwarding) — used by unit tests and the ablation bench.
"""

from __future__ import annotations

from typing import Dict

from ..core.ledger import Category, CostLedger
from ..network.messages import Message, MessageKind
from ..sim.entity import MessageServer
from ..sim.kernel import Simulator
from .costs import CostModel

__all__ = ["Estimator"]


class Estimator(MessageServer):
    """A status-estimation node of the RMS.

    Parameters
    ----------
    sim, name, node:
        Standard entity wiring.
    estimator_id:
        Dense id within the RMS's estimator set.
    ledger, costs:
        Cost accounting (estimator busy time rolls into ``G``).
    batch_window:
        Aggregation period; ``0`` forwards every update immediately.
    """

    component = "estimator"

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node: int,
        estimator_id: int,
        ledger: CostLedger,
        costs: CostModel,
        batch_window: float = 0.0,
    ) -> None:
        super().__init__(sim, name, node, ledger=ledger)
        if batch_window < 0.0:
            raise ValueError("batch_window must be nonnegative")
        self.estimator_id = estimator_id
        self.costs = costs
        self.batch_window = batch_window
        #: scheduler id -> scheduler entity, wired by the builder
        self.schedulers = {}
        #: forwards emitted (diagnostics)
        self.forwarded = 0
        # pending aggregated state: cluster -> {resource_id: load}
        self._pending: Dict[int, Dict[int, float]] = {}
        self._flush_event = None
        # wired by the builder
        self.network = None

    def service_time(self, message: Message) -> float:
        """Processing cost of one status update."""
        return self.costs.estimator_proc

    def cost_category(self, message: Message) -> str:
        """Estimator busy time is RMS overhead."""
        return Category.ESTIMATOR

    def handle(self, message: Message) -> None:
        """Absorb the update; forward now (unbatched) or at the flush."""
        if message.kind != MessageKind.STATUS_UPDATE:
            raise ValueError(f"estimator {self.name} got unexpected {message.kind}")
        cluster_id = message.payload["cluster_id"]
        if cluster_id not in self.schedulers:
            return  # estimator covers no resources of that cluster
        if self.batch_window <= 0.0:
            self._forward(
                cluster_id,
                {message.payload["resource_id"]: message.payload["load"]},
            )
            return
        bucket = self._pending.setdefault(cluster_id, {})
        bucket[message.payload["resource_id"]] = message.payload["load"]
        if self._flush_event is None:
            self._flush_event = self.sim.schedule(self.batch_window, self._flush)

    def _flush(self) -> None:
        self._flush_event = None
        pending, self._pending = self._pending, {}
        for cluster_id, entries in pending.items():
            self._forward(cluster_id, entries)

    def _forward(self, cluster_id: int, entries: Dict[int, float]) -> None:
        # Takes ownership of `entries` — both call sites hand over a
        # dict they never touch again (handle() builds a fresh literal,
        # _flush() swaps the pending map out first), so the forward
        # message carries it without a defensive copy.  This is the
        # status plane's hottest allocation site: one forward per
        # covered cluster per batch window, usually to a co-located
        # scheduler.
        scheduler = self.schedulers.get(cluster_id)
        if scheduler is None:  # pragma: no cover - guarded in handle()
            return
        fwd = Message(
            MessageKind.STATUS_FORWARD,
            payload={"cluster_id": cluster_id, "entries": entries},
            size=max(1.0, float(len(entries))),
        )
        self.forwarded += 1
        if scheduler.node == self.node:
            # Co-located (base configuration): local handoff, no network.
            fwd.sender = self
            fwd.created_at = self.sim.now
            scheduler.deliver(fwd)
        else:
            self.network.send_from(fwd, self, scheduler)
