"""Resources: the managee's workers.

A :class:`Resource` is a homogeneous single-server job queue (the paper
fixes partition size at 1 and assumes homogeneous resources with finite
processing capacity).  Its responsibilities:

* serve dispatched jobs FIFO at ``service_rate`` (Case 2's scaling
  variable), charging per-job control overhead to ``H``;
* credit the service demand of *successful* completions to ``F``;
* notify the cluster's scheduler of completions;
* report its load to its status estimator — periodically, with the
  significance-based **suppression optimization** all periodic schemes
  share ("if loading conditions ... did not change significantly from
  the previous update, an update might be suppressed").

**Load metric.**  A resource's load is its number of jobs in system
(queue + in service).  Cluster-level "average load" is the mean over
member resources, so Table 1's threshold ``T_l = 0.5`` reads naturally:
a cluster is lightly loaded when fewer than half its resources are
occupied, and a single resource is "idle" at load 0 / "above threshold"
at load >= 1.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..core.ledger import Category, CostLedger
from ..network.messages import Message, MessageKind
from ..sim.entity import Entity
from ..sim.kernel import Simulator
from ..sim.monitor import TimeWeighted
from .costs import CostModel
from .jobs import Job, JobState

__all__ = ["Resource"]


class Resource(Entity):
    """A single-server job execution resource.

    Parameters
    ----------
    sim, name, node:
        Standard entity wiring.
    resource_id:
        Dense id within the resource pool.
    cluster_id:
        Owning cluster (scheduler id).
    service_rate:
        Demand units executed per time unit (Case 2 scales this).
    ledger:
        The run's cost ledger.
    costs:
        Processing-cost model (for ``H`` charges).
    """

    #: causal tracer (None = tracing off; every hook site is one
    #: ``is None`` test, same discipline as ``completion_listener``)
    tracer = None

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node: int,
        resource_id: int,
        cluster_id: int,
        service_rate: float,
        ledger: CostLedger,
        costs: CostModel,
        n_processors: int = 1,
        speedup_exponent: float = 0.8,
    ) -> None:
        super().__init__(sim, name, node)
        if service_rate <= 0.0:
            raise ValueError("service_rate must be positive")
        if n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        if not (0.0 < speedup_exponent <= 1.0):
            raise ValueError("speedup_exponent must be in (0, 1]")
        self.resource_id = resource_id
        self.cluster_id = cluster_id
        self.service_rate = service_rate
        self.ledger = ledger
        self.costs = costs
        #: processors available for parallel (moldable) jobs.  The paper
        #: fixes partition size at 1, making every resource a single
        #: server; >1 enables the Cirne-Berman moldable extension.
        self.n_processors = n_processors
        #: moldable speedup model: a p-processor partition runs
        #: ``p**speedup_exponent`` times faster (sublinear, Amdahl-ish).
        self.speedup_exponent = speedup_exponent

        # Attribution source tags, built once (the charge sites below
        # run per job): job control/staging are tied to the dispatch and
        # transfer messages; useful work is the execution itself.
        self._src_job_control = ("resource", name, MessageKind.JOB_DISPATCH)
        self._src_data_mgmt = ("resource", name, MessageKind.JOB_TRANSFER)
        self._src_useful = ("resource", name, "execution")

        #: (job, dispatch epoch at enqueue) — the epoch lets the head
        #: pop discard dispatches that went stale while queued (the job
        #: was re-dispatched elsewhere after this resource crashed)
        self._queue: Deque[Tuple[Job, int]] = deque()
        self._running: set = set()
        self._finish_events: Dict[Job, object] = {}
        self._busy_procs = 0
        self.online = True
        #: crashed (fault injection); distinct from a mere `online`
        #: toggle — a failed resource loses its work and goes silent
        self.failed = False
        self._failed_interval: Optional[float] = None
        #: boot epoch, bumped on every repair and carried in status
        #: updates — lets the estimator detect a crash-and-reboot that
        #: completed inside the heartbeat-timeout window (the silence
        #: never exceeded the timeout, but the jobs are gone anyway)
        self.incarnation = 0
        #: lifetime counters
        self.jobs_received = 0
        self.jobs_completed = 0
        self.jobs_successful = 0
        #: jobs lost to crashes at this resource
        self.jobs_killed = 0
        #: dispatches discarded because the job had moved on (stale epoch)
        self.stale_dispatches = 0
        #: time-weighted utilization (1 while serving)
        self.util_stat = TimeWeighted(f"{name}.util", time=sim.now)

        # Wiring done by the builder after construction:
        #: the network used for completion notifications / status updates
        self.network = None
        #: the scheduler owning this resource's cluster
        self.scheduler = None
        #: the estimator receiving this resource's status updates
        self.estimator = None
        #: fluid traffic mode: the FluidStatusPlane absorbing load
        #: transitions in place of discrete reporting (None = discrete)
        self.fluid_sink = None
        #: optional synchronous hook invoked on every job completion
        #: (dependency coordination, test instrumentation)
        self.completion_listener = None

        # Status reporting state (event-driven; see start_reporting)
        self._report_interval: Optional[float] = None
        self._last_reported_load: Optional[int] = None
        self._last_sent_time = -float("inf")
        self._send_event = None
        self._keepalive_event = None
        self._max_silence: Optional[int] = 3

    # ------------------------------------------------------------------
    # Load metric
    # ------------------------------------------------------------------
    @property
    def load(self) -> int:
        """Jobs in system: queued plus in service."""
        return len(self._queue) + len(self._running)

    @property
    def idle(self) -> bool:
        """Whether the resource has no work at all."""
        return self.load == 0

    def running_jobs(self):
        """Jobs currently in service, in deterministic (id) order.

        Probe tap: iteration order must not depend on set layout, or a
        sampling pass would fold hash-seed noise into its gauges.
        """
        return sorted(self._running, key=lambda j: j.job_id)

    @property
    def free_processors(self) -> int:
        """Processors not currently assigned to a running partition."""
        return self.n_processors - self._busy_procs

    # ------------------------------------------------------------------
    # Job service
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        """Accept a ``JOB_DISPATCH``; anything else is a protocol error."""
        if message.kind != MessageKind.JOB_DISPATCH:
            raise ValueError(f"resource {self.name} got unexpected {message.kind}")
        self.accept_job(message.payload["job"], message.payload.get("epoch"))

    def accept_job(self, job: Job, epoch: Optional[int] = None) -> None:
        """Enqueue ``job`` for execution (entry point for dispatches).

        ``epoch`` is the job's dispatch epoch as stamped by the sender;
        ``None`` (direct calls, legacy payloads) means "current".  A
        dispatch whose epoch no longer matches the job's is stale — the
        scheduler re-dispatched the job elsewhere after this resource
        crashed — and is discarded.
        """
        if epoch is None:
            epoch = job.dispatch_epoch
        if self.failed:
            # The node is down: the dispatch is lost with everything on
            # it.  The scheduler recovers via the heartbeat-timeout path.
            self.jobs_killed += 1
            if epoch == job.dispatch_epoch and job.state == JobState.PLACED:
                job.mark_failed()
                if self.tracer is not None:
                    self.tracer.record(job, "failed", entity=self.name)
            return
        self.jobs_received += 1
        # Per-job control overhead at the RP (paper: H(k); kept small).
        self.ledger.charge(Category.JOB_CONTROL, self.costs.job_control, self._src_job_control)
        if epoch != job.dispatch_epoch:
            self.stale_dispatches += 1
            return
        if job.transfers > 0:
            # Transferred jobs incur data staging at the receiving side.
            self.ledger.charge(Category.DATA_MGMT, self.costs.data_mgmt, self._src_data_mgmt)
        self._queue.append((job, epoch))
        if self.tracer is not None:
            self.tracer.record(job, "resource_accept", entity=self.name)
        self._maybe_start()
        self._load_changed()

    def _partition_of(self, job: Job) -> int:
        """Processors the job's partition occupies here (clamped)."""
        return min(max(1, job.spec.partition_size), self.n_processors)

    def _maybe_start(self) -> None:
        # FIFO with head-of-line blocking: the queue head starts as soon
        # as its partition fits (the paper's single-processor case
        # degenerates to the classic single-server queue).
        while self.online and self._queue:
            head, epoch = self._queue[0]
            if epoch != head.dispatch_epoch:
                # Went stale while queued (crash here + re-dispatch
                # elsewhere); drop without starting.
                self._queue.popleft()
                self.stale_dispatches += 1
                continue
            p = self._partition_of(head)
            if p > self.free_processors:
                return
            self._queue.popleft()
            self._running.add(head)
            self._busy_procs += p
            head.mark_running(self.sim.now)
            if self.tracer is not None:
                self.tracer.record(head, "service_begin", entity=self.name)
            self.util_stat.update(self.sim.now, self._busy_procs / self.n_processors)
            speedup = p ** self.speedup_exponent
            service = head.spec.execution_time / (self.service_rate * speedup)
            self._finish_events[head] = self.sim.schedule(service, self._finish, head)

    def _finish(self, job: Job) -> None:
        assert job in self._running
        self._finish_events.pop(job, None)
        self._running.discard(job)
        self._busy_procs -= self._partition_of(job)
        self.util_stat.update(self.sim.now, self._busy_procs / self.n_processors)
        job.mark_completed(self.sim.now)
        self.jobs_completed += 1
        if job.successful:
            self.jobs_successful += 1
            # Useful work = the service demand delivered to the client.
            self.ledger.charge(Category.USEFUL, job.spec.execution_time, self._src_useful)
        if self.network is not None and self.scheduler is not None:
            message = Message(MessageKind.JOB_COMPLETE, payload={"job": job})
            if self.tracer is not None:
                self.tracer.complete(job, self, message)
            self.network.send_from(message, self, self.scheduler)
        if self.completion_listener is not None:
            self.completion_listener(job)
        self._maybe_start()
        self._load_changed()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def set_offline(self) -> None:
        """Stop starting new jobs (the one in service, if any, finishes)."""
        self.online = False

    def set_online(self) -> None:
        """Resume service, immediately starting queued work."""
        self.online = True
        self._maybe_start()

    def fail(self) -> int:
        """Crash the resource: every job on it is lost and it goes silent.

        Running jobs are killed mid-service (their completion events are
        cancelled, their partial work never reaches ``F``), queued jobs
        are dropped, and status reporting stops — the estimator's
        heartbeat timeout is the only way the RMS learns about the
        crash, exactly as with a real silent node failure.

        Returns the number of jobs killed.
        """
        if self.failed:
            return 0
        self.failed = True
        self.online = False
        killed = 0
        for job in list(self._running):
            ev = self._finish_events.pop(job, None)
            if ev is not None:
                self.sim.cancel(ev)
            job.mark_failed()
            if self.tracer is not None:
                self.tracer.record(job, "failed", entity=self.name)
            killed += 1
        self._running.clear()
        self._busy_procs = 0
        self.util_stat.update(self.sim.now, 0.0)
        for job, epoch in self._queue:
            if epoch == job.dispatch_epoch and job.state == JobState.PLACED:
                job.mark_failed()
                if self.tracer is not None:
                    self.tracer.record(job, "failed", entity=self.name)
                killed += 1
        self._queue.clear()
        self.jobs_killed += killed
        self._failed_interval = self._report_interval
        self.stop_reporting()
        if self.fluid_sink is not None:
            self.fluid_sink.on_fail(self)
        return killed

    def repair(self) -> None:
        """Recover from a crash: come back empty and announce liveness.

        The first post-repair status report is unconditional (the last
        reported load is forgotten), which is what revives the entry in
        every :class:`~repro.grid.status.StatusTable` that aged it out.
        """
        if not self.failed:
            return
        self.failed = False
        self.online = True
        self.incarnation += 1
        if self.fluid_sink is not None:
            self.fluid_sink.on_repair(self)
        if self._failed_interval is not None:
            self._last_reported_load = None
            self.start_reporting(
                self._failed_interval, phase=0.0, max_silence=self._max_silence
            )
            self._failed_interval = None
        self._maybe_start()

    # ------------------------------------------------------------------
    # Status reporting (periodic + suppression)
    # ------------------------------------------------------------------
    def start_reporting(
        self, interval: float, phase: float = 0.0, max_silence: Optional[int] = 3
    ) -> None:
        """Begin status reporting with period ``interval`` (tau).

        Semantics match the paper's periodic-update-with-suppression
        model: the resource reports its load at most once per
        ``interval``, *suppressing* reports while the load is unchanged,
        plus a keepalive after ``max_silence`` silent intervals (standard
        soft-state refresh — without it a quiet resource would never
        confirm its state and the manager could not distinguish "idle"
        from "unreachable").  ``max_silence=None`` disables keepalives.

        The implementation is event-driven rather than tick-driven —
        sends are triggered by load changes (rate-limited to one per
        interval) and by the keepalive timer — which produces the same
        update stream without a per-tick event for every resource (the
        dominant event source in a 1000-node run otherwise).

        ``phase`` staggers the initial report so a thousand resources do
        not all update at the same instant.
        """
        if interval <= 0.0:
            raise ValueError("report interval must be positive")
        if max_silence is not None and max_silence < 1:
            raise ValueError("max_silence must be >= 1 (or None)")
        self._report_interval = interval
        self._max_silence = max_silence
        self._send_event = self.sim.schedule(phase % interval, self._send_report)

    def stop_reporting(self) -> None:
        """Cancel status reporting (used by on-demand-only protocols)."""
        for ev_attr in ("_send_event", "_keepalive_event"):
            ev = getattr(self, ev_attr)
            if ev is not None:
                self.sim.cancel(ev)
                setattr(self, ev_attr, None)
        self._report_interval = None

    def _load_changed(self) -> None:
        """Hook invoked on every load transition: arrange a (rate
        limited) report if one is not already pending."""
        if self.fluid_sink is not None:
            # Fluid traffic mode: the plane models the report stream as
            # rates — O(1) bookkeeping here, no kernel event.
            self.fluid_sink.on_load_change(self)
            return
        if self._report_interval is None or self._send_event is not None:
            return
        due = max(0.0, self._last_sent_time + self._report_interval - self.sim.now)
        self._send_event = self.sim.schedule(due, self._send_report)

    def _send_report(self, force: bool = False) -> None:
        self._send_event = None
        if self._report_interval is None:
            return
        load = self.load
        changed = self._last_reported_load is None or load != self._last_reported_load
        if (changed or force) and self.network is not None and self.estimator is not None:
            self._last_reported_load = load
            self._last_sent_time = self.sim.now
            self.network.send_from(
                Message(
                    MessageKind.STATUS_UPDATE,
                    payload={
                        "resource_id": self.resource_id,
                        "cluster_id": self.cluster_id,
                        "load": load,
                        "incarnation": self.incarnation,
                    },
                ),
                self,
                self.estimator,
            )
        elif self._last_reported_load is None:
            # No transport wired (unit tests); still mark the baseline.
            self._last_reported_load = load
            self._last_sent_time = self.sim.now
        self._arm_keepalive()

    def _arm_keepalive(self) -> None:
        if self._keepalive_event is not None:
            self.sim.cancel(self._keepalive_event)
            self._keepalive_event = None
        if self._max_silence is None or self._report_interval is None:
            return
        span = self._max_silence * self._report_interval
        self._keepalive_event = self.sim.schedule(span, self._keepalive_fire)

    def _keepalive_fire(self) -> None:
        self._keepalive_event = None
        if self._report_interval is None:
            return
        span = self._max_silence * self._report_interval
        idle = self.sim.now - self._last_sent_time
        if idle >= span - 1e-9:
            if self._send_event is not None:
                self.sim.cancel(self._send_event)
                self._send_event = None
            self._send_report(force=True)
        else:
            self._keepalive_event = self.sim.schedule(
                span - idle, self._keepalive_fire
            )
