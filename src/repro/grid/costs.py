"""Processing-cost model for RMS and RP activities.

Every message an RMS node handles occupies it for a finite time; those
times are the raw material of the overhead function ``G(k)``.  The paper
never tabulates its cost constants, so ours are calibrated (see
EXPERIMENTS.md) with two anchors:

1. at the base configuration the efficiency ``E(k0)`` must be able to
   land in the paper's band ``[0.38, 0.42]`` for reasonable enabler
   settings — i.e. state estimation and decision making are *expensive*
   relative to useful work, as in the paper;
2. relative magnitudes follow the mechanics each protocol description
   implies: a scheduling decision scans a status table (cost grows with
   the table), update processing is cheap per message but high volume,
   and middleware relays are "finite but small".

All values are in simulated time units.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Per-activity processing costs (time units).

    Attributes
    ----------
    decision_base:
        Fixed cost of one scheduling decision.
    scan_per_entry:
        Additional decision cost per status-table entry scanned (this is
        what makes CENTRAL's decisions grow with the resource pool).
    update_proc:
        Scheduler cost to receive + process one status update.
    estimator_proc:
        Estimator cost to receive one resource update (plus the same
        again per forward it emits).
    poll_proc:
        Cost to process one poll request or poll reply (pull protocols).
    advert_proc:
        Cost to process one reservation/volunteer message (push
        protocols).
    auction_proc:
        Cost to process one auction invitation/bid/award.
    completion_proc:
        Cost to process a job-completion notification.
    transfer_proc:
        Cost to admit a job transferred from a remote cluster.
    middleware_service:
        Grid middleware per-message service time ("finite but small").
    job_control:
        RP-side per-job dispatch/teardown overhead (rolls into H).
    data_mgmt:
        RP-side per-transfer data-staging overhead (rolls into H).
    heartbeat_proc:
        Estimator cost per watched resource per liveness sweep (rolls
        into ``g.faults``; zero when fault detection is off).
    fault_proc:
        Scheduler cost to process one dead-resource notification.
    redispatch_proc:
        Scheduler cost to re-dispatch one job lost to a crash.
    """

    decision_base: float = 1.0
    scan_per_entry: float = 0.6
    update_proc: float = 4.0
    estimator_proc: float = 4.0
    poll_proc: float = 2.0
    advert_proc: float = 1.5
    auction_proc: float = 2.0
    completion_proc: float = 0.5
    transfer_proc: float = 1.0
    middleware_service: float = 1.0
    job_control: float = 0.5
    data_mgmt: float = 0.3
    heartbeat_proc: float = 0.05
    fault_proc: float = 2.0
    redispatch_proc: float = 1.0

    def __post_init__(self) -> None:
        for field_name in self.__dataclass_fields__:
            if getattr(self, field_name) < 0.0:
                raise ValueError(f"{field_name} must be nonnegative")
