"""Scheduler base class: shared machinery of all seven RMS designs.

A scheduler is a **finite-rate message server** (see
:mod:`repro.sim.entity`): every message it receives — a job submission,
a status update, a poll, a bid — occupies it for a processing time
drawn from the :class:`~repro.grid.costs.CostModel`, and that busy time
is exactly the paper's ``G(k)`` ("overall time spent by the schedulers
for scheduling, receiving, and processing updates").

Information model
-----------------
A scheduler's knowledge of resource loads comes *only* from status
updates (forwarded by estimators) plus the optimistic ``+1`` bump it
applies to its own dispatches.  Completion notifications are processed
(and paid for) but do **not** refresh the table: in the paper's model
the status-update plane is the information channel, and keeping it
load-bearing is what gives the update-interval enabler its bite — a
scheduler that stops paying for updates drifts toward blind round-robin
placement and loses jobs to their benefit bounds.

Protocol hooks
--------------
Subclasses in :mod:`repro.rms` override the ``on_*`` handlers that their
protocol uses; unhandled protocol messages raise, so a mis-wired
experiment fails loudly rather than silently dropping messages.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..core.ledger import Category, CostLedger
from ..network.messages import Message, MessageKind
from ..sim.entity import MessageServer
from ..sim.kernel import Simulator
from .costs import CostModel
from .jobs import Job, JobState
from .resource import Resource
from .status import StatusTable

__all__ = ["SchedulerBase"]


class SchedulerBase(MessageServer):
    """Common scheduler machinery; one instance per cluster.

    Parameters
    ----------
    sim, name, node:
        Standard entity wiring.
    scheduler_id:
        Cluster id this scheduler coordinates.
    ledger, costs:
        Cost accounting.
    """

    #: whether inter-scheduler traffic is relayed through the Grid
    #: middleware (True for the superscheduler RMSs: S-I, R-I, Sy-I)
    use_middleware: bool = False

    #: component kind in attribution source tags
    component = "scheduler"

    #: causal-tracing recorder; stays the class-level ``None`` unless a
    #: run's TracePlan is enabled, so every hook below is one attribute
    #: test on the hot path (same discipline as the ledger observer)
    tracer = None

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node: int,
        scheduler_id: int,
        ledger: CostLedger,
        costs: CostModel,
    ) -> None:
        super().__init__(sim, name, node, ledger=ledger)
        self.scheduler_id = scheduler_id
        self.costs = costs

        # Wired by the builder ------------------------------------------------
        #: the message transport
        self.network = None
        #: resource_id -> Resource for this scheduler's cluster
        self.resources: Dict[int, Resource] = {}
        #: stale view of (at least) the local cluster's loads
        self.table: Optional[StatusTable] = None
        #: neighborhood set: nearest peer schedulers, closest first
        self.peers: List["SchedulerBase"] = []
        #: randomness for peer selection and protocol jitter
        self.rng: Optional[np.random.Generator] = None
        #: shared Grid middleware (superscheduler RMSs only)
        self.middleware = None
        #: number of peers contacted per scheduling action (Table 5's L_p)
        self.l_p: int = 2
        #: threshold load T_l (Table 1: 0.5)
        self.t_l: float = 0.5
        #: how long a parked job may wait before forced local dispatch
        self.wait_timeout: float = 300.0
        #: capped exponential backoff for crash re-dispatch (overridden
        #: from the run's FaultPlan by the builder)
        self.redispatch_backoff: float = 20.0
        self.redispatch_cap: float = 320.0

        # Statistics ----------------------------------------------------------
        self.jobs_submitted = 0
        self.jobs_dispatched_local = 0
        self.jobs_sent_remote = 0
        self.jobs_received_remote = 0
        self._wait_queue: Deque[Job] = deque()

        # Failure recovery ----------------------------------------------------
        #: job_id -> (job, resource_id) for dispatches not yet confirmed
        #: complete; the re-dispatch set when a resource dies
        self._inflight: Dict[int, Tuple[Job, int]] = {}
        self.dead_notices = 0
        self.redispatches = 0
        # recovery work is attributed to the cross-cutting "faults"
        # component (the entity segment still names this scheduler), so
        # `repro attrib` shows recovery as its own G column; the
        # pre-seeded cache entry makes RESOURCE_DEAD service time land
        # there too (cost_source consults the cache first)
        self._src_redispatch = ("faults", name, "redispatch")
        self._source_cache[MessageKind.RESOURCE_DEAD] = (
            "faults",
            name,
            str(MessageKind.RESOURCE_DEAD),
        )

    # ------------------------------------------------------------------
    # Message-server costing
    # ------------------------------------------------------------------
    def decision_cost(self) -> float:
        """Cost of one placement decision: base + status-table scan.

        The scan term is what separates CENTRAL (table = whole pool)
        from the distributed designs (table = one cluster).
        """
        n = len(self.table) if self.table is not None else 0
        return self.costs.decision_base + self.costs.scan_per_entry * n

    #: message kind -> (cost attribute, ledger category); decision-type
    #: kinds are handled in service_time() because their cost is dynamic
    _FLAT_COSTS = {
        MessageKind.STATUS_FORWARD: ("update_proc", Category.UPDATE_RX),
        MessageKind.STATUS_UPDATE: ("update_proc", Category.UPDATE_RX),
        MessageKind.POLL_REQUEST: ("poll_proc", Category.POLL),
        MessageKind.POLL_REPLY: ("poll_proc", Category.POLL),
        MessageKind.RESERVE_ADVERT: ("advert_proc", Category.ADVERT),
        MessageKind.RESERVE_PROBE: ("advert_proc", Category.ADVERT),
        MessageKind.RESERVE_REPLY: ("advert_proc", Category.ADVERT),
        MessageKind.RESERVE_CANCEL: ("advert_proc", Category.ADVERT),
        MessageKind.VOLUNTEER: ("advert_proc", Category.ADVERT),
        MessageKind.DEMAND: ("advert_proc", Category.ADVERT),
        MessageKind.DEMAND_REPLY: ("advert_proc", Category.ADVERT),
        MessageKind.AUCTION_INVITE: ("auction_proc", Category.AUCTION),
        MessageKind.AUCTION_BID: ("auction_proc", Category.AUCTION),
        MessageKind.AUCTION_AWARD: ("auction_proc", Category.AUCTION),
        MessageKind.JOB_COMPLETE: ("completion_proc", Category.COMPLETION),
        MessageKind.JOB_TRANSFER: ("transfer_proc", Category.SCHEDULE),
        MessageKind.RESOURCE_DEAD: ("fault_proc", Category.FAULTS),
    }

    def service_time(self, message: Message) -> float:
        """Processing time this message occupies the scheduler for."""
        kind = message.kind
        if kind == MessageKind.JOB_SUBMIT:
            return self.decision_cost()
        entry = self._FLAT_COSTS.get(kind)
        if entry is None:
            raise ValueError(f"{self.name}: no cost model for {kind}")
        return getattr(self.costs, entry[0])

    def cost_category(self, message: Message) -> str:
        """Ledger category of this message's processing time."""
        if message.kind == MessageKind.JOB_SUBMIT:
            return Category.SCHEDULE
        return self._FLAT_COSTS[message.kind][1]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        """Route a fully-processed message to its protocol handler."""
        kind = message.kind
        if kind == MessageKind.JOB_SUBMIT:
            job: Job = message.payload["job"]
            self.jobs_submitted += 1
            self.on_job_submit(job)
        elif kind == MessageKind.JOB_TRANSFER:
            job = message.payload["job"]
            self.jobs_received_remote += 1
            self.on_job_transfer(job)
        elif kind in (MessageKind.STATUS_FORWARD, MessageKind.STATUS_UPDATE):
            p = message.payload
            if self.table is not None:
                # Batched forwards carry an {resource_id: load} dict;
                # unbatched/raw updates carry a single pair.
                entries = p.get("entries")
                if entries is None:
                    entries = {p["resource_id"]: p["load"]}
                for rid, load in entries.items():
                    if rid in self.table:
                        self.table.record(rid, load, self.sim.now)
            self.after_status_update(p)
        elif kind == MessageKind.JOB_COMPLETE:
            job = message.payload["job"]
            self._inflight.pop(job.job_id, None)
            self.after_completion(job)
        elif kind == MessageKind.RESOURCE_DEAD:
            self.on_resource_dead(message)
        elif kind == MessageKind.POLL_REQUEST:
            self.on_poll_request(message)
        elif kind == MessageKind.POLL_REPLY:
            self.on_poll_reply(message)
        elif kind == MessageKind.RESERVE_ADVERT:
            self.on_reserve_advert(message)
        elif kind == MessageKind.RESERVE_PROBE:
            self.on_reserve_probe(message)
        elif kind == MessageKind.RESERVE_REPLY:
            self.on_reserve_reply(message)
        elif kind == MessageKind.RESERVE_CANCEL:
            self.on_reserve_cancel(message)
        elif kind == MessageKind.AUCTION_INVITE:
            self.on_auction_invite(message)
        elif kind == MessageKind.AUCTION_BID:
            self.on_auction_bid(message)
        elif kind == MessageKind.AUCTION_AWARD:
            self.on_auction_award(message)
        elif kind == MessageKind.VOLUNTEER:
            self.on_volunteer(message)
        elif kind == MessageKind.DEMAND:
            self.on_demand(message)
        elif kind == MessageKind.DEMAND_REPLY:
            self.on_demand_reply(message)
        else:  # pragma: no cover - guarded by service_time already
            raise ValueError(f"{self.name}: unhandled message {kind}")

    # ------------------------------------------------------------------
    # Fluid traffic mode (modeled status forwards)
    # ------------------------------------------------------------------
    def _fluid_forward_source(self) -> Tuple[str, str, str]:
        source = self._source_cache.get(MessageKind.STATUS_FORWARD)
        if source is None:
            source = (self.component, self.name, str(MessageKind.STATUS_FORWARD))
            self._source_cache[MessageKind.STATUS_FORWARD] = source
        return source

    def fluid_status(self, cluster_id: int, entries: Dict[int, float]) -> None:
        """Apply one modeled ``STATUS_FORWARD`` (fluid traffic mode).

        Charges the same ``update_proc`` / ``UPDATE_RX`` cell a
        discrete forward's service would, then runs the identical table
        refresh and push-trigger hook — synchronously, without a kernel
        event or queueing.  The deliberate difference from discrete
        mode is the absence of queueing delay: a saturated scheduler's
        forwards no longer back up behind decisions (part of the
        documented fluid tolerance).
        """
        st = self.costs.update_proc
        self.busy_time += st
        if self.ledger is not None and st > 0.0:
            self.ledger.charge(Category.UPDATE_RX, st, self._fluid_forward_source())
        if self.table is not None:
            for rid, load in entries.items():
                if rid in self.table:
                    self.table.record(rid, load, self.sim.now)
        self.after_status_update({"cluster_id": cluster_id, "entries": entries})

    # ------------------------------------------------------------------
    # Primitives shared by all protocols
    # ------------------------------------------------------------------
    def schedule_local(self, job: Job) -> None:
        """Place ``job`` on the least-loaded local resource (per the
        table's possibly-stale view) and dispatch it."""
        rid, _ = self.table.least_loaded()
        if rid is None:
            # Every local resource is currently declared dead (fault
            # injection): hold the job and retry once something
            # recovers — mirrors the `_redispatch` whole-cluster hold.
            self.sim.schedule(self.redispatch_cap, self.schedule_local, job)
            return
        self.table.bump(rid, +1.0)
        resource = self.resources[rid]
        job.mark_placed(self.scheduler_id)
        self.jobs_dispatched_local += 1
        self._inflight[job.job_id] = (job, rid)
        # The epoch stamp lets the resource reject this dispatch if the
        # job is re-dispatched elsewhere while this message is in flight.
        message = Message(
            MessageKind.JOB_DISPATCH,
            payload={"job": job, "epoch": job.dispatch_epoch},
        )
        if self.tracer is not None:
            self.tracer.dispatch_send(job, self, rid, message)
        self.network.send_from(message, self, resource)

    def transfer_job(self, job: Job, peer: "SchedulerBase") -> None:
        """Hand ``job`` to ``peer`` for execution in its cluster."""
        self.jobs_sent_remote += 1
        message = Message(MessageKind.JOB_TRANSFER, payload={"job": job})
        if self.tracer is not None:
            self.tracer.transfer_send(job, self, message)
        self.send_to_peer(message, peer)

    def send_to_peer(self, message: Message, peer: "SchedulerBase") -> None:
        """Send a protocol message to another scheduler, via the Grid
        middleware when this RMS uses one."""
        if self.use_middleware and self.middleware is not None:
            self.middleware.relay(message, self, peer)
        else:
            self.network.send_from(message, self, peer)

    def pick_peers(self, count: int) -> List["SchedulerBase"]:
        """Randomly select up to ``count`` distinct schedulers from the
        neighborhood set (Table 2–4's "neighborhood set size" bounds the
        candidates; Table 5's ``L_p`` is the count)."""
        if not self.peers or count <= 0:
            return []
        count = min(count, len(self.peers))
        idx = self.rng.choice(len(self.peers), size=count, replace=False)
        return [self.peers[i] for i in idx]

    def local_average_load(self) -> float:
        """Average known load of the local cluster."""
        return self.table.average_load()

    # -- wait-queue management (R-I / Sy-I park jobs for volunteers) ----
    def park_job(self, job: Job) -> None:
        """Hold ``job`` awaiting a remote placement opportunity; a
        timeout forces local dispatch so no job waits forever."""
        job.mark_waiting()
        if self.tracer is not None:
            self.tracer.record(job, "park", entity=self.name)
        self._wait_queue.append(job)
        self.sim.schedule(self.wait_timeout, self._wait_deadline, job)

    def pop_parked(self) -> Optional[Job]:
        """Remove and return the oldest parked job, if any."""
        while self._wait_queue:
            job = self._wait_queue.popleft()
            if job.state == JobState.WAITING:
                return job
        return None

    def peek_parked(self) -> Optional[Job]:
        """The oldest parked job without removing it, if any."""
        while self._wait_queue:
            if self._wait_queue[0].state == JobState.WAITING:
                return self._wait_queue[0]
            self._wait_queue.popleft()
        return None

    @property
    def parked_count(self) -> int:
        """Number of jobs currently parked (lazily pruned)."""
        return sum(1 for j in self._wait_queue if j.state == JobState.WAITING)

    @property
    def inflight_count(self) -> int:
        """Dispatches awaiting completion confirmation (probe tap)."""
        return len(self._inflight)

    def _wait_deadline(self, job: Job) -> None:
        if job.state == JobState.WAITING:
            self.schedule_local(job)

    # ------------------------------------------------------------------
    # Failure recovery
    # ------------------------------------------------------------------
    def on_resource_dead(self, message: Message) -> None:
        """The estimator declared one of this cluster's resources dead.

        The resource is aged out of the status table (placements stop
        targeting it until it reports again) and every job last
        dispatched to it is re-dispatched with capped exponential
        backoff.  Protocols with externally advertised capacity get the
        :meth:`on_cluster_degraded` hook to retract it.
        """
        rid = message.payload["resource_id"]
        self.dead_notices += 1
        if self.table is not None and rid in self.table:
            self.table.mark_dead(rid)
        victims = [
            job for jid, (job, r) in list(self._inflight.items()) if r == rid
        ]
        for job in victims:
            del self._inflight[job.job_id]
            self._schedule_redispatch(job, rid)
        self.on_cluster_degraded(rid)

    def _schedule_redispatch(self, job: Job, rid: int) -> None:
        delay = min(
            self.redispatch_backoff * (2.0 ** min(job.retries, 16)),
            self.redispatch_cap,
        )
        self.sim.schedule(delay, self._redispatch, job, rid)

    def _redispatch(self, job: Job, rid: int) -> None:
        if job.state in (JobState.COMPLETED, JobState.RUNNING):
            # The dispatch we thought lost actually landed (the death
            # was detected between delivery and service start).  A job
            # still running must go back under ``_inflight`` tracking,
            # or a *real* crash of that resource later would strand it
            # — the victim sweep only sees tracked jobs.
            if job.state == JobState.RUNNING:
                self._inflight[job.job_id] = (job, rid)
            return
        if self.table is not None and self.table.alive_count == 0:
            # Whole cluster down: hold the job until something recovers.
            self.sim.schedule(self.redispatch_cap, self._redispatch, job, rid)
            return
        self.ledger.charge(
            Category.FAULTS, self.costs.redispatch_proc, self._src_redispatch
        )
        self.redispatches += 1
        job.mark_requeued()
        if self.tracer is not None:
            self.tracer.record(job, "redispatch", entity=self.name)
        self.schedule_local(job)

    def on_cluster_degraded(self, resource_id: int) -> None:
        """Hook: a local resource was just declared dead.  Protocols
        that advertise local capacity to peers (RESERVE) override this
        to retract what the cluster can no longer honor."""

    # ------------------------------------------------------------------
    # Protocol hooks (subclasses override the ones they use)
    # ------------------------------------------------------------------
    def on_job_submit(self, job: Job) -> None:
        """A job arrived from the workload.  Default: LOCAL-class jobs
        (and everything else, absent a protocol) run locally; REMOTE
        eligibility is delegated to :meth:`on_remote_job`."""
        if job.is_remote_class:
            self.on_remote_job(job)
        else:
            self.schedule_local(job)

    def on_remote_job(self, job: Job) -> None:
        """A REMOTE-class job needs a placement decision.  Default:
        run it locally (no load sharing at all — the degenerate RMS)."""
        self.schedule_local(job)

    def on_job_transfer(self, job: Job) -> None:
        """A job transferred from a remote cluster.  Default: place it
        on the local cluster without further bouncing (at most one
        inter-cluster move per decision, as in Zhou's models)."""
        self.schedule_local(job)

    def after_status_update(self, payload: dict) -> None:
        """Hook invoked after a status update refreshed the table
        (AUCTION and R-I/Sy-I evaluate their push triggers here)."""

    def after_completion(self, job: Job) -> None:
        """Hook invoked after a completion notification was processed."""

    # -- protocol messages with no default behaviour --------------------
    def _unexpected(self, message: Message) -> None:
        raise ValueError(
            f"{self.name} ({type(self).__name__}) cannot handle {message.kind}"
        )

    def on_poll_request(self, message: Message) -> None:
        """Handle a poll from a peer (LOWEST / S-I).  Override."""
        self._unexpected(message)

    def on_poll_reply(self, message: Message) -> None:
        """Handle a poll answer (LOWEST / S-I).  Override."""
        self._unexpected(message)

    def on_reserve_advert(self, message: Message) -> None:
        """Handle a reservation registration (RESERVE).  Override."""
        self._unexpected(message)

    def on_reserve_probe(self, message: Message) -> None:
        """Handle a reservation probe (RESERVE).  Override."""
        self._unexpected(message)

    def on_reserve_reply(self, message: Message) -> None:
        """Handle a reservation probe answer (RESERVE).  Override."""
        self._unexpected(message)

    def on_reserve_cancel(self, message: Message) -> None:
        """Handle a reservation cancellation (RESERVE).  Override."""
        self._unexpected(message)

    def on_auction_invite(self, message: Message) -> None:
        """Handle an auction invitation (AUCTION).  Override."""
        self._unexpected(message)

    def on_auction_bid(self, message: Message) -> None:
        """Handle an auction bid (AUCTION).  Override."""
        self._unexpected(message)

    def on_auction_award(self, message: Message) -> None:
        """Handle an auction award (AUCTION).  Override."""
        self._unexpected(message)

    def on_volunteer(self, message: Message) -> None:
        """Handle a volunteering advert (R-I / Sy-I).  Override."""
        self._unexpected(message)

    def on_demand(self, message: Message) -> None:
        """Handle a job-demand query (R-I / Sy-I).  Override."""
        self._unexpected(message)

    def on_demand_reply(self, message: Message) -> None:
        """Handle a job-demand answer (R-I / Sy-I).  Override."""
        self._unexpected(message)
