"""repro: a reproduction of "Measuring Scalability of Resource Management
Systems" (Mitra, Maheswaran, Ali; IPDPS 2005).

The package implements the paper's isoefficiency scalability metric and
measurement procedure (:mod:`repro.core`) together with every substrate
its evaluation depends on — a discrete-event simulation kernel
(:mod:`repro.sim`), Internet-like topologies (:mod:`repro.topology`),
OSPF-like routing and transport (:mod:`repro.network`), the managed Grid
model (:mod:`repro.grid`), synthetic supercomputer workloads
(:mod:`repro.workload`), the seven RMS designs it evaluates
(:mod:`repro.rms`), the experiment harness that regenerates every
table and figure (:mod:`repro.experiments`), and a structured
telemetry layer — spans, events, metrics, and convergence traces —
over the whole stack (:mod:`repro.telemetry`).

Quickstart::

    from repro import FaultPlan, SimulationConfig, run_simulation
    metrics = run_simulation(SimulationConfig(
        rms="LOWEST", n_schedulers=8, n_resources=24, workload_rate=0.007))
    print(metrics.efficiency, metrics.success_rate)

The names a typical caller needs — configuring a run, executing it,
injecting faults, measuring scalability, looking up an RMS design —
are re-exported here; everything else stays importable from its
subpackage.

Whole studies (rather than single runs) go through the
:mod:`repro.api` facade, also re-exported here: build a frozen
:class:`StudySpec`, hand it to :func:`run_study` for local execution
or :func:`submit_study` to ship it to a ``repro serve`` coordinator —
both produce the identical :class:`StudyResult`::

    from repro import StudySpec, run_study
    result = run_study(StudySpec(kind="compare", profile="ci", jobs=4))
    print(result.report)
"""

from . import fabric
from .api import StudyResult, run_study, submit_study
from .core import CostLedger, ScalabilityProcedure
from .experiments import (
    RunMetrics,
    SimulationConfig,
    Study,
    build_system,
    run_simulation,
)
from .experiments.spec import (
    StudySpec,
    spec_digest,
    spec_from_jsonable,
    spec_to_jsonable,
)
from .faults import FaultPlan
from .rms import ALL_RMS, get_rms, rms_names

__version__ = "1.0.0"

__all__ = [
    # subpackages
    "api",
    "core",
    "experiments",
    "fabric",
    "faults",
    "grid",
    "network",
    "rms",
    "sim",
    "telemetry",
    "topology",
    "workload",
    # stable top-level API
    "ALL_RMS",
    "CostLedger",
    "FaultPlan",
    "RunMetrics",
    "ScalabilityProcedure",
    "SimulationConfig",
    "Study",
    "StudyResult",
    "StudySpec",
    "build_system",
    "get_rms",
    "rms_names",
    "run_simulation",
    "run_study",
    "spec_digest",
    "spec_from_jsonable",
    "spec_to_jsonable",
    "submit_study",
]
