"""repro: a reproduction of "Measuring Scalability of Resource Management
Systems" (Mitra, Maheswaran, Ali; IPDPS 2005).

The package implements the paper's isoefficiency scalability metric and
measurement procedure (:mod:`repro.core`) together with every substrate
its evaluation depends on — a discrete-event simulation kernel
(:mod:`repro.sim`), Internet-like topologies (:mod:`repro.topology`),
OSPF-like routing and transport (:mod:`repro.network`), the managed Grid
model (:mod:`repro.grid`), synthetic supercomputer workloads
(:mod:`repro.workload`), the seven RMS designs it evaluates
(:mod:`repro.rms`), the experiment harness that regenerates every
table and figure (:mod:`repro.experiments`), and a structured
telemetry layer — spans, events, metrics, and convergence traces —
over the whole stack (:mod:`repro.telemetry`).

Quickstart::

    from repro.experiments import SimulationConfig, run_simulation
    metrics = run_simulation(SimulationConfig(
        rms="LOWEST", n_schedulers=8, n_resources=24, workload_rate=0.007))
    print(metrics.efficiency, metrics.success_rate)
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "experiments",
    "grid",
    "network",
    "rms",
    "sim",
    "telemetry",
    "topology",
    "workload",
]
