"""Structured span/event tracing to per-run JSONL files.

A :class:`Telemetry` session owns one run's ``telemetry/`` directory and
appends newline-delimited JSON records to ``spans.jsonl``:

* ``{"type": "meta", ...}`` — first line: schema version, PID, wall
  clock at session start, argv;
* ``{"type": "span", "name", "id", "parent", "pid", "t0", "t1",
  "dur", "attrs"}`` — one *completed* span, written at exit; ``t0``/
  ``t1`` are monotonic seconds since session start;
* ``{"type": "event", "name", "id", "parent", "pid", "t", "attrs"}``
  — one point-in-time event, written immediately;
* ``{"type": "metrics", "snapshot": {...}}`` — final line at
  :meth:`Telemetry.close`: the session registry's snapshot (also
  mirrored to ``metrics.json`` for direct consumption).

The *ambient* session is process-global: :func:`current` returns either
the active session or the shared :data:`NULL_TELEMETRY`, whose ``span``
and ``event`` are no-ops and whose registry hands out null collectors.
Instrumented code therefore never branches on "is telemetry on?" — it
calls ``current().span(...)`` and pays a few attribute lookups when
disabled.  Sessions refuse to record from forked worker processes (PID
guard), so an engine fan-out cannot interleave child writes into the
parent's file; workers run effectively telemetry-free.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any, Dict, Iterator, Optional

from .registry import MetricsRegistry

__all__ = [
    "SCHEMA_VERSION",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current",
    "activate",
    "jsonable_attrs",
]

#: bump when the record shape changes incompatibly
SCHEMA_VERSION = 1

#: the JSONL file a session writes inside its directory
SPANS_FILENAME = "spans.jsonl"


def jsonable_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce span/event attributes to plain JSON types.

    Scalars pass through, numpy numbers collapse to Python floats/ints
    via their ``item()``, mappings and sequences recurse, and anything
    else is stringified — a telemetry record must never raise.
    """
    return {str(k): _jsonify(v) for k, v in attrs.items()}


def _jsonify(v: Any) -> Any:
    if v is None or isinstance(v, (bool, int, float, str)):
        return v
    if hasattr(v, "item"):  # numpy scalar
        try:
            return _jsonify(v.item())
        except Exception:
            return repr(v)
    if isinstance(v, dict):
        return {str(k): _jsonify(x) for k, x in v.items()}
    if isinstance(v, (list, tuple, set, frozenset)):
        return [_jsonify(x) for x in v]
    return repr(v)


class _NullSpan:
    """The reusable no-op span of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """Discard attributes."""


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled session: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = MetricsRegistry(enabled=False)
        self.directory: Optional[Path] = None

    def span(self, name: str, /, **attrs: Any) -> _NullSpan:
        """A no-op span."""
        return _NULL_SPAN

    def event(self, name: str, /, **attrs: Any) -> None:
        """Discard the event."""

    def close(self) -> None:
        """Nothing to close."""

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


#: the shared disabled session returned by :func:`current` by default
NULL_TELEMETRY = NullTelemetry()

_current: "Telemetry | NullTelemetry" = NULL_TELEMETRY


def current() -> "Telemetry | NullTelemetry":
    """The ambient telemetry session (the null session when disabled)."""
    return _current


@contextmanager
def activate(session: "Telemetry") -> Iterator["Telemetry"]:
    """Install ``session`` as the ambient session for the duration.

    Nestable; the previous session (usually the null one) is restored
    on exit.  Closing the session remains the caller's responsibility.
    """
    global _current
    previous = _current
    _current = session
    try:
        yield session
    finally:
        _current = previous


class Span:
    """One live span; use as a context manager.

    Timing uses ``time.monotonic()`` relative to the session start, so
    records are immune to wall-clock jumps and trivially comparable
    within a run.
    """

    __slots__ = ("_session", "name", "span_id", "parent_id", "attrs", "_t0")

    def __init__(self, session: "Telemetry", name: str, attrs: Dict[str, Any]) -> None:
        self._session = session
        self.name = name
        self.span_id = session._next_id()
        self.parent_id: Optional[int] = None
        self.attrs = attrs
        self._t0 = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes before the span closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.parent_id = self._session._push(self)
        self._t0 = self._session._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = self._session._clock()
        self._session._pop(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._session._write(
            {
                "type": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "pid": os.getpid(),
                "t0": round(self._t0, 6),
                "t1": round(t1, 6),
                "dur": round(t1 - self._t0, 6),
                "attrs": jsonable_attrs(self.attrs),
            }
        )
        return False


class Telemetry:
    """One run's telemetry session: spans, events, and metrics.

    Parameters
    ----------
    directory:
        Per-run output directory (created, including parents).
    registry:
        Metrics registry to snapshot at close; a fresh enabled one by
        default.

    The session may be used as a context manager (closing on exit);
    pair it with :func:`activate` to make it ambient::

        with Telemetry(run_dir) as session, activate(session):
            study.figure(2)
    """

    enabled = True

    def __init__(self, directory: "str | Path", registry: Optional[MetricsRegistry] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._pid = os.getpid()
        self._start = time.monotonic()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._fh: Optional[IO[str]] = open(
            self.directory / SPANS_FILENAME, "a", encoding="utf-8"
        )
        self._profiler = None
        self._write(
            {
                "type": "meta",
                "schema": SCHEMA_VERSION,
                "pid": self._pid,
                "wall_start": time.time(),
                "argv": [str(a) for a in sys.argv],
            }
        )
        from ..envknobs import get_bool as _env_bool

        if _env_bool("REPRO_TELEMETRY_PROFILE"):
            from .profiler import SamplingProfiler

            self._profiler = SamplingProfiler()
            self._profiler.start()

    # ------------------------------------------------------------------
    # Internal plumbing used by Span
    # ------------------------------------------------------------------
    def _clock(self) -> float:
        return time.monotonic() - self._start

    def _next_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> Optional[int]:
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        stack.append(span)
        return parent

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exotic exit order; drop it wherever it is
            stack.remove(span)

    def _write(self, record: Dict[str, Any]) -> None:
        fh = self._fh
        if fh is None or os.getpid() != self._pid:
            # closed, or a forked worker inherited us: never write
            return
        line = json.dumps(record, separators=(",", ":"), allow_nan=True)
        with self._lock:
            fh.write(line + "\n")
            fh.flush()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def span(self, name: str, /, **attrs: Any) -> Span:
        """Open a named span; attributes may be extended via ``set``.

        ``name`` is positional-only so an attribute may itself be
        called ``name`` (the procedure's ledger events use one).
        """
        if os.getpid() != self._pid:
            return _NULL_SPAN  # type: ignore[return-value]
        return Span(self, name, dict(attrs))

    def event(self, name: str, /, **attrs: Any) -> None:
        """Record a point-in-time event under the current span."""
        if os.getpid() != self._pid:
            return
        stack = self._stack()
        self._write(
            {
                "type": "event",
                "name": name,
                "id": self._next_id(),
                "parent": stack[-1].span_id if stack else None,
                "pid": os.getpid(),
                "t": round(self._clock(), 6),
                "attrs": jsonable_attrs(attrs),
            }
        )

    def close(self) -> None:
        """Flush the metrics snapshot and close the JSONL file (idempotent)."""
        if self._fh is None:
            return
        if self._profiler is not None:
            samples = self._profiler.stop()
            self._profiler = None
            if samples:
                self.event("profile.samples", top=samples)
        snapshot = self.metrics.snapshot()
        self._write({"type": "metrics", "snapshot": snapshot})
        if os.getpid() == self._pid:
            with open(self.directory / "metrics.json", "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
        with self._lock:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
