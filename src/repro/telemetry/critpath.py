"""Critical-path analysis of sampled job traces.

Turns the per-run trace payload (:meth:`TraceRecorder.payload`) into
the decomposition the study layer renders: each sampled job's turnaround
split into named **phases**, per-run phase totals and shares, a
"which phase's share grows with k" ranking, and per-message-class
latency quantiles.

The decomposition is *telescoping*: a job's timeline is its ordered
event list bracketed by a synthetic ``arrival`` instant and the terminal
``complete`` span; each inter-event interval is named after the event
that **opened** it (:data:`PHASE_OF_PREV`).  Consecutive differences
telescope, so the phase sum equals ``completion - arrival`` — the job's
recorded turnaround — up to float summation error, no matter which
intermediate events were recorded (a truncated trace merely coarsens
attribution into the preceding phase).  ``result_return`` happens after
``complete`` and is reported separately, never summed into turnaround.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .collectors import bucket_quantile

__all__ = [
    "PHASES",
    "PHASE_OF_PREV",
    "aggregate_phases",
    "decompose_job",
    "growth_ranking",
    "latency_quantiles",
    "merge_latency",
    "phase_shares",
]

#: canonical phase order (report column order)
PHASES: Tuple[str, ...] = (
    "submit_wait",
    "sched_queue",
    "scheduling",
    "park_wait",
    "transfer_transit",
    "dispatch_transit",
    "resource_queue",
    "service",
    "recovery_wait",
    "other",
)

#: the phase an interval belongs to, named by the event that opened it
PHASE_OF_PREV: Dict[str, str] = {
    "arrival": "submit_wait",        # arrival -> first scheduler delivery
    "sched_deliver": "sched_queue",  # queued behind the scheduler server
    "decision_begin": "scheduling",  # decision service (+ any negotiation)
    "park": "park_wait",             # R-I/Sy-I wait queue
    "transfer_send": "transfer_transit",
    "dispatch_send": "dispatch_transit",
    "resource_accept": "resource_queue",
    "service_begin": "service",
    "failed": "recovery_wait",       # crash -> detection + backoff
    "redispatch": "scheduling",      # re-dispatch re-enters placement
}


def decompose_job(record: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """Phase decomposition of one sampled job record.

    Returns ``None`` for jobs that never completed (no terminal span —
    still in flight at drain end, or permanently failed).  Otherwise a
    dict with ``phases`` (name -> seconds), ``response`` (the recorded
    turnaround), ``residual`` (``|fsum(phases) - response|``), and
    ``result_return`` (post-completion result transit, or ``None``).
    """
    events: List[Tuple[str, float]] = []
    result_return: Optional[float] = None
    completion: Optional[float] = None
    for event in record["events"]:
        name = event["name"]
        if name == "result_return":
            if completion is not None and result_return is None:
                result_return = float(event["t"]) - completion
            continue
        if completion is not None:
            continue  # post-completion spans never enter the turnaround
        events.append((name, float(event["t"])))
        if name == "complete":
            completion = float(event["t"])
    if completion is None or record.get("response") is None:
        return None
    timeline = [("arrival", float(record["arrival"]))] + events
    parts: Dict[str, List[float]] = {}
    for (prev, t0), (_, t1) in zip(timeline, timeline[1:]):
        parts.setdefault(PHASE_OF_PREV.get(prev, "other"), []).append(t1 - t0)
    phases = {name: math.fsum(parts[name]) for name in PHASES if name in parts}
    response = float(record["response"])
    residual = abs(math.fsum(phases.values()) - response)
    return {
        "phases": phases,
        "response": response,
        "residual": residual,
        "result_return": result_return,
    }


def aggregate_phases(trace: Mapping[str, Any]) -> Dict[str, Any]:
    """Roll one run's trace payload up into phase totals.

    Returns ``jobs`` (decomposed count), ``incomplete`` (sampled jobs
    without a terminal span), per-phase totals, the turnaround total,
    the worst per-job residual, and the total post-completion
    result-return transit.
    """
    parts: Dict[str, List[float]] = {}
    responses: List[float] = []
    returns: List[float] = []
    max_residual = 0.0
    jobs = 0
    incomplete = 0
    for record in trace.get("jobs", {}).values():
        decomposed = decompose_job(record)
        if decomposed is None:
            incomplete += 1
            continue
        jobs += 1
        for name, value in decomposed["phases"].items():
            parts.setdefault(name, []).append(value)
        responses.append(decomposed["response"])
        if decomposed["residual"] > max_residual:
            max_residual = decomposed["residual"]
        if decomposed["result_return"] is not None:
            returns.append(decomposed["result_return"])
    return {
        "jobs": jobs,
        "incomplete": incomplete,
        "phases": {name: math.fsum(parts[name]) for name in PHASES if name in parts},
        "response_total": math.fsum(responses),
        "max_residual": max_residual,
        "result_return_total": math.fsum(returns),
    }


def phase_shares(phases: Mapping[str, float]) -> Dict[str, float]:
    """Each phase's fraction of the summed turnaround (0 when empty)."""
    total = math.fsum(phases.values())
    if total <= 0.0:
        return {name: 0.0 for name in phases}
    return {name: value / total for name, value in phases.items()}


def growth_ranking(
    points: Sequence[Tuple[float, Mapping[str, float]]]
) -> List[Tuple[str, float]]:
    """Rank phases by how fast their share grows with scale.

    ``points`` is ``[(k, shares), ...]``; the slope is the least-squares
    fit of share against ``k``, so a positive slope names a phase whose
    *relative* weight in turnaround worsens as the system scales — the
    per-job twin of ``repro attrib``'s per-component G(k) slopes.
    """
    names = sorted({name for _, shares in points for name in shares})
    if len(points) < 2:
        return [(name, 0.0) for name in names]
    ks = [float(k) for k, _ in points]
    k_mean = math.fsum(ks) / len(ks)
    denom = math.fsum((k - k_mean) ** 2 for k in ks)
    ranking = []
    for name in names:
        ys = [float(shares.get(name, 0.0)) for _, shares in points]
        y_mean = math.fsum(ys) / len(ys)
        slope = 0.0
        if denom > 0.0:
            slope = (
                math.fsum((k - k_mean) * (y - y_mean) for k, y in zip(ks, ys))
                / denom
            )
        ranking.append((name, slope))
    ranking.sort(key=lambda item: item[1], reverse=True)
    return ranking


# ---------------------------------------------------------------------------
# Latency histograms
# ---------------------------------------------------------------------------

def merge_latency(
    payloads: Iterable[Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Merge per-run latency snapshots by summing bucket counts.

    Quantiles are recomputed from the merged buckets, so a per-design
    table can aggregate every scale's runs without re-recording.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for payload in payloads:
        for kind, snap in payload.get("latency", {}).items():
            into = merged.get(kind)
            if into is None:
                merged[kind] = {
                    "count": snap["count"],
                    "total": snap["total"],
                    "min": snap["min"],
                    "max": snap["max"],
                    "buckets": [list(pair) for pair in snap["buckets"]],
                    "overflow": snap["overflow"],
                }
                continue
            into["count"] += snap["count"]
            into["total"] += snap["total"]
            into["min"] = min(into["min"], snap["min"])
            into["max"] = max(into["max"], snap["max"])
            into["overflow"] += snap["overflow"]
            for pair, other in zip(into["buckets"], snap["buckets"]):
                pair[1] += other[1]
    for snap in merged.values():
        bounds = [b for b, _ in snap["buckets"]]
        counts = [c for _, c in snap["buckets"]]
        snap["mean"] = snap["total"] / snap["count"] if snap["count"] else math.nan
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            snap[label] = bucket_quantile(
                bounds, counts, snap["overflow"], q, minimum=snap["min"]
            )
    return merged


def latency_quantiles(
    merged: Mapping[str, Mapping[str, Any]]
) -> List[List[Any]]:
    """Table rows ``[kind, count, mean, p50, p95, p99, max]``."""
    return [
        [
            kind,
            int(snap["count"]),
            snap["mean"],
            snap["p50"],
            snap["p95"],
            snap["p99"],
            snap["max"],
        ]
        for kind, snap in sorted(merged.items())
    ]
