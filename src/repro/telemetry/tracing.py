"""Causal job tracing: sampled span DAGs across the job lifecycle.

A :class:`TracePlan` selects a deterministic fraction of jobs; for each
sampled job the :class:`TraceRecorder` collects a bounded, time-ordered
list of lifecycle events (``sched_deliver``, ``decision_begin``,
``dispatch_send``, ``resource_accept``, ``service_begin``, ``complete``,
plus ``park``/``transfer_send``/``failed``/``redispatch`` on the paths
that take them, and ``result_return`` after completion).  Each event
implicitly parents the previous event of the same job; events that
cross a message hop additionally carry an explicit ``parent`` index —
the trace context rides on :class:`~repro.network.messages.Message`
(``trace`` slot) so the DAG survives transit through the router and
middleware relays.

Discipline (same as flightrec / the series recorder):

* tracing is **off by default** — ``SchedulerBase.tracer`` and
  ``Resource.tracer`` stay the class-level ``None`` and every hot-path
  hook is one ``is None`` test;
* sampling is a **pure hash** of ``(seed, job_id)`` (BLAKE2b), never a
  draw from a simulation RNG stream, so enabling tracing cannot perturb
  any stochastic behaviour and the sampled set is reproducible;
* recording **charges** the ledger (``g.trace``) only when the plan's
  ``charge_rate`` is positive; a zero-charge plan is *passive* and must
  leave every result and cache key bit-for-bit unchanged (see
  ``parallel.hashing``: passive plans are dropped from the key).

The per-message-class latency histograms are fed by
``Network.latency_tap`` — an optional callable the recorder installs,
again ``None`` (and free) when tracing is off.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..network.messages import MessageKind
from . import flightrec
from .collectors import Histogram, snapshot_collector

__all__ = [
    "ENV_CHARGE",
    "ENV_MAX_EVENTS",
    "ENV_SAMPLE",
    "LATENCY_BUCKETS",
    "TRACE_CATEGORY",
    "TRACE_SOURCE",
    "TracePlan",
    "TraceRecorder",
    "job_is_sampled",
    "resolve_trace_plan",
    "trace_id_for",
    "trace_plan_from_jsonable",
    "trace_plan_to_jsonable",
]

#: ledger category trace recording overhead is charged to (G side —
#: instrumentation is RMS work, like ``g.monitor`` probes)
TRACE_CATEGORY = "g.trace"

#: attribution source tag for trace charges
TRACE_SOURCE = ("trace", "spans", "record")

#: environment knobs (flag > env > default, see :func:`resolve_trace_plan`)
ENV_SAMPLE = "REPRO_TRACE_SAMPLE"
ENV_CHARGE = "REPRO_TRACE_CHARGE_RATE"
ENV_MAX_EVENTS = "REPRO_TRACE_MAX_EVENTS"

#: transit-delay histogram bounds (simulated time units; spans the
#: co-located fast path through WAN-scaled relay hops)
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0
)

#: events that may exceed the per-job bound: without the terminal event
#: a truncated job could not be decomposed at all, so ``complete`` always
#: lands (intermediate drops only coarsen the phase attribution — any
#: ordered event subset still telescopes to completion minus arrival)
_TERMINAL_EVENTS = frozenset({"complete"})


@dataclass(frozen=True)
class TracePlan:
    """Causal-tracing configuration carried on a ``SimulationConfig``.

    Attributes
    ----------
    sample:
        Fraction of jobs traced, in ``[0, 1]``.  ``0`` (default) keeps
        tracing entirely off.
    charge_rate:
        Simulated time charged to ``g.trace`` per recorded span.  A
        positive rate makes the plan *active* (hashed into cache keys);
        zero keeps it passive — observation without cost.
    max_events:
        Per-job span bound; past it only terminal events are recorded
        and the rest are counted as dropped.
    """

    sample: float = 0.0
    charge_rate: float = 0.02
    max_events: int = 64

    def __post_init__(self) -> None:
        if not (0.0 <= self.sample <= 1.0) or not math.isfinite(self.sample):
            raise ValueError(f"sample must be in [0, 1], got {self.sample!r}")
        if self.charge_rate < 0.0 or not math.isfinite(self.charge_rate):
            raise ValueError(
                f"charge_rate must be finite and >= 0, got {self.charge_rate!r}"
            )
        if int(self.max_events) < 4:
            raise ValueError(f"max_events must be >= 4, got {self.max_events!r}")

    @property
    def is_enabled(self) -> bool:
        """Whether any job is traced at all."""
        return self.sample > 0.0

    @property
    def is_active(self) -> bool:
        """Whether tracing charges the ledger (and so perturbs G)."""
        return self.sample > 0.0 and self.charge_rate > 0.0


def trace_plan_to_jsonable(plan: TracePlan) -> Dict[str, Any]:
    """A plan as plain JSON types (cache hashing, manifests)."""
    return dataclasses.asdict(plan)


def trace_plan_from_jsonable(payload: Dict[str, Any]) -> TracePlan:
    """Rebuild a plan from :func:`trace_plan_to_jsonable` output."""
    return TracePlan(
        sample=float(payload.get("sample", 0.0)),
        charge_rate=float(payload.get("charge_rate", 0.02)),
        max_events=int(payload.get("max_events", 64)),
    )


def resolve_trace_plan(
    sample: Optional[float] = None,
    charge_rate: Optional[float] = None,
    max_events: Optional[int] = None,
    default_sample: float = 0.0,
) -> TracePlan:
    """Build a plan from explicit knobs, the environment, and defaults.

    Explicit arguments win; unset ones fall back to ``REPRO_TRACE_*``
    environment variables, then to the dataclass defaults
    (``default_sample`` lets callers like ``repro trace`` default the
    sampling rate on instead of off).
    """

    from ..envknobs import get_float

    sample = get_float(ENV_SAMPLE, override=sample, default=default_sample)
    charge_rate = get_float(ENV_CHARGE, override=charge_rate)
    # read as float for historical tolerance ("64.0"), truncated below
    max_events = get_float(ENV_MAX_EVENTS, override=max_events)
    kwargs: Dict[str, Any] = {"sample": float(sample)}
    if charge_rate is not None:
        kwargs["charge_rate"] = float(charge_rate)
    if max_events is not None:
        kwargs["max_events"] = int(max_events)
    return TracePlan(**kwargs)


# ---------------------------------------------------------------------------
# Deterministic sampling
# ---------------------------------------------------------------------------

def _digest(seed: int, job_id: int) -> bytes:
    return hashlib.blake2b(
        f"{seed}:{job_id}".encode("ascii"), digest_size=8
    ).digest()


def job_is_sampled(seed: int, job_id: int, sample: float) -> bool:
    """Whether a job is in the sampled set — a pure function.

    The decision hashes ``(seed, job_id)`` (BLAKE2b), so the same seed
    always samples the same jobs regardless of worker count, kernel
    backend, or traffic mode, and no simulation RNG stream is consumed.
    """
    if sample <= 0.0:
        return False
    if sample >= 1.0:
        return True
    return int.from_bytes(_digest(seed, job_id), "big") < sample * 2.0**64


def trace_id_for(seed: int, job_id: int) -> str:
    """The job's stable trace id (hex of the sampling digest)."""
    return _digest(seed, job_id).hex()


# ---------------------------------------------------------------------------
# The recorder
# ---------------------------------------------------------------------------

class TraceRecorder:
    """Collects span DAGs for the sampled jobs of one run.

    Built by ``build_system`` when the config's plan is enabled; armed
    via :meth:`arm` **before** the workload is scheduled (arrival events
    bind each scheduler's ``deliver`` at schedule time, so the
    instance-level shadow must already be in place), and told the job
    population via :meth:`register_jobs` once specs exist.
    """

    def __init__(self, sim, plan: TracePlan, ledger, seed: int) -> None:
        self.sim = sim
        self.plan = plan
        self.ledger = ledger
        self.seed = int(seed)
        #: sampled job id -> trace id
        self.trace_ids: Dict[int, str] = {}
        #: sampled job id -> ordered event records
        self.events: Dict[int, List[Dict[str, Any]]] = {}
        #: sampled job id -> Job (for arrival/completion in the payload)
        self._jobs: Dict[int, Any] = {}
        #: job id -> event index of the last stamped (in-flight) send
        self._pending_parent: Dict[int, int] = {}
        #: per-message-kind transit-delay histograms
        self.latency: Dict[str, Histogram] = {}
        self.recorded = 0
        self.dropped = 0
        self._max_events = int(plan.max_events)
        self._charge = float(plan.charge_rate)
        self._flight = flightrec.current()

    # -- wiring ----------------------------------------------------------
    def arm(self, schedulers, resources, network) -> None:
        """Install the per-entity hooks (idempotent per system build)."""
        for sched in schedulers:
            sched.tracer = self
            self._shadow_scheduler(sched)
        for res in resources:
            res.tracer = self
        network.latency_tap = self.on_send

    def register_jobs(self, jobs) -> None:
        """Evaluate the sampling predicate over the job population."""
        sample = self.plan.sample
        seed = self.seed
        for job in jobs:
            job_id = job.job_id
            if job_is_sampled(seed, job_id, sample):
                self.trace_ids[job_id] = trace_id_for(seed, job_id)
                self.events[job_id] = []
                self._jobs[job_id] = job

    def _shadow_scheduler(self, sched) -> None:
        """Shadow ``deliver``/``_begin`` on the instance.

        Scheduler subclasses have no ``__slots__`` (the builder already
        assigns ``network``/``rng``/``peers`` dynamically), so the
        instance attribute wins every ``self.deliver`` lookup — the
        class machinery stays untouched and untraced runs never pay.
        """
        deliver = sched.deliver
        begin = sched._begin
        events = self.events
        name = sched.name

        def traced_deliver(message) -> None:
            kind = message.kind
            if kind == MessageKind.JOB_SUBMIT or kind == MessageKind.JOB_TRANSFER:
                job = message.payload["job"]
                if job.job_id in events:
                    self.record(job, "sched_deliver", entity=name)
            elif kind == MessageKind.JOB_COMPLETE:
                job = message.payload["job"]
                if job.job_id in events:
                    self.record(job, "result_return", entity=name)
            deliver(message)

        def traced_begin(message) -> None:
            kind = message.kind
            if kind == MessageKind.JOB_SUBMIT or kind == MessageKind.JOB_TRANSFER:
                job = message.payload["job"]
                if job.job_id in events:
                    self.record(job, "decision_begin", entity=name)
            begin(message)

        sched.deliver = traced_deliver
        sched._begin = traced_begin

    # -- recording -------------------------------------------------------
    def record(self, job, name: str, **attrs: Any) -> None:
        """Append one span to the job's trace (bounded, charged)."""
        job_id = job.job_id
        events = self.events.get(job_id)
        if events is None:
            return
        if len(events) >= self._max_events and name not in _TERMINAL_EVENTS:
            self.dropped += 1
            return
        event: Dict[str, Any] = {"name": name, "t": self.sim.now}
        parent = self._pending_parent.pop(job_id, None)
        if parent is not None:
            event["parent"] = parent
        if attrs:
            event.update(attrs)
        events.append(event)
        self.recorded += 1
        if self._charge > 0.0:
            self.ledger.charge(TRACE_CATEGORY, self._charge, TRACE_SOURCE)
        if self._flight is not None:
            self._flight.trace_span(job_id, name, self.sim.now, **attrs)

    def stamp(self, job, message) -> None:
        """Attach the trace context to a job-plane message.

        The receive side records the stamped event index as its
        ``parent``, turning the per-job event list into a DAG whose
        cross-entity edges are exactly the message hops.
        """
        job_id = job.job_id
        events = self.events.get(job_id)
        if not events:
            return
        index = len(events) - 1
        message.trace = (self.trace_ids[job_id], index)
        self._pending_parent[job_id] = index

    # -- hook entry points (call sites are one ``is None`` test) ---------
    def dispatch_send(self, job, scheduler, resource_id, message) -> None:
        """A local dispatch left the scheduler (records staleness)."""
        if job.job_id not in self.events:
            return
        staleness = scheduler.table.staleness_of(resource_id, self.sim.now)
        self.record(
            job,
            "dispatch_send",
            entity=scheduler.name,
            resource=resource_id,
            staleness=None if staleness != staleness else staleness,
        )
        self.stamp(job, message)

    def transfer_send(self, job, scheduler, message) -> None:
        """The job was handed to a peer scheduler."""
        if job.job_id not in self.events:
            return
        self.record(job, "transfer_send", entity=scheduler.name)
        self.stamp(job, message)

    def complete(self, job, resource, message) -> None:
        """The job finished at a resource (stamps the result message)."""
        if job.job_id not in self.events:
            return
        self.record(job, "complete", entity=resource.name)
        self.stamp(job, message)

    def on_send(self, kind: str, delay: float) -> None:
        """``Network.latency_tap``: one transit delay per routed send."""
        hist = self.latency.get(kind)
        if hist is None:
            hist = self.latency[kind] = Histogram(
                f"latency.{kind}", buckets=LATENCY_BUCKETS
            )
        hist.record(delay)

    # -- output ----------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        """The run's trace payload (rides on ``RunMetrics.trace``)."""
        jobs: Dict[str, Any] = {}
        for job_id in sorted(self.trace_ids):
            job = self._jobs[job_id]
            jobs[str(job_id)] = {
                "trace_id": self.trace_ids[job_id],
                "arrival": job.spec.arrival_time,
                "completion": job.completion_time,
                "response": job.response_time,
                "retries": job.retries,
                "transfers": job.transfers,
                "successful": job.successful,
                "events": self.events[job_id],
            }
        latency: Dict[str, Any] = {}
        for kind in sorted(self.latency):
            hist = self.latency[kind]
            snap = snapshot_collector(hist)
            latency[str(kind)] = snap
        return {
            "v": 1,
            "plan": trace_plan_to_jsonable(self.plan),
            "sampled": len(self.trace_ids),
            "recorded": self.recorded,
            "dropped": self.dropped,
            "jobs": jobs,
            "latency": latency,
        }
