"""Prometheus text-exposition helpers shared by the study exporters.

``repro series`` and ``repro trace`` both expose end-of-study summary
gauges in the Prometheus text format; this module holds the one
rendering path (escaping, label formatting, NaN/None skipping) so the
exporters only declare *what* to sample.  It also knows how to turn a
flattened ledger-attribution key (``category|component|entity|
message_class``, see :data:`repro.core.ledger.SOURCE_SEP`) into label
sets, so per-component overhead can ride along any exposition.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, TextIO, Tuple

from ..core.ledger import SOURCE_SEP

__all__ = [
    "attribution_labels",
    "format_labels",
    "prom_escape",
    "write_metric",
]


def prom_escape(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_value(value: Any) -> str:
    # floats render with %g so scale="2" (not "2.0") — the historical
    # exposition shape the series smoke tests scrape
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def format_labels(labels: Mapping[str, Any]) -> str:
    """Render a label set (insertion order preserved, values escaped)."""
    return ",".join(
        f'{key}="{prom_escape(_label_value(value))}"'
        for key, value in labels.items()
    )


def write_metric(
    fh: TextIO,
    name: str,
    mtype: str,
    samples: Iterable[Tuple[Mapping[str, Any], Any]],
) -> int:
    """Write one ``# TYPE`` block; returns how many samples landed.

    ``samples`` yields ``(labels, value)`` pairs; ``None`` and NaN
    values are skipped (a scrape never carries unknowns).
    """
    fh.write(f"# TYPE {name} {mtype}\n")
    n = 0
    for labels, value in samples:
        if value is None or value != value:
            continue
        fh.write(f"{name}{{{format_labels(labels)}}} {value!r}\n")
        n += 1
    return n


def attribution_labels(key: str) -> Dict[str, str]:
    """Labels for one flattened attribution cell key.

    Tagged cells (``category|component|entity|message_class``) yield all
    four labels; untagged cells (bare category) yield just ``category``.
    """
    parts = key.split(SOURCE_SEP)
    labels = {"category": parts[0]}
    if len(parts) == 4:
        labels["component"] = parts[1]
        labels["entity"] = parts[2]
        labels["message_class"] = parts[3]
    return labels
