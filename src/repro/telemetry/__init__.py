"""repro.telemetry: structured observability for the reproduction stack.

Three layers, all optional and all zero-cost when disabled:

* **Metrics** — :class:`MetricsRegistry` aggregates named counters,
  tallies, gauges, and histograms behind hierarchical scopes
  (:mod:`~repro.telemetry.registry`, :mod:`~repro.telemetry.collectors`).
* **Spans and events** — :class:`Telemetry` writes JSONL trace records
  (monotonic timestamps, PID, parent links) to a per-run directory;
  :func:`current`/:func:`activate` provide the ambient session the
  instrumented stack (engine, cache, tuner, procedure, runner) emits
  through (:mod:`~repro.telemetry.spans`).
* **Reports** — ``repro telemetry {summary,spans,tuner}`` renders the
  JSONL back into terminal tables (:mod:`~repro.telemetry.report`,
  imported lazily by the CLI to keep this package import-light).

Typical use::

    from repro.telemetry import Telemetry, activate

    with Telemetry("telemetry/run1") as session, activate(session):
        study.figure(2)          # spans/events stream to telemetry/run1/

Instrumented library code never takes a session parameter — it calls
``current().span(...)`` and the ambient session (or the no-op null
session) handles the rest.
"""

from .collectors import Counter, Gauge, Histogram, Tally, TimeWeighted
from .registry import MetricsRegistry, MetricsScope
from .spans import (
    NULL_TELEMETRY,
    SCHEMA_VERSION,
    NullTelemetry,
    Telemetry,
    activate,
    current,
)
from .timeseries import (
    MonitorPlan,
    ProbeSampler,
    RunSeriesRecorder,
    WindowedSeries,
    detect_warmup,
    efficiency_curve,
    merge_series,
    resolve_monitor_plan,
    steady_state,
)
from .tracing import (
    TracePlan,
    TraceRecorder,
    job_is_sampled,
    resolve_trace_plan,
    trace_id_for,
    trace_plan_from_jsonable,
    trace_plan_to_jsonable,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "MonitorPlan",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "ProbeSampler",
    "RunSeriesRecorder",
    "SCHEMA_VERSION",
    "Tally",
    "Telemetry",
    "TimeWeighted",
    "TracePlan",
    "TraceRecorder",
    "WindowedSeries",
    "activate",
    "current",
    "detect_warmup",
    "efficiency_curve",
    "job_is_sampled",
    "merge_series",
    "resolve_monitor_plan",
    "resolve_trace_plan",
    "steady_state",
    "trace_id_for",
    "trace_plan_from_jsonable",
    "trace_plan_to_jsonable",
]
