"""An optional, dependency-free sampling profiler.

Set ``REPRO_TELEMETRY_PROFILE=1`` (optionally ``=<interval-ms>``) and a
:class:`~repro.telemetry.spans.Telemetry` session starts a
:class:`SamplingProfiler`: a daemon thread that periodically samples the
main thread's stack via ``sys._current_frames()`` and tallies the
functions it lands in.  Unlike ``cProfile`` it adds no per-call hook to
the simulation kernel's hot path — overhead is bounded by the sampling
interval regardless of event rate — which is why it is the profiler the
telemetry layer ships with.

The result is a list of ``(location, samples)`` pairs, emitted as a
``profile.samples`` event when the session closes.
"""

from __future__ import annotations

import os
import sys
import threading
from collections import Counter as _TallyMap
from typing import List, Tuple

__all__ = ["SamplingProfiler"]

#: default sampling period in seconds (5 ms ≈ 200 Hz)
DEFAULT_INTERVAL = 0.005


def _env_interval() -> float:
    """Interval from ``$REPRO_TELEMETRY_PROFILE`` (ms), else the default."""
    from ..envknobs import raw as _env_raw

    try:
        ms = float(_env_raw("REPRO_TELEMETRY_PROFILE") or "")
    except ValueError:
        return DEFAULT_INTERVAL
    return ms / 1000.0 if ms > 1.0 else DEFAULT_INTERVAL


class SamplingProfiler:
    """Samples one thread's top-of-stack at a fixed interval.

    Parameters
    ----------
    thread_id:
        Thread to sample; defaults to the calling thread (which is the
        thread that runs the simulations).
    interval:
        Seconds between samples.
    depth:
        Stack frames recorded per sample (innermost first).
    """

    def __init__(
        self,
        thread_id: int | None = None,
        interval: float | None = None,
        depth: int = 3,
    ) -> None:
        self.thread_id = thread_id if thread_id is not None else threading.get_ident()
        self.interval = interval if interval is not None else _env_interval()
        self.depth = depth
        self.samples = 0
        self._counts: _TallyMap = _TallyMap()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self.thread_id)
            if frame is None:
                continue
            self.samples += 1
            parts = []
            f = frame
            for _ in range(self.depth):
                if f is None:
                    break
                code = f.f_code
                module = os.path.splitext(os.path.basename(code.co_filename))[0]
                parts.append(f"{module}:{code.co_name}")
                f = f.f_back
            self._counts[" < ".join(parts)] += 1

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry-profiler", daemon=True
        )
        self._thread.start()

    def stop(self, top: int = 20) -> List[Tuple[str, int]]:
        """Stop sampling and return the ``top`` hottest locations."""
        if self._thread is None:
            return []
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        return self._counts.most_common(top)
