"""The flight recorder: bounded forensic rings + post-mortem bundles.

A :class:`FlightRecorder` keeps small rolling windows ("rings") of the
most recent kernel dispatches, ledger charges, tuner moves, fault
events, causal-tracing spans, and free-form notes.  Recording is cheap (a deque append per
observation) and bounded (each ring holds the latest ``capacity``
entries), so it can stay on for whole studies.  Nothing is written to
disk until :meth:`FlightRecorder.dump` is called — which the runner,
tuner, and CLI do when a run crashes, is cancelled, or trips an
invariant — producing a ``bundle-*.json`` post-mortem that makes a
failure inside a worker process diagnosable from artifacts alone.

Ambient enablement mirrors the telemetry session: library code calls
:func:`current` and gets either the process's recorder or ``None``.
Enablement deliberately flows through the environment
(``REPRO_FLIGHT_RECORDER`` / ``REPRO_FLIGHT_DIR``): pool workers
inherit it, auto-enable on first use (the env check is memoized per
PID, so forked workers re-consult it), and write PID-stamped bundles of
their own.

The recorder must never change results: it only observes (the
determinism test suite asserts byte-identical metrics with recording on
and off).
"""

from __future__ import annotations

import json
import os
import time
import traceback
from collections import deque
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "BUNDLE_SCHEMA",
    "DEFAULT_CAPACITY",
    "DEFAULT_DIR",
    "ENV_DIR",
    "ENV_ENABLE",
    "FlightRecorder",
    "current",
    "disable",
    "enable",
]

#: environment variable that switches ambient recording on ("" / "0" = off)
ENV_ENABLE = "REPRO_FLIGHT_RECORDER"
#: environment variable relocating the bundle directory
ENV_DIR = "REPRO_FLIGHT_DIR"
#: default bundle directory (relative to the working directory)
DEFAULT_DIR = "flight-recorder"
#: entries kept per ring
DEFAULT_CAPACITY = 256
#: bundle payload schema version
BUNDLE_SCHEMA = 1


def _fn_label(fn: Any) -> str:
    """Human-readable label for a scheduled callable.

    Resolved lazily (at snapshot/dump time, not on the hot path): the
    qualified name plus, for bound methods, the owning entity's ``name``
    — which is what turns a ring of opaque function pointers into a
    readable event timeline (``Resource._finish (res3)``).
    """
    label = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", None) or repr(fn)
    owner = getattr(fn, "__self__", None)
    owner_name = getattr(owner, "name", None)
    if owner_name is not None:
        label = f"{label} ({owner_name})"
    return label


class FlightRecorder:
    """Rolling forensic windows with on-demand post-mortem dumps.

    Parameters
    ----------
    directory:
        Where bundles are written (created on first dump).  ``None``
        falls back to ``$REPRO_FLIGHT_DIR`` or :data:`DEFAULT_DIR`.
    capacity:
        Entries retained per ring (the *latest* ``capacity`` win).
    """

    def __init__(self, directory: "str | Path | None" = None, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        if directory is None:
            from ..envknobs import get_str

            directory = get_str(ENV_DIR, default=DEFAULT_DIR)
        self.directory = Path(directory)
        self.capacity = capacity
        # kernel entries hold raw (time, fn) pairs; labels resolve at
        # snapshot time so the record path stays a bare deque append.
        self._kernel: deque = deque(maxlen=capacity)
        self._ledger: deque = deque(maxlen=capacity)
        self._tuner: deque = deque(maxlen=capacity)
        self._faults: deque = deque(maxlen=capacity)
        self._notes: deque = deque(maxlen=capacity)
        self._trace: deque = deque(maxlen=capacity)
        #: bundles written by this recorder, in write order
        self.bundles: List[Path] = []
        self._bundle_seq = 0

    # -- recording (hot paths: keep these to one append) ----------------
    def kernel_event(self, t: float, fn: Any, args: Tuple) -> None:
        """Observe one kernel dispatch (the ``Simulator.trace`` shape)."""
        self._kernel.append((t, fn))

    def ledger_charge(self, category: str, amount: float, source: Optional[Tuple] = None) -> None:
        """Observe one accepted ledger charge."""
        self._ledger.append(
            {
                "category": category,
                "amount": amount,
                "source": list(source) if source is not None else None,
            }
        )

    def tuner_move(self, kind: str, **fields: Any) -> None:
        """Observe one annealing step or tuned-point result."""
        entry: Dict[str, Any] = {"move": kind}
        entry.update(fields)
        self._tuner.append(entry)

    def fault_event(self, kind: str, **fields: Any) -> None:
        """Observe one injected fault firing."""
        entry: Dict[str, Any] = {"kind": kind}
        entry.update(fields)
        self._faults.append(entry)

    def note(self, message: str, **fields: Any) -> None:
        """Record a free-form breadcrumb (run started, config shape, …)."""
        entry: Dict[str, Any] = {"note": message}
        entry.update(fields)
        self._notes.append(entry)

    def trace_span(self, job_id: int, name: str, t: float, **fields: Any) -> None:
        """Observe one causal-tracing span (sampled jobs only, so the
        ring sees the tail of the traced lifecycle activity)."""
        entry: Dict[str, Any] = {"job": job_id, "span": name, "t": t}
        entry.update(fields)
        self._trace.append(entry)

    # -- wiring ----------------------------------------------------------
    def chain_kernel_trace(
        self, existing: Optional[Callable[[float, Callable, tuple], None]]
    ) -> Callable[[float, Callable, tuple], None]:
        """A ``Simulator.trace`` callback feeding the kernel ring.

        Chains to (rather than replaces) any already-installed trace
        callback, preserving e.g. a :class:`~repro.sim.trace.TraceRecorder`.
        """
        append = self._kernel.append
        if existing is None:

            def trace(t: float, fn: Callable, args: tuple) -> None:
                append((t, fn))

        else:

            def trace(t: float, fn: Callable, args: tuple) -> None:
                append((t, fn))
                existing(t, fn, args)

        return trace

    def observe_ledger(self, ledger: Any) -> None:
        """Hook a :class:`~repro.core.ledger.CostLedger`'s observer.

        Chains to a pre-existing observer rather than displacing it.
        """
        previous = getattr(ledger, "observer", None)
        if previous is None:
            ledger.observer = self.ledger_charge
        else:
            record = self.ledger_charge

            def chained(category: str, amount: float, source: Optional[Tuple]) -> None:
                record(category, amount, source)
                previous(category, amount, source)

            ledger.observer = chained

    # -- inspection / dumping -------------------------------------------
    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """The rings as JSON-ready channel lists (labels resolved now)."""
        return {
            "kernel": [{"t": t, "fn": _fn_label(fn)} for t, fn in self._kernel],
            "ledger": list(self._ledger),
            "tuner": list(self._tuner),
            "faults": list(self._faults),
            "notes": list(self._notes),
            "trace": list(self._trace),
        }

    def dump(
        self,
        reason: str,
        error: Optional[BaseException] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Write a post-mortem bundle and return its path.

        Bundle names are ``bundle-<pid>-<n>.json`` — PID-stamped so
        parent and pool workers never collide, sequenced so repeated
        dumps within one process stay distinct.
        """
        err_payload = None
        if error is not None:
            if error.__traceback__ is not None:
                tb = "".join(
                    traceback.format_exception(type(error), error, error.__traceback__)
                )
            else:
                tb = f"{type(error).__name__}: {error}"
            err_payload = {
                "type": type(error).__name__,
                "message": str(error),
                "traceback": tb,
            }
        payload = {
            "schema": BUNDLE_SCHEMA,
            "reason": reason,
            "pid": os.getpid(),
            "wall_time": time.time(),
            "context": context or {},
            "error": err_payload,
            "channels": self.snapshot(),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        self._bundle_seq += 1
        path = self.directory / f"bundle-{os.getpid()}-{self._bundle_seq}.json"
        # default=repr: a bundle must always be writable, even when a
        # channel captured something exotic — forensics over fidelity.
        path.write_text(json.dumps(payload, indent=2, default=repr) + "\n", encoding="utf-8")
        self.bundles.append(path)
        return path


# ---------------------------------------------------------------------------
# Ambient recorder (process-global, PID-guarded like the telemetry session)
# ---------------------------------------------------------------------------

_ambient: Optional[FlightRecorder] = None
#: PID whose environment was last consulted; ``None`` forces a fresh
#: check.  Forked pool workers inherit the parent's value, see a PID
#: mismatch, and re-consult the (inherited) environment — which is how
#: ``REPRO_FLIGHT_RECORDER=1`` auto-enables recording inside workers.
_env_checked_pid: Optional[int] = None


def current() -> Optional[FlightRecorder]:
    """The process's ambient recorder, or ``None`` when recording is off."""
    global _ambient, _env_checked_pid
    pid = os.getpid()
    if _env_checked_pid != pid:
        _env_checked_pid = pid
        from ..envknobs import get_bool, get_str

        if get_bool(ENV_ENABLE):
            _ambient = FlightRecorder(get_str(ENV_DIR, default=DEFAULT_DIR))
        else:
            _ambient = None
    return _ambient


def enable(directory: "str | Path | None" = None, capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    """Install (and return) a fresh ambient recorder for this process."""
    global _ambient, _env_checked_pid
    _ambient = FlightRecorder(directory, capacity=capacity)
    _env_checked_pid = os.getpid()
    return _ambient


def disable() -> None:
    """Remove the ambient recorder (idempotent)."""
    global _ambient, _env_checked_pid
    _ambient = None
    _env_checked_pid = os.getpid()
