"""Time-resolved streams of the paper's quantities: F/G/H/E as *curves*.

Everything the repo measured before this module is an end-of-run total —
one F, one G, one H per (design, scale).  The isoefficiency controller
(ROADMAP item 5) and fluid-mode validation (item 2) both need the
*trajectory*: how efficiency evolves inside a run, when the system
reaches steady state, and what continuous monitoring itself costs.
This module supplies that sensor layer in four pieces:

* :class:`MonitorPlan` — the frozen, hashable description of a run's
  monitoring configuration (windowed series on/off, in-sim probe period,
  per-probe charge rate).  It rides on ``SimulationConfig`` like the
  :class:`~repro.faults.plan.FaultPlan` does; a **passive** plan
  (``charge_rate == 0``) observes without perturbing, so the run-cache
  key deliberately excludes it, while an **active** plan charges
  ``g.monitor`` and is hashed like any semantic field.
* :class:`WindowedSeries` — bounded per-window accumulation in sim time.
  Fixed window count; on overflow the window width *doubles* and
  adjacent buckets merge pairwise (sums add, sample counts add), so
  memory is bounded like a flight-recorder ring but nothing is lost in
  aggregate — the total over all windows is invariant under decimation.
* :class:`RunSeriesRecorder` — hooks ``CostLedger.observer`` (chaining a
  pre-existing observer, exactly like the flight recorder) to bucket
  every charge into per-window F/G/H totals plus per-component G detail.
  The disabled path is the ledger's existing ``observer is None`` test:
  runs without a plan pay nothing on either kernel backend's hot path.
* :class:`ProbeSampler` — an in-sim sampling loop (configurable sim-time
  period) reading scheduler queue depths and in-flight dispatch counts,
  estimator queue depths and staleness/heartbeat gaps, resource
  occupancy, and dispatch latency.  Probes are pure reads — no RNG, no
  state mutation — so a zero-charge-rate sampler leaves every F/G/H
  result bit-for-bit unchanged; with ``charge_rate > 0`` each sweep
  charges ``g.monitor`` per probed entity, making the monitoring
  overhead/accuracy tradeoff (Lahmadi et al.) a first-class experiment.

On top sit the stream-analysis helpers: :func:`efficiency_curve`,
MSER-style :func:`detect_warmup` / :func:`steady_state` (automatic
warmup truncation), and :func:`merge_series` (aligning per-run payloads
from pool workers into study-level curves).  All of them operate on the
plain-JSON payload shape (:meth:`RunSeriesRecorder.payload`) that rides
inside ``RunMetrics`` through pickling, the run cache, and study
manifests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_WINDOW_COUNT",
    "ENV_SERIES",
    "ENV_SERIES_CHARGE_RATE",
    "ENV_SERIES_PROBE_INTERVAL",
    "ENV_SERIES_WINDOW",
    "MonitorPlan",
    "ProbeSampler",
    "RunSeriesRecorder",
    "WindowedSeries",
    "detect_warmup",
    "efficiency_curve",
    "merge_series",
    "monitor_plan_from_jsonable",
    "monitor_plan_to_jsonable",
    "resolve_monitor_plan",
    "steady_state",
]

#: series payload schema version (bump on shape changes)
SERIES_VERSION = 1

#: default number of windows the horizon is divided into when the plan
#: does not fix a width (the drain then adds ~half as many more)
DEFAULT_WINDOW_COUNT = 64

#: environment knobs (flag > env > default, like every other REPRO_* knob)
ENV_SERIES = "REPRO_SERIES"
ENV_SERIES_WINDOW = "REPRO_SERIES_WINDOW"
ENV_SERIES_PROBE_INTERVAL = "REPRO_SERIES_PROBE_INTERVAL"
ENV_SERIES_CHARGE_RATE = "REPRO_SERIES_CHARGE_RATE"

#: attribution source tag for probe charges (component ``monitor`` —
#: a cross-cutting component like ``faults``, so ``repro attrib`` shows
#: monitoring cost as its own G column)
PROBE_SOURCE = ("monitor", "probes", "sample")

#: ledger category probe work is charged to
MONITOR_CATEGORY = "g.monitor"


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MonitorPlan:
    """A run's monitoring configuration (frozen, hashable, JSON-able).

    Attributes
    ----------
    series:
        Record windowed F/G/H streams (the ledger hook).
    window:
        Window width in sim time units; ``0`` derives
        ``horizon / DEFAULT_WINDOW_COUNT``.
    max_windows:
        Memory bound: when a timestamp lands past this many windows the
        width doubles and buckets merge pairwise (lossless in aggregate).
    probe_interval:
        Sim-time period of the in-sim probe sweep; ``0`` disables
        probes.
    charge_rate:
        Time units charged to ``g.monitor`` **per probed entity per
        sweep**.  ``0`` makes probing free (pure observation, results
        bit-identical to probes off); ``> 0`` makes monitoring a real
        overhead the efficiency model sees — and makes the plan part of
        the run-cache key.
    """

    series: bool = False
    window: float = 0.0
    max_windows: int = 256
    probe_interval: float = 0.0
    charge_rate: float = 0.0

    def __post_init__(self) -> None:
        if not (self.window >= 0.0) or self.window == math.inf:
            raise ValueError("window must be finite and >= 0")
        if self.max_windows < 8:
            raise ValueError("max_windows must be >= 8")
        if not (self.probe_interval >= 0.0) or self.probe_interval == math.inf:
            raise ValueError("probe_interval must be finite and >= 0")
        if not (self.charge_rate >= 0.0) or self.charge_rate == math.inf:
            raise ValueError("charge_rate must be finite and >= 0")

    @property
    def is_enabled(self) -> bool:
        """Whether the run records anything at all."""
        return self.series or self.probe_interval > 0.0

    @property
    def is_active(self) -> bool:
        """Whether the plan *changes what the run computes*.

        Only probes with a nonzero charge rate do: they add ``g.monitor``
        charges, so G (and E) differ from an unmonitored run.  Passive
        plans observe without perturbing — the run cache treats them as
        provenance (see ``parallel.hashing.canonical_config``).
        """
        return self.probe_interval > 0.0 and self.charge_rate > 0.0

    def effective_window(self, horizon: float) -> float:
        """The window width actually applied for a given horizon."""
        return self.window if self.window > 0.0 else horizon / DEFAULT_WINDOW_COUNT


def monitor_plan_to_jsonable(plan: MonitorPlan) -> Dict[str, Any]:
    """Flatten a plan to plain JSON types (manifests, CLI round trips)."""
    return {
        "series": bool(plan.series),
        "window": float(plan.window),
        "max_windows": int(plan.max_windows),
        "probe_interval": float(plan.probe_interval),
        "charge_rate": float(plan.charge_rate),
    }


def monitor_plan_from_jsonable(payload: Dict[str, Any]) -> MonitorPlan:
    """Rebuild a plan from :func:`monitor_plan_to_jsonable` output."""
    return MonitorPlan(
        series=bool(payload.get("series", False)),
        window=float(payload.get("window", 0.0)),
        max_windows=int(payload.get("max_windows", 256)),
        probe_interval=float(payload.get("probe_interval", 0.0)),
        charge_rate=float(payload.get("charge_rate", 0.0)),
    )


def resolve_monitor_plan(
    series: Optional[bool] = None,
    window: Optional[float] = None,
    probe_interval: Optional[float] = None,
    charge_rate: Optional[float] = None,
    max_windows: Optional[int] = None,
) -> MonitorPlan:
    """Build a plan from explicit values with environment fallbacks.

    Precedence per field: explicit argument > ``REPRO_SERIES*``
    environment knob > the plan default.  ``REPRO_SERIES=1`` alone
    enables windowed streams with derived defaults.
    """
    from ..envknobs import get_bool, get_float

    series = get_bool(ENV_SERIES, override=series, default=False)
    window = get_float(ENV_SERIES_WINDOW, override=window)
    probe_interval = get_float(ENV_SERIES_PROBE_INTERVAL, override=probe_interval)
    charge_rate = get_float(ENV_SERIES_CHARGE_RATE, override=charge_rate)
    kwargs: Dict[str, Any] = {"series": bool(series)}
    if window is not None:
        kwargs["window"] = float(window)
    if probe_interval is not None:
        kwargs["probe_interval"] = float(probe_interval)
    if charge_rate is not None:
        kwargs["charge_rate"] = float(charge_rate)
    if max_windows is not None:
        kwargs["max_windows"] = int(max_windows)
    return MonitorPlan(**kwargs)


# ---------------------------------------------------------------------------
# Bounded windowed accumulation
# ---------------------------------------------------------------------------

class WindowedSeries:
    """Per-window accumulation with a hard memory bound.

    Two kinds of keys coexist:

    * **sums** (:meth:`add`) — additive quantities (ledger charges);
      each window holds the total charged inside it.
    * **samples** (:meth:`observe`) — gauge readings (queue depths);
      each window holds ``(sum, count)`` so the per-window mean survives
      decimation as a correctly weighted mean.

    When a timestamp lands at or past ``max_windows``, the window width
    doubles and adjacent buckets merge pairwise.  Sums add and counts
    add, so **every aggregate over the full series is invariant** —
    only the resolution halves.  The same decimation rule as the
    bounded :class:`~repro.sim.monitor.SeriesRecorder`, applied to
    buckets instead of raw points.
    """

    __slots__ = ("width", "max_windows", "windows", "_sums", "_ssum", "_scount")

    def __init__(self, width: float, max_windows: int = 256) -> None:
        if not (width > 0.0) or width == math.inf:
            raise ValueError("window width must be finite and positive")
        if max_windows < 8:
            raise ValueError("max_windows must be >= 8")
        self.width = float(width)
        self.max_windows = int(max_windows)
        #: high-water window count (index of the last touched window + 1)
        self.windows = 0
        self._sums: Dict[str, List[float]] = {}
        self._ssum: Dict[str, List[float]] = {}
        self._scount: Dict[str, List[int]] = {}

    # -- internals -------------------------------------------------------
    def _index(self, time: float) -> int:
        # `not (time >= 0)` also rejects NaN; inf would make the
        # width-doubling below diverge, so both are hard errors rather
        # than silent bucket corruption.
        if not (time >= 0.0) or time == math.inf:
            raise ValueError("window time must be finite and nonnegative")
        i = int(time / self.width)
        if i >= self.max_windows:
            # One-shot decimation: at extreme horizons (1e5–1e6-scale
            # runs land timestamps many doublings past the bound) the
            # per-doubling loop would rewrite every bucket array once
            # per doubling.  Compute the needed power-of-two factor on
            # scalars first, then merge every array in a single pass.
            factor = 2
            while int(time / (self.width * factor)) >= self.max_windows:
                factor *= 2
            if not math.isfinite(self.width * factor):
                raise ValueError(
                    f"window time {time!r} would overflow the window width"
                )
            self._decimate(factor)
            i = int(time / self.width)
        if i >= self.windows:
            self.windows = i + 1
        return i

    def _decimate(self, factor: int = 2) -> None:
        """Widen by ``factor`` (a power of two); merge bucket groups.

        Lossless in aggregate: sums add and counts add, exactly as in
        the original pairwise rule (``factor=2`` reproduces it
        bit-for-bit — left-to-right addition from 0.0 equals ``a + b``).
        """
        self.width *= factor
        for store in (self._sums, self._ssum):
            for key, arr in store.items():
                store[key] = [
                    sum(arr[j : j + factor], 0.0)
                    for j in range(0, len(arr), factor)
                ]
        for key, arr in self._scount.items():
            self._scount[key] = [
                sum(arr[j : j + factor], 0)
                for j in range(0, len(arr), factor)
            ]
        self.windows = (self.windows + factor - 1) // factor

    @staticmethod
    def _grow(arr: list, i: int, zero) -> None:
        if len(arr) <= i:
            arr.extend([zero] * (i + 1 - len(arr)))

    # -- recording -------------------------------------------------------
    def add(self, time: float, key: str, amount: float) -> None:
        """Accumulate an additive quantity into ``time``'s window."""
        i = self._index(time)
        arr = self._sums.get(key)
        if arr is None:
            arr = self._sums[key] = []
        self._grow(arr, i, 0.0)
        arr[i] += amount

    def observe(self, time: float, key: str, value: float) -> None:
        """Record one gauge reading into ``time``'s window."""
        i = self._index(time)
        ssum = self._ssum.get(key)
        if ssum is None:
            ssum = self._ssum[key] = []
            self._scount[key] = []
        scount = self._scount[key]
        self._grow(ssum, i, 0.0)
        self._grow(scount, i, 0)
        ssum[i] += value
        scount[i] += 1

    # -- reading ---------------------------------------------------------
    def sums(self, key: str) -> List[float]:
        """Per-window totals for a sum key, padded to ``windows``."""
        arr = self._sums.get(key, [])
        return arr + [0.0] * (self.windows - len(arr))

    def means(self, key: str) -> List[float]:
        """Per-window sample means (``nan`` where nothing was observed)."""
        ssum = self._ssum.get(key, [])
        scount = self._scount.get(key, [])
        out = []
        for i in range(self.windows):
            c = scount[i] if i < len(scount) else 0
            out.append(ssum[i] / c if c else math.nan)
        return out

    def total(self, key: str) -> float:
        """The key's aggregate over every window (decimation-invariant)."""
        return math.fsum(self._sums.get(key, ()))

    def to_jsonable(self) -> Dict[str, Any]:
        """The series as the plain-JSON payload shape (see module doc)."""
        n = self.windows
        return {
            "v": SERIES_VERSION,
            "width": self.width,
            "windows": n,
            "sums": {
                key: arr + [0.0] * (n - len(arr))
                for key, arr in sorted(self._sums.items())
            },
            "samples": {
                key: {
                    "sum": self._ssum[key] + [0.0] * (n - len(self._ssum[key])),
                    "count": self._scount[key]
                    + [0] * (n - len(self._scount[key])),
                }
                for key in sorted(self._ssum)
            },
        }


# ---------------------------------------------------------------------------
# The run-level recorder (ledger hook) and probe sampler
# ---------------------------------------------------------------------------

class RunSeriesRecorder:
    """Buckets every ledger charge into windowed F/G/H streams.

    Keys recorded: ``F`` / ``G`` / ``H`` aggregate streams plus
    ``g:<component>`` per-component G detail (component = the first
    element of the charge's attribution source; untagged G charges fall
    under ``g:untagged``).  Probe gauges land in the same series via
    :class:`ProbeSampler`.
    """

    __slots__ = ("plan", "series", "_sim")

    def __init__(self, plan: MonitorPlan, horizon: float) -> None:
        self.plan = plan
        self.series = WindowedSeries(
            plan.effective_window(horizon), plan.max_windows
        )
        self._sim = None

    def observe_ledger(self, sim: Any, ledger: Any) -> None:
        """Install the windowing observer, chaining any existing one.

        Same contract as the flight recorder's ``observe_ledger``: a
        pre-existing observer keeps seeing every charge.  The hot path
        of unmonitored runs is untouched — their ledger keeps
        ``observer is None``.
        """
        self._sim = sim
        series = self.series
        previous = ledger.observer

        def observe(category: str, amount: float, source) -> None:
            t = sim.now
            prefix = category[0]
            series.add(t, "F" if prefix == "f" else "G" if prefix == "g" else "H", amount)
            if prefix == "g":
                comp = source[0] if source is not None else "untagged"
                series.add(t, "g:" + comp, amount)

        if previous is None:
            ledger.observer = observe
        else:
            def chained(category: str, amount: float, source) -> None:
                observe(category, amount, source)
                previous(category, amount, source)

            ledger.observer = chained

    def payload(self) -> Dict[str, Any]:
        """The run's series as the JSON shape carried by ``RunMetrics``."""
        return self.series.to_jsonable()


class ProbeSampler:
    """Periodic in-sim probe sweep over the managed system.

    Every ``plan.probe_interval`` sim-time units the sampler reads, per
    sweep:

    * ``probe:sched_queue`` — total scheduler message-queue depth;
    * ``probe:sched_inflight`` — dispatches not yet confirmed complete;
    * ``probe:est_queue`` — total estimator message-queue depth;
    * ``probe:staleness`` — mean status-table staleness across
      schedulers (how old the placement view is);
    * ``probe:heartbeat_gap`` — the widest heartbeat silence any
      watching estimator currently sees (fault-detection latency);
    * ``probe:running`` — jobs in service or queued at resources;
    * ``probe:dispatch_latency`` — mean queue-to-service latency of the
      jobs currently running.

    Reads only — no RNG draws, no state mutation — so sampling cannot
    perturb the simulation.  With ``charge_rate > 0`` each sweep charges
    ``charge_rate`` per probed entity to ``g.monitor`` (the zero-rate
    path never calls ``charge``, keeping the attribution dict — and the
    byte-identity contract — untouched, mirroring the message server's
    ``st > 0.0`` guard).
    """

    __slots__ = (
        "sim",
        "plan",
        "recorder",
        "ledger",
        "schedulers",
        "estimators",
        "resources",
        "fluid",
        "_end",
        "_charge",
        "samples",
    )

    def __init__(
        self,
        sim: Any,
        plan: MonitorPlan,
        recorder: RunSeriesRecorder,
        ledger: Any,
        schedulers: Sequence[Any],
        estimators: Sequence[Any],
        resources: Sequence[Any],
        fluid: Optional[Any] = None,
    ) -> None:
        if plan.probe_interval <= 0.0:
            raise ValueError("ProbeSampler needs plan.probe_interval > 0")
        self.sim = sim
        self.plan = plan
        self.recorder = recorder
        self.ledger = ledger
        self.schedulers = list(schedulers)
        self.estimators = list(estimators)
        self.resources = list(resources)
        #: the run's FluidStatusPlane, if the traffic mode is fluid — in
        #: which case sweeps read its O(levels) aggregate taps instead
        #: of touching per-resource/per-leaf state (a 1e5-resource pool
        #: must not pay an O(k) walk per probe).
        self.fluid = fluid
        self._end = math.inf
        # precomputed per-sweep charge: rate x probed entities; in
        # fluid mode the probe reads aggregates, so the charge scales
        # with what is actually read (schedulers, estimators, and the
        # aggregation levels), not with the pool size.
        if fluid is None:
            n_entities = (
                len(self.schedulers) + len(self.estimators) + len(self.resources)
            )
        else:
            n_entities = (
                len(self.schedulers)
                + len(self.estimators)
                + fluid.aggregate_depth
                + 1
            )
        self._charge = plan.charge_rate * n_entities
        #: sweeps executed (diagnostics)
        self.samples = 0

    def arm(self, end: float) -> None:
        """Start sweeping; stop rescheduling once ``end`` is passed."""
        self._end = end
        self.sim.schedule(self.plan.probe_interval, self._sweep)

    def _sweep(self) -> None:
        sim = self.sim
        now = sim.now
        series = self.recorder.series
        self.samples += 1
        fluid = self.fluid

        sched_queue = 0
        inflight = 0
        stale_sum = 0.0
        stale_n = 0
        for sched in self.schedulers:
            sched_queue += sched.queue_length
            inflight += sched.inflight_count
            if fluid is None:
                # mean_staleness walks the table's entries — O(cluster
                # size) per scheduler, an O(k) sweep overall.  Fluid
                # mode refreshes tables synchronously on the flush
                # grid, so staleness is bounded by the flush interval
                # and the walk is skipped rather than paid.
                staleness = (
                    sched.table.mean_staleness(now)
                    if sched.table is not None
                    else math.nan
                )
                if staleness == staleness:  # NaN-safe
                    stale_sum += staleness
                    stale_n += 1
        series.observe(now, "probe:sched_queue", float(sched_queue))
        series.observe(now, "probe:sched_inflight", float(inflight))
        if stale_n:
            series.observe(now, "probe:staleness", stale_sum / stale_n)

        est_queue = 0
        for est in self.estimators:
            est_queue += est.queue_length
        series.observe(now, "probe:est_queue", float(est_queue))
        if fluid is None:
            gap = 0.0
            for est in self.estimators:
                g = est.heartbeat_gap()
                if g == g and g > gap:
                    gap = g
            series.observe(now, "probe:heartbeat_gap", gap)
        else:
            g = fluid.heartbeat_gap()
            series.observe(now, "probe:heartbeat_gap", g if g == g else 0.0)

        if fluid is None:
            running = 0
            latency_sum = 0.0
            latency_n = 0
            for res in self.resources:
                running += res.load
                for job in res.running_jobs():
                    if job.start_service is not None:
                        latency_sum += job.start_service - job.spec.arrival_time
                        latency_n += 1
            series.observe(now, "probe:running", float(running))
            if latency_n:
                series.observe(
                    now, "probe:dispatch_latency", latency_sum / latency_n
                )
        else:
            # Aggregate taps only: total load is maintained O(1) by the
            # plane, pending updates and tree occupancy are O(levels) /
            # O(estimators) — never a per-resource walk.
            series.observe(now, "probe:running", float(fluid.total_load))
            series.observe(now, "probe:fluid_pending", float(fluid.pending_updates))
            series.observe(now, "probe:agg_depth", float(fluid.aggregate_depth))
            series.observe(now, "probe:agg_occupancy", fluid.aggregate_occupancy())

        # Monitoring that costs something is RMS overhead the efficiency
        # model must see; free monitoring must not even touch the ledger
        # cells (a 0.0 cell would break probes-off byte-identity).
        if self._charge > 0.0:
            self.ledger.charge(MONITOR_CATEGORY, self._charge, PROBE_SOURCE)

        nxt = now + self.plan.probe_interval
        if nxt <= self._end:
            sim.schedule(self.plan.probe_interval, self._sweep)


# ---------------------------------------------------------------------------
# Stream analysis: E(t), warmup detection, merging
# ---------------------------------------------------------------------------

def _fgh(payload: Dict[str, Any]) -> Tuple[List[float], List[float], List[float]]:
    n = int(payload["windows"])
    sums = payload.get("sums", {})

    def arr(key: str) -> List[float]:
        a = list(sums.get(key, ()))
        return a + [0.0] * (n - len(a))

    return arr("F"), arr("G"), arr("H")


def efficiency_curve(payload: Dict[str, Any]) -> List[Tuple[float, float, float]]:
    """Per-window ``(window start time, instantaneous e, cumulative E)``.

    Instantaneous ``e`` is the window's own ``F/(F+G+H)`` (``nan`` for
    empty windows); cumulative ``E`` is the run-so-far efficiency —
    the curve the online controller would act on.
    """
    f, g, h = _fgh(payload)
    width = float(payload["width"])
    out: List[Tuple[float, float, float]] = []
    cf = cg = ch = 0.0
    for i in range(int(payload["windows"])):
        cf += f[i]
        cg += g[i]
        ch += h[i]
        wtot = f[i] + g[i] + h[i]
        ctot = cf + cg + ch
        out.append(
            (
                i * width,
                f[i] / wtot if wtot > 0.0 else math.nan,
                cf / ctot if ctot > 0.0 else math.nan,
            )
        )
    return out


def detect_warmup(values: Sequence[float], max_fraction: float = 0.5) -> int:
    """MSER truncation point of a per-window signal.

    Returns the index ``d`` minimizing the standard error of the mean of
    ``values[d:]`` (NaN entries are ignored), searching ``d`` up to
    ``max_fraction`` of the finite sample — the classic
    marginal-standard-error rule for steady-state detection.  Returns
    ``0`` when fewer than four finite values exist (nothing to truncate).
    """
    finite = [(i, v) for i, v in enumerate(values) if v == v]
    n = len(finite)
    if n < 4:
        return 0
    best_d, best_se = 0, math.inf
    limit = max(1, int(n * max_fraction))
    for d in range(limit):
        tail = [v for _, v in finite[d:]]
        m = len(tail)
        mean = sum(tail) / m
        var = sum((x - mean) ** 2 for x in tail) / m
        se = math.sqrt(var / m)
        if se < best_se:
            best_se, best_d = se, d
    return finite[best_d][0]


def steady_state(payload: Dict[str, Any]) -> Dict[str, float]:
    """Warmup-truncated steady-state efficiency of one run's series.

    The warmup point is detected on the instantaneous per-window
    efficiency (MSER); steady-state E is then the aggregate
    ``F/(F+G+H)`` over the post-warmup windows, compared against the
    whole-run (final) E.  Returns::

        {"warmup_windows": d, "warmup_time": d*width,
         "steady_E": ..., "final_E": ..., "rel_error": ...}

    ``rel_error`` is ``|steady - final| / final`` (``nan`` when final E
    is undefined) — the agreement figure the acceptance criterion and
    the CI smoke job check.
    """
    f, g, h = _fgh(payload)
    width = float(payload["width"])
    inst = [
        (f[i] / t if (t := f[i] + g[i] + h[i]) > 0.0 else math.nan)
        for i in range(len(f))
    ]
    d = detect_warmup(inst)
    sf, st = math.fsum(f[d:]), math.fsum(f[d:]) + math.fsum(g[d:]) + math.fsum(h[d:])
    tf, tt = math.fsum(f), math.fsum(f) + math.fsum(g) + math.fsum(h)
    steady = sf / st if st > 0.0 else math.nan
    final = tf / tt if tt > 0.0 else math.nan
    rel = abs(steady - final) / final if final and final == final and steady == steady else math.nan
    return {
        "warmup_windows": float(d),
        "warmup_time": d * width,
        "steady_E": steady,
        "final_E": final,
        "rel_error": rel,
    }


def _resample(arr: Sequence[float], ratio: int, zero) -> list:
    """Merge ``ratio`` consecutive buckets (the decimation rule, k-ary)."""
    return [
        sum(arr[j : j + ratio], zero) for j in range(0, len(arr), ratio)
    ]


def merge_series(payloads: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Align and sum several runs' series into one study-level stream.

    Runs of one study share a base width (derived from the profile
    horizon), but individual runs may have decimated to a power-of-two
    multiple.  Every input is resampled to the **coarsest** width
    present (bucket merging — the lossless decimation rule), then sum
    keys add window-wise and sample keys pool their (sum, count) pairs.
    Raises ``ValueError`` for widths that do not align by an integer
    ratio (series from unrelated configurations).
    """
    if not payloads:
        raise ValueError("merge_series needs at least one payload")
    target = max(float(p["width"]) for p in payloads)
    out_sums: Dict[str, List[float]] = {}
    out_ssum: Dict[str, List[float]] = {}
    out_scount: Dict[str, List[int]] = {}
    windows = 0

    def _merge_into(dst: dict, key: str, arr: list, zero) -> None:
        cur = dst.setdefault(key, [])
        if len(cur) < len(arr):
            cur.extend([zero] * (len(arr) - len(cur)))
        for i, v in enumerate(arr):
            cur[i] += v

    for p in payloads:
        width = float(p["width"])
        ratio = target / width
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError(
                f"cannot align window widths {width} and {target} "
                "(non-integer ratio; series from unrelated configs?)"
            )
        r = int(round(ratio))
        n = (int(p["windows"]) + r - 1) // r
        windows = max(windows, n)
        for key, arr in p.get("sums", {}).items():
            _merge_into(out_sums, key, _resample(arr, r, 0.0), 0.0)
        for key, pair in p.get("samples", {}).items():
            _merge_into(out_ssum, key, _resample(pair["sum"], r, 0.0), 0.0)
            _merge_into(out_scount, key, _resample(pair["count"], r, 0), 0)

    return {
        "v": SERIES_VERSION,
        "width": target,
        "windows": windows,
        "sums": {
            key: arr + [0.0] * (windows - len(arr))
            for key, arr in sorted(out_sums.items())
        },
        "samples": {
            key: {
                "sum": out_ssum[key] + [0.0] * (windows - len(out_ssum[key])),
                "count": out_scount[key] + [0] * (windows - len(out_scount[key])),
            }
            for key in sorted(out_ssum)
        },
    }
