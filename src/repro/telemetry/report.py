"""Render telemetry JSONL files into terminal reports.

These are the readers behind ``repro telemetry {summary,spans,tuner}``:
they load a run directory's ``spans.jsonl`` (tolerating truncated final
lines from killed runs), index spans by id, and render

* :func:`summary_report` — per-span-name aggregates, cache hit rate and
  repairs, simulation event throughput, tuner totals, top metrics;
* :func:`spans_report` — the individual slowest spans;
* :func:`tuner_report` — the annealing convergence trace, one table per
  (RMS, scale): iteration, temperature, objective, achieved E and G,
  accept/reject.

The module depends only on the telemetry record schema — it never
imports the experiments stack, so reports work on any archived
``telemetry/`` directory without constructing a single simulation
object.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .spans import SPANS_FILENAME

__all__ = [
    "TelemetryRun",
    "load_run",
    "resolve_run_dir",
    "summary_report",
    "spans_report",
    "tuner_report",
]


class TelemetryRun:
    """Parsed records of one telemetry directory."""

    def __init__(self, directory: Path, records: List[Dict[str, Any]]) -> None:
        self.directory = directory
        self.records = records
        self.meta: Dict[str, Any] = {}
        self.metrics: Dict[str, Any] = {}
        self.spans: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        self._by_id: Dict[int, Dict[str, Any]] = {}
        for r in records:
            kind = r.get("type")
            if kind == "span":
                self.spans.append(r)
                self._by_id[r["id"]] = r
            elif kind == "event":
                self.events.append(r)
            elif kind == "meta":
                self.meta = r
            elif kind == "metrics":
                self.metrics = r.get("snapshot", {})

    # ------------------------------------------------------------------
    def events_named(self, name: str) -> List[Dict[str, Any]]:
        """Events with the given name, in file order."""
        return [e for e in self.events if e.get("name") == name]

    def spans_named(self, name: str) -> List[Dict[str, Any]]:
        """Spans with the given name, in completion order."""
        return [s for s in self.spans if s.get("name") == name]

    def ancestor_attr(self, record: Dict[str, Any], key: str) -> Optional[Any]:
        """Walk the parent chain for the nearest span attribute ``key``.

        Starts at ``record`` itself (if it is a span with the attr),
        then follows ``parent`` links.  Open (never closed) spans are
        absent from the file, so the chain may end early — that yields
        ``None``, never an error.
        """
        seen = set()
        node: Optional[Dict[str, Any]] = record
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            attrs = node.get("attrs") or {}
            if key in attrs:
                return attrs[key]
            parent = node.get("parent")
            node = self._by_id.get(parent) if parent is not None else None
        return None

    @property
    def duration(self) -> float:
        """Last recorded timestamp (seconds since session start)."""
        ts = [s.get("t1", 0.0) for s in self.spans] + [
            e.get("t", 0.0) for e in self.events
        ]
        return max(ts) if ts else 0.0


def load_run(directory: "str | Path") -> TelemetryRun:
    """Load one telemetry directory's records.

    Unparseable lines (a run killed mid-write leaves at most one) are
    skipped, not fatal.
    """
    directory = Path(directory)
    path = directory / SPANS_FILENAME
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return TelemetryRun(directory, records)


def resolve_run_dir(path: "str | Path") -> Path:
    """The run directory ``path`` denotes.

    ``path`` itself when it directly contains ``spans.jsonl``; otherwise
    the most recently modified child directory that does (so ``repro
    telemetry summary telemetry/`` picks the latest run).
    """
    root = Path(path)
    if (root / SPANS_FILENAME).is_file():
        return root
    candidates = [d for d in root.glob("*/") if (d / SPANS_FILENAME).is_file()]
    if not candidates:
        raise FileNotFoundError(
            f"no {SPANS_FILENAME} under {root} — run with --telemetry "
            "(or REPRO_TELEMETRY=1) first"
        )
    return max(candidates, key=lambda d: (d / SPANS_FILENAME).stat().st_mtime)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]], precision: int = 3) -> str:
    """A minimal aligned text table (kept local: reports must not pull
    in the experiments stack)."""

    def fmt(x: Any) -> str:
        if isinstance(x, bool):
            return "yes" if x else "no"
        if isinstance(x, float):
            return "nan" if x != x else f"{x:.{precision}f}"
        return str(x)

    cells = [[fmt(h) for h in headers]] + [[fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out = []
    for idx, row in enumerate(cells):
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if idx == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def _span_aggregates(run: TelemetryRun) -> List[List[Any]]:
    agg: Dict[str, List[float]] = {}
    for s in run.spans:
        a = agg.setdefault(s["name"], [0, 0.0, 0.0])
        a[0] += 1
        a[1] += s.get("dur", 0.0)
        a[2] = max(a[2], s.get("dur", 0.0))
    rows = [
        [name, int(n), total, total / n if n else math.nan, worst]
        for name, (n, total, worst) in agg.items()
    ]
    rows.sort(key=lambda r: -r[2])
    return rows


def summary_report(run: TelemetryRun) -> str:
    """The run's one-page operational summary."""
    parts = [
        f"telemetry run: {run.directory}",
        f"records: {len(run.spans)} spans, {len(run.events)} events "
        f"(schema {run.meta.get('schema', '?')}, pid {run.meta.get('pid', '?')}, "
        f"{run.duration:.2f}s recorded)",
    ]

    rows = _span_aggregates(run)
    if rows:
        parts.append("\ntime by span (seconds):")
        parts.append(_table(["span", "count", "total", "mean", "max"], rows))

    batches = run.spans_named("engine.batch")
    if batches:
        size = sum(int(b["attrs"].get("size", 0)) for b in batches)
        hits = sum(int(b["attrs"].get("cache_hits", 0)) for b in batches)
        executed = sum(int(b["attrs"].get("executed", 0)) for b in batches)
        repairs = sum(int(b["attrs"].get("cache_repairs", 0)) for b in batches)
        rate = hits / size if size else math.nan
        parts.append(
            f"\nengine: {len(batches)} batches, {size} runs requested, "
            f"{executed} executed, {hits} cache hits "
            f"(hit rate {rate:.1%})" + (f", {repairs} corrupt entries repaired" if repairs else "")
        )

    sims = run.spans_named("sim.run")
    if sims:
        events = sum(int(s["attrs"].get("events", 0)) for s in sims)
        wall = sum(s.get("dur", 0.0) for s in sims)
        rate = events / wall if wall > 0 else math.nan
        parts.append(
            f"simulation: {len(sims)} in-process runs, {events} kernel events, "
            f"{rate:,.0f} events/sec"
        )

    iters = run.events_named("tuner.iteration")
    if iters:
        accepted = sum(1 for e in iters if e["attrs"].get("accepted"))
        parts.append(
            f"tuner: {len(iters)} annealing iterations, "
            f"{accepted} accepted ({accepted / len(iters):.0%}); "
            f"see `repro telemetry tuner`"
        )

    scales = run.events_named("procedure.scale")
    if scales:
        parts.append("\nper-scale ledger snapshots:")
        rows = [
            [
                run.ancestor_attr(e, "rms") or e["attrs"].get("name", "?"),
                e["attrs"].get("scale", math.nan),
                e["attrs"].get("F", math.nan),
                e["attrs"].get("G", math.nan),
                e["attrs"].get("H", math.nan),
                e["attrs"].get("efficiency", math.nan),
                bool(e["attrs"].get("feasible")),
            ]
            for e in scales
        ]
        parts.append(_table(["RMS", "k", "F", "G", "H", "E", "feasible"], rows, precision=1))

    if run.metrics:
        parts.append("\nmetrics snapshot (counters and gauges):")
        rows = [
            [name, snap.get("value")]
            for name, snap in sorted(run.metrics.items())
            if snap.get("type") in ("counter", "gauge")
        ]
        if rows:
            parts.append(_table(["metric", "value"], rows))

    corrupt = run.events_named("cache.corrupt")
    if corrupt:
        parts.append(f"\ncache repairs ({len(corrupt)} corrupt entries recomputed):")
        for e in corrupt[:10]:
            parts.append(f"  {e['attrs'].get('key', '?')}: {e['attrs'].get('error', '?')}")

    return "\n".join(parts)


def spans_report(run: TelemetryRun, top: int = 20, name: Optional[str] = None) -> str:
    """The individual slowest spans, with their attributes."""
    spans = run.spans_named(name) if name else list(run.spans)
    spans.sort(key=lambda s: -s.get("dur", 0.0))
    spans = spans[:top]
    if not spans:
        return "(no spans recorded)"

    def attr_summary(s: Dict[str, Any]) -> str:
        attrs = s.get("attrs") or {}
        text = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        return text if len(text) <= 60 else text[:57] + "..."

    rows = [
        [s["name"], s["id"], s.get("parent") or "-", s.get("t0", 0.0),
         s.get("dur", 0.0), attr_summary(s)]
        for s in spans
    ]
    return _table(["span", "id", "parent", "t0", "dur", "attrs"], rows)


def tuner_report(
    run: TelemetryRun,
    rms: Optional[str] = None,
    scale: Optional[float] = None,
) -> str:
    """The annealing convergence trace, grouped by (RMS, scale)."""
    iters = run.events_named("tuner.iteration")
    if not iters:
        return "(no tuner iterations recorded)"

    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    for e in iters:
        label = run.ancestor_attr(e, "rms") or "?"
        k = e["attrs"].get("scale", math.nan)
        if rms is not None and label != rms:
            continue
        if scale is not None and k != scale:
            continue
        groups.setdefault((str(label), k), []).append(e)
    if not groups:
        return "(no tuner iterations match the filters)"

    results = {
        (str(run.ancestor_attr(e, "rms") or "?"), e["attrs"].get("scale")): e
        for e in run.events_named("tuner.result")
    }

    parts = []
    for (label, k), events in sorted(groups.items(), key=lambda kv: (kv[0][0], kv[0][1])):
        parts.append(f"\n{label} @ k={k:g} — {len(events)} iterations:")
        rows = [
            [
                i + 1,
                e["attrs"].get("temperature", math.nan),
                e["attrs"].get("objective", math.nan),
                e["attrs"].get("efficiency", math.nan),
                e["attrs"].get("G", math.nan),
                bool(e["attrs"].get("accepted")),
                e["attrs"].get("best", math.nan),
            ]
            for i, e in enumerate(events)
        ]
        parts.append(_table(
            ["iter", "T", "J", "E", "G", "accepted", "best J"], rows
        ))
        final = results.get((label, k))
        if final is not None:
            attrs = final["attrs"]
            settings = attrs.get("settings", {})
            knob = ", ".join(f"{n}={v:g}" if isinstance(v, float) else f"{n}={v}"
                             for n, v in sorted(settings.items()))
            parts.append(
                f"  -> y(k): {knob}  (E={attrs.get('efficiency', math.nan):.3f}, "
                f"G={attrs.get('G', math.nan):.1f}, "
                f"feasible={'yes' if attrs.get('feasible') else 'no'})"
            )
    return "\n".join(parts).lstrip("\n")
