"""A process-wide registry of named metrics behind hierarchical scopes.

:class:`MetricsRegistry` is the aggregation point for everything the
instrumented stack counts: engine batches, cache hits and repairs,
simulation event totals, per-run wall-clock histograms.  Collectors are
created on first use and shared by name, so two call sites asking for
``engine.runs`` increment the same counter.

``scope("engine")`` returns a view that prefixes names (``runs`` →
``engine.runs``); scopes nest.  The registry of a *disabled* telemetry
session hands out shared null collectors instead, making every metric
mutation a single no-op method call — the "zero hot-path cost when
disabled" contract.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from .collectors import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullCounter,
    NullGauge,
    NullHistogram,
    NullTally,
    Tally,
    TimeWeighted,
    snapshot_collector,
)

__all__ = ["MetricsRegistry", "MetricsScope"]

_NULL_COUNTER = NullCounter()
_NULL_TALLY = NullTally()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """Named, typed metric collectors, created on first use.

    Parameters
    ----------
    enabled:
        When ``False``, every accessor returns a shared null collector
        and :meth:`snapshot` is empty.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, cls, *args):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {cls.__name__}"
                )
            return existing
        created = cls(name, *args)
        self._metrics[name] = created
        return created

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        if not self.enabled:
            return _NULL_COUNTER
        return self._get(name, Counter)

    def tally(self, name: str) -> Tally:
        """The tally called ``name``."""
        if not self.enabled:
            return _NULL_TALLY
        return self._get(name, Tally)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``."""
        if not self.enabled:
            return _NULL_GAUGE
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called ``name`` (bucket bounds fixed at creation)."""
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get(name, Histogram, buckets)

    def register(self, name: str, collector: Any) -> Any:
        """Adopt an externally built collector (e.g. a simulation
        :class:`~repro.sim.monitor.TimeWeighted`) under ``name``.

        Returns the collector (unchanged) so adoption can be inline.
        A disabled registry adopts nothing.
        """
        if not self.enabled:
            return collector
        if name in self._metrics and self._metrics[name] is not collector:
            raise ValueError(f"metric {name!r} already registered")
        self._metrics[name] = collector
        return collector

    def scope(self, prefix: str) -> "MetricsScope":
        """A view of this registry that prefixes names with ``prefix.``."""
        return MetricsScope(self, prefix)

    # ------------------------------------------------------------------
    def names(self) -> Sequence[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Any]:
        """The collector registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every metric's state as plain JSON-able values, keyed by name."""
        return {name: snapshot_collector(self._metrics[name]) for name in self.names()}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


class MetricsScope:
    """A name-prefixing view of a :class:`MetricsRegistry`.

    ``registry.scope("engine").counter("runs")`` is the registry's
    ``engine.runs`` counter; scopes nest (``scope("a").scope("b")`` →
    ``a.b.*``).
    """

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        self._registry = registry
        self._prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str) -> Counter:
        """The scoped counter ``<prefix>.<name>``."""
        return self._registry.counter(self._name(name))

    def tally(self, name: str) -> Tally:
        """The scoped tally ``<prefix>.<name>``."""
        return self._registry.tally(self._name(name))

    def gauge(self, name: str) -> Gauge:
        """The scoped gauge ``<prefix>.<name>``."""
        return self._registry.gauge(self._name(name))

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The scoped histogram ``<prefix>.<name>``."""
        return self._registry.histogram(self._name(name), buckets)

    def register(self, name: str, collector: Any) -> Any:
        """Adopt ``collector`` as ``<prefix>.<name>``."""
        return self._registry.register(self._name(name), collector)

    def scope(self, prefix: str) -> "MetricsScope":
        """A nested scope ``<prefix>.<sub>``."""
        return MetricsScope(self._registry, self._name(prefix))
