"""Telemetry collectors: gauges and histograms, plus null variants.

The simulation monitors (:mod:`repro.sim.monitor`) cover what a *model*
needs — counters, tallies, time-weighted signals.  Operating the
experiment harness needs two more flavours:

* :class:`Gauge` — a settable instantaneous value (current worker
  count, queue depth at last observation);
* :class:`Histogram` — bucketed distribution of observations (per-run
  wall-clock seconds), with one-pass summary statistics riding along.

Each collector has a ``Null*`` twin exposing the same mutating API as
no-ops.  A disabled :class:`~repro.telemetry.registry.MetricsRegistry`
hands those out, so instrumented code pays a single no-op method call
when telemetry is off — no branching at the call site.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence, Tuple

from ..sim.monitor import Counter, Tally, TimeWeighted

__all__ = [
    "Counter",
    "Tally",
    "TimeWeighted",
    "Gauge",
    "Histogram",
    "NullCounter",
    "NullTally",
    "NullGauge",
    "NullHistogram",
    "DEFAULT_BUCKETS",
    "bucket_quantile",
]

#: default histogram bounds: sub-millisecond .. minutes, log-ish spaced
#: (tuned for wall-clock seconds of simulation runs and engine batches)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)


def bucket_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    overflow: int,
    q: float,
    minimum: float = math.inf,
) -> float:
    """``q``-quantile estimated by linear interpolation within buckets.

    The winning bucket's lower edge is the previous bound (``0`` for the
    first bucket, clamped down to ``minimum`` when observations are
    negative); the estimate interpolates linearly between the edges, so
    an exact bucket boundary still reports the bound itself.  Returns
    ``nan`` when empty and ``inf`` once the target falls past the last
    bound (the histogram cannot resolve the overflow region).
    """
    if not (0.0 <= q <= 1.0):
        raise ValueError("q must be in [0, 1]")
    n = sum(counts) + overflow
    if n == 0:
        return math.nan
    target = q * n
    seen = 0
    lo = min(0.0, minimum) if minimum == minimum else 0.0
    for bound, c in zip(bounds, counts):
        if c:
            if seen + c >= target:
                fraction = (target - seen) / c
                if math.isinf(bound):  # a +inf bucket has no upper edge
                    return lo if fraction == 0.0 else math.inf
                return lo + (bound - lo) * fraction
            seen += c
        lo = bound
    return math.inf


class Gauge:
    """An instantaneous, settable value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = float(value)

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)

    def increment(self, by: float = 1.0) -> None:
        """Shift the gauge by ``by`` (may be negative)."""
        self.value += by

    def decrement(self, by: float = 1.0) -> None:
        """Shift the gauge down by ``by``."""
        self.value -= by

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """Bucketed distribution with one-pass summary statistics.

    Parameters
    ----------
    name:
        Metric name.
    buckets:
        Strictly increasing upper bounds; an observation lands in the
        first bucket whose bound is ``>= x``, or in the overflow.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "_tally")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self._tally = Tally(name)

    def record(self, x: float) -> None:
        """Record one observation."""
        self._tally.record(x)
        for i, bound in enumerate(self.bounds):
            if x <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._tally.count

    @property
    def mean(self) -> float:
        """Sample mean (``nan`` when empty)."""
        return self._tally.mean

    @property
    def min(self) -> float:
        """Smallest observation."""
        return self._tally.min

    @property
    def max(self) -> float:
        """Largest observation."""
        return self._tally.max

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._tally.total

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile, interpolated within buckets.

        Returns ``nan`` when empty; observations past the last bound
        report ``inf`` (the histogram cannot resolve them).  See
        :func:`bucket_quantile` for the interpolation contract.
        """
        return bucket_quantile(self.bounds, self.counts, self.overflow, q, self.min)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:.4g})"


# ---------------------------------------------------------------------------
# Null twins — the disabled-telemetry fast path.
# ---------------------------------------------------------------------------

class NullCounter:
    """No-op :class:`Counter` twin."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def increment(self, by: int = 1) -> None:
        pass


class NullTally:
    """No-op :class:`Tally` twin."""

    __slots__ = ()
    name = "<null>"
    count = 0
    total = 0.0
    mean = math.nan
    variance = math.nan
    std = math.nan
    min = math.inf
    max = -math.inf

    def record(self, x: float) -> None:
        pass


class NullGauge:
    """No-op :class:`Gauge` twin."""

    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def increment(self, by: float = 1.0) -> None:
        pass

    def decrement(self, by: float = 1.0) -> None:
        pass


class NullHistogram:
    """No-op :class:`Histogram` twin."""

    __slots__ = ()
    name = "<null>"
    bounds: Tuple[float, ...] = ()
    counts: List[int] = []
    overflow = 0
    count = 0
    total = 0.0
    mean = math.nan
    min = math.inf
    max = -math.inf

    def record(self, x: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan


def snapshot_collector(c: Any) -> Dict[str, Any]:
    """One collector's state as plain JSON-able values."""
    if isinstance(c, Counter):
        return {"type": "counter", "value": c.value}
    if isinstance(c, Gauge):
        return {"type": "gauge", "value": c.value}
    if isinstance(c, Tally):
        return {
            "type": "tally",
            "count": c.count,
            "total": c.total,
            "mean": c.mean,
            "min": c.min,
            "max": c.max,
            "std": c.std,
        }
    if isinstance(c, Histogram):
        return {
            "type": "histogram",
            "count": c.count,
            "total": c.total,
            "mean": c.mean,
            "min": c.min,
            "max": c.max,
            "p50": c.quantile(0.5),
            "p95": c.quantile(0.95),
            "p99": c.quantile(0.99),
            "buckets": [[b, n] for b, n in zip(c.bounds, c.counts)],
            "overflow": c.overflow,
        }
    if isinstance(c, TimeWeighted):
        return {"type": "time_weighted", "current": c.current}
    raise TypeError(f"unknown collector type {type(c).__name__}")
