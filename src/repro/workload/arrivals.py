"""Job arrival processes.

The paper scales "workload (number of jobs arriving per unit time)" as a
scaling variable in every experimental case, so arrival generation is a
first-class, seedable substrate.  Two processes are provided:

* :class:`PoissonArrivals` — memoryless arrivals at a given rate; the
  standard model for independently submitted supercomputer jobs and the
  one used in all paper-reproduction experiments.
* :class:`BurstyArrivals` — a two-state modulated Poisson process
  (quiet/burst), used by the failure-injection and robustness tests to
  stress scheduler queues beyond what a smooth process produces.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

__all__ = ["PoissonArrivals", "BurstyArrivals"]


class PoissonArrivals:
    """Homogeneous Poisson arrival process.

    Parameters
    ----------
    rate:
        Mean arrivals per time unit (> 0).
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0.0:
            raise ValueError("arrival rate must be positive")
        self.rate = rate

    def times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        """Arrival instants in ``[0, horizon)``, sorted ascending.

        Draws the expected count plus slack in one vectorized pass, then
        trims — ~10x faster than a Python generator loop at the event
        counts the Case-2 experiments reach.
        """
        if horizon <= 0.0:
            return []
        expected = self.rate * horizon
        n_draw = int(expected + 6.0 * np.sqrt(expected) + 16)
        while True:
            gaps = rng.exponential(1.0 / self.rate, size=n_draw)
            t = np.cumsum(gaps)
            if t[-1] >= horizon:
                return t[t < horizon].tolist()
            n_draw *= 2  # astronomically rare; retry with more slack


class BurstyArrivals:
    """Markov-modulated Poisson process with two phases.

    Alternates exponentially distributed *quiet* and *burst* dwell times;
    the burst phase multiplies the base rate by ``burst_factor``.

    Parameters
    ----------
    base_rate:
        Arrival rate in the quiet phase (> 0).
    burst_factor:
        Rate multiplier while bursting (>= 1).
    mean_quiet, mean_burst:
        Mean dwell times of the two phases (> 0).
    """

    def __init__(
        self,
        base_rate: float,
        burst_factor: float = 5.0,
        mean_quiet: float = 500.0,
        mean_burst: float = 100.0,
    ) -> None:
        if base_rate <= 0.0:
            raise ValueError("base_rate must be positive")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if mean_quiet <= 0.0 or mean_burst <= 0.0:
            raise ValueError("phase dwell times must be positive")
        self.base_rate = base_rate
        self.burst_factor = burst_factor
        self.mean_quiet = mean_quiet
        self.mean_burst = mean_burst

    def _phases(self, horizon: float, rng: np.random.Generator) -> Iterator[tuple]:
        """Yield (start, end, rate) phase segments covering [0, horizon)."""
        t = 0.0
        bursting = False
        while t < horizon:
            dwell = rng.exponential(self.mean_burst if bursting else self.mean_quiet)
            rate = self.base_rate * (self.burst_factor if bursting else 1.0)
            end = min(t + dwell, horizon)
            yield t, end, rate
            t = end
            bursting = not bursting

    def times(self, horizon: float, rng: np.random.Generator) -> List[float]:
        """Arrival instants in ``[0, horizon)``, sorted ascending."""
        out: List[float] = []
        for start, end, rate in self._phases(horizon, rng):
            seg = PoissonArrivals(rate).times(end - start, rng)
            out.extend(start + s for s in seg)
        return out
