"""Workloads with inter-job dependencies (paper future work item (b)).

The paper's evaluation assumes independent jobs and explicitly defers
"scenarios where jobs have data dependencies and precedence constraints
among them" to future work, together with using the framework "to
measure the scalability based on the RP overhead H(k)".  This module
implements that extension:

* a :class:`DagWorkloadGenerator` decorates the base synthetic workload
  with precedence edges — each job may depend on a few earlier jobs
  (within a recency window, mimicking pipeline-style campaigns);
* the experiment runner (``SimulationConfig.dependency_prob``) holds a
  dependent job back until all of its parents complete, and charges the
  RP's data-management overhead ``H`` for every cross-cluster
  parent→child edge (the staging cost the paper's H(k) analysis needs).

With dependencies, a placement decision has consequences beyond the
job itself: scattering a pipeline across clusters inflates ``H`` and
delays children — measurable with the same isoefficiency machinery by
reading the ``h`` curve instead of ``g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .generator import JobSpec, WorkloadGenerator

__all__ = ["DagWorkload", "DagWorkloadGenerator"]


@dataclass(frozen=True)
class DagWorkload:
    """A dependency-annotated workload.

    Attributes
    ----------
    jobs:
        The job specs, sorted by arrival time (arrival of a dependent
        job is its *release* time — it may start only after parents
        finish, whichever is later).
    parents:
        ``job_id -> tuple of parent job_ids`` (absent = no parents).
    """

    jobs: List[JobSpec]
    parents: Dict[int, Tuple[int, ...]]

    def children(self) -> Dict[int, Tuple[int, ...]]:
        """The inverse relation: ``job_id -> tuple of child job_ids``."""
        out: Dict[int, List[int]] = {}
        for child, ps in self.parents.items():
            for p in ps:
                out.setdefault(p, []).append(child)
        return {k: tuple(sorted(v)) for k, v in out.items()}

    def validate(self) -> None:
        """Check the DAG contract: parents precede children (by id) and
        every referenced id exists — raises AssertionError otherwise."""
        ids = {j.job_id for j in self.jobs}
        for child, ps in self.parents.items():
            assert child in ids
            assert ps, "empty parent tuples must be omitted"
            for p in ps:
                assert p in ids
                assert p < child, "parents must precede children (acyclicity)"


class DagWorkloadGenerator:
    """Adds precedence edges to a base synthetic workload.

    Parameters
    ----------
    base:
        The independent-jobs generator being decorated.
    dependency_prob:
        Probability that a job depends on at least one predecessor.
    max_parents:
        Upper bound on parents per job (1-2 is pipeline-like; more
        makes join-heavy DAGs).
    window:
        Parents are drawn among the ``window`` most recent jobs, so
        dependency chains reflect temporal locality.
    """

    def __init__(
        self,
        base: WorkloadGenerator,
        dependency_prob: float = 0.3,
        max_parents: int = 2,
        window: int = 10,
    ) -> None:
        if not (0.0 <= dependency_prob <= 1.0):
            raise ValueError("dependency_prob must be in [0, 1]")
        if max_parents < 1:
            raise ValueError("max_parents must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.base = base
        self.dependency_prob = dependency_prob
        self.max_parents = max_parents
        self.window = window

    def generate(self, horizon: float, rng: np.random.Generator) -> DagWorkload:
        """Produce the annotated workload for ``[0, horizon)``."""
        jobs = self.base.generate(horizon, rng)
        parents: Dict[int, Tuple[int, ...]] = {}
        for i, job in enumerate(jobs):
            if i == 0 or rng.random() >= self.dependency_prob:
                continue
            lo = max(0, i - self.window)
            pool = [jobs[j].job_id for j in range(lo, i)]
            n = int(rng.integers(1, min(self.max_parents, len(pool)) + 1))
            chosen = rng.choice(len(pool), size=n, replace=False)
            parents[job.job_id] = tuple(sorted(pool[c] for c in chosen))
        dag = DagWorkload(jobs=jobs, parents=parents)
        dag.validate()
        return dag
