"""Workload synthesis: the stream of jobs driving a simulation run.

A :class:`JobSpec` is the immutable description of one job as the
workload model produced it — the paper's per-job attributes: arrival
instant, partition size (fixed at 1), execution time, requested time,
and cancellation possibility (fixed at 0), plus the user-benefit factor
``u ~ U[2, 5]`` from Table 1 (``U_b = u * runtime``) and the submission
cluster.

Classification (paper §3.1): jobs with execution time ``<= T_CPU`` are
LOCAL (must run at/near the submission point); longer jobs are REMOTE
(eligible for remote execution).  Because the study models no inter-job
data transfers, job size is the *only* locality constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .arrivals import PoissonArrivals
from .runtimes import RuntimeModel

__all__ = ["JobSpec", "JobClass", "WorkloadGenerator"]


class JobClass:
    """Job locality classes (paper §3.1)."""

    LOCAL = "LOCAL"
    REMOTE = "REMOTE"


@dataclass(frozen=True)
class JobSpec:
    """Immutable workload-model description of one job.

    Attributes
    ----------
    job_id:
        Dense index within the run's workload.
    arrival_time:
        Submission instant (time units).
    execution_time:
        True service demand at a unit-rate resource.
    requested_time:
        User's upper-bound estimate (``>= execution_time``).
    benefit_factor:
        ``u`` in ``U_b = u * execution_time`` — the job succeeds only if
        its response time is within ``U_b`` (Table 1: ``u ~ U[2, 5]``).
    submit_cluster:
        Cluster (scheduler id) where the job is submitted.
    job_class:
        ``JobClass.LOCAL`` or ``JobClass.REMOTE`` per the T_CPU rule.
    partition_size:
        Processors used; fixed at 1 in this study.
    """

    job_id: int
    arrival_time: float
    execution_time: float
    requested_time: float
    benefit_factor: float
    submit_cluster: int
    job_class: str
    partition_size: int = 1

    @property
    def benefit_bound(self) -> float:
        """``U_b``: the response-time bound for a successful execution."""
        return self.benefit_factor * self.execution_time


class WorkloadGenerator:
    """Generates the full job stream for one simulation run.

    Parameters
    ----------
    rate:
        System-wide job arrival rate (jobs per time unit) — the "workload"
        scaling variable of Tables 2–5.
    n_clusters:
        Number of submission points; each job picks one uniformly.
    runtime_model:
        Execution/requested time model.
    t_cpu:
        LOCAL/REMOTE classification threshold (Table 1: 700).
    benefit_lo, benefit_hi:
        Range of the user benefit factor (Table 1: [2, 5]).
    """

    def __init__(
        self,
        rate: float,
        n_clusters: int,
        runtime_model: RuntimeModel | None = None,
        t_cpu: float = 700.0,
        benefit_lo: float = 2.0,
        benefit_hi: float = 5.0,
        max_partition: int = 1,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("need at least one cluster")
        if t_cpu <= 0.0:
            raise ValueError("t_cpu must be positive")
        if not (0.0 < benefit_lo <= benefit_hi):
            raise ValueError("benefit range must satisfy 0 < lo <= hi")
        if max_partition < 1:
            raise ValueError("max_partition must be >= 1")
        self.arrivals = PoissonArrivals(rate)
        self.n_clusters = n_clusters
        self.runtime_model = runtime_model if runtime_model is not None else RuntimeModel()
        self.t_cpu = t_cpu
        self.benefit_lo = benefit_lo
        self.benefit_hi = benefit_hi
        #: largest moldable partition request.  The paper fixes this at
        #: 1; larger values draw power-of-two partitions (the dominant
        #: request shape in Cirne-Berman's trace fits).
        self.max_partition = max_partition

    def generate(self, horizon: float, rng: np.random.Generator) -> List[JobSpec]:
        """Produce the sorted job stream for ``[0, horizon)``.

        All sampling is vectorized; a Case-2 run at scale 6 generates
        tens of thousands of jobs in milliseconds.
        """
        times = self.arrivals.times(horizon, rng)
        n = len(times)
        if n == 0:
            return []
        runtimes = self.runtime_model.sample_runtimes(n, rng)
        requested = self.runtime_model.sample_requested(runtimes, rng)
        benefits = rng.uniform(self.benefit_lo, self.benefit_hi, size=n)
        clusters = rng.integers(0, self.n_clusters, size=n)
        if self.max_partition > 1:
            # Power-of-two partitions: 2^U with U uniform over the
            # feasible exponents (Cirne-Berman's dominant request shape).
            max_exp = int(np.floor(np.log2(self.max_partition)))
            exps = rng.integers(0, max_exp + 1, size=n)
            partitions = np.minimum(2**exps, self.max_partition)
        else:
            partitions = np.ones(n, dtype=int)
        jobs = [
            JobSpec(
                job_id=i,
                arrival_time=float(times[i]),
                execution_time=float(runtimes[i]),
                requested_time=float(requested[i]),
                benefit_factor=float(benefits[i]),
                submit_cluster=int(clusters[i]),
                job_class=(
                    JobClass.LOCAL if runtimes[i] <= self.t_cpu else JobClass.REMOTE
                ),
                partition_size=int(partitions[i]),
            )
            for i in range(n)
        ]
        return jobs

    def offered_load(self, horizon: float) -> float:
        """Expected total service demand offered over ``[0, horizon)``.

        ``rate * horizon * E[runtime]`` — used by experiments to size
        resource pools so base configurations operate at a feasible
        utilization.
        """
        return self.arrivals.rate * horizon * self.runtime_model.mean
