"""Execution-time and requested-time models.

The paper draws its synthetic workloads from the Cirne–Berman model of
parallel *moldable* supercomputer jobs, restricted to: partition size 1,
zero cancellation probability, an execution time, and a requested time
acting as an upper bound on execution time.  What remains of the model
is therefore the marginal runtime distribution and the requested-time
overestimate — both reproduced here:

* **Runtimes** are lognormal.  Supercomputer-workload studies (including
  Cirne–Berman's own fits to SDSC traces) consistently find heavy-tailed,
  approximately lognormal job runtimes.  The default parameters put the
  median near 430 time units so that, with the paper's ``T_CPU = 700``
  threshold, roughly 35–40% of jobs classify as REMOTE — enough of both
  classes to exercise every protocol path.
* **Requested times** multiply the true runtime by a uniform
  overestimation factor (users pad their estimates), again as observed
  in the trace literature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RuntimeModel"]


@dataclass(frozen=True)
class RuntimeModel:
    """Lognormal runtime model with uniform request-padding.

    Attributes
    ----------
    median:
        Median execution time (time units); the lognormal ``mu`` is
        ``log(median)``.
    sigma:
        Lognormal shape parameter; larger means heavier tail.
    min_runtime:
        Floor on execution times (degenerate zero-length jobs break
        utilization accounting).
    request_pad_lo, request_pad_hi:
        Uniform range of the requested-time overestimation factor
        (``requested = factor * runtime``, factor >= 1).
    """

    median: float = 430.0
    sigma: float = 1.1
    min_runtime: float = 1.0
    request_pad_lo: float = 1.2
    request_pad_hi: float = 3.0

    def __post_init__(self) -> None:
        if self.median <= 0.0:
            raise ValueError("median runtime must be positive")
        if self.sigma <= 0.0:
            raise ValueError("sigma must be positive")
        if self.min_runtime <= 0.0:
            raise ValueError("min_runtime must be positive")
        if not (1.0 <= self.request_pad_lo <= self.request_pad_hi):
            raise ValueError("request padding must satisfy 1 <= lo <= hi")

    @property
    def mean(self) -> float:
        """Mean of the (unclipped) lognormal runtime distribution."""
        return self.median * math.exp(self.sigma**2 / 2.0)

    def sample_runtimes(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` execution times (vectorized)."""
        if n < 0:
            raise ValueError("n must be nonnegative")
        x = rng.lognormal(mean=math.log(self.median), sigma=self.sigma, size=n)
        return np.maximum(x, self.min_runtime)

    def sample_requested(
        self, runtimes: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Requested times for given runtimes: ``factor * runtime`` with
        ``factor ~ U[pad_lo, pad_hi]`` — always an upper bound."""
        factors = rng.uniform(self.request_pad_lo, self.request_pad_hi, size=len(runtimes))
        return factors * np.asarray(runtimes)

    def remote_fraction(self, t_cpu: float) -> float:
        """Analytic fraction of jobs with runtime > ``t_cpu`` (REMOTE).

        Ignores the ``min_runtime`` clip, which is far below ``t_cpu``
        for any sane parameterization.  Used by tests and by experiment
        planning to sanity-check the LOCAL/REMOTE mix.
        """
        if t_cpu <= 0.0:
            return 1.0
        z = (math.log(t_cpu) - math.log(self.median)) / self.sigma
        return 0.5 * math.erfc(z / math.sqrt(2.0))
