"""Synthetic supercomputer workloads (Cirne–Berman substitute)."""

from .arrivals import BurstyArrivals, PoissonArrivals
from .dags import DagWorkload, DagWorkloadGenerator
from .generator import JobClass, JobSpec, WorkloadGenerator
from .runtimes import RuntimeModel

__all__ = [
    "BurstyArrivals",
    "DagWorkload",
    "DagWorkloadGenerator",
    "JobClass",
    "JobSpec",
    "PoissonArrivals",
    "RuntimeModel",
    "WorkloadGenerator",
]
