"""Fault injection and recovery: the :class:`FaultPlan` public API.

``repro.faults`` makes resource churn, scheduler blackouts, and link
degradation first-class, deterministic experiment inputs.  A
:class:`FaultPlan` rides on
:class:`~repro.experiments.config.SimulationConfig` (and therefore on
the run-cache key); :class:`FaultInjector` compiles it into timed
simulator events at build time.  Recovery costs — heartbeat sweeps,
dead-resource processing, job re-dispatch — are charged to ``G`` under
the ``g.faults`` attribution category, so churn shows up directly in
``repro attrib`` and the isoefficiency procedure.
"""

from .injector import FaultInjector
from .plan import (
    Blackout,
    CrashEvent,
    DegradationWindow,
    FaultPlan,
    plan_from_jsonable,
    plan_to_jsonable,
)

__all__ = [
    "Blackout",
    "CrashEvent",
    "DegradationWindow",
    "FaultInjector",
    "FaultPlan",
    "plan_from_jsonable",
    "plan_to_jsonable",
]
