"""Deterministic fault injector: turns a :class:`FaultPlan` into timed
simulator events.

The injector is pure orchestration — it owns no failure semantics.  It
schedules calls into the substrate (``Resource.fail``/``repair``,
``MessageServer.pause``/``resume`` on schedulers,
``Network.push_degradation``/``pop_degradation``) at instants computed
up front in :meth:`FaultInjector.arm`:

* explicit :class:`~repro.faults.plan.CrashEvent` /
  :class:`~repro.faults.plan.Blackout` /
  :class:`~repro.faults.plan.DegradationWindow` timelines verbatim
  (entity ids taken modulo the pool size so plans survive scale walks);
* stochastic churn as alternating exponential up/down spans drawn from
  the run's dedicated ``"faults"`` RNG stream *before* the run starts,
  so the draw order is a function of the config alone — never of
  simulation interleaving.

Every fired fault appends a JSON-ready record to :attr:`events` (the
CLI's fault-event JSONL export), emits a telemetry event, and feeds the
flight recorder's fault ring.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..telemetry import flightrec as _flightrec
from ..telemetry.spans import current as _telemetry
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules the faults of one plan onto one built system.

    Parameters
    ----------
    sim:
        The run's simulator.
    plan:
        The fault schedule.
    resources / schedulers:
        The built pool (crash/blackout subjects, indexed by id).
    network:
        The transport degradation windows modulate.
    """

    def __init__(self, sim, plan: FaultPlan, resources: Sequence, schedulers: Sequence, network) -> None:
        self.sim = sim
        self.plan = plan
        self.resources = list(resources)
        self.schedulers = list(schedulers)
        self.network = network
        #: JSON-ready fired-fault records, in firing order
        self.events: List[Dict[str, Any]] = []
        self.crashes = 0
        self.recoveries = 0
        self.blackouts = 0
        self.degradations = 0
        self._armed = False
        self._recover_until = float("inf")

    # -- timeline construction ----------------------------------------------
    def arm(self, end: float, rng=None, recover_until: Optional[float] = None) -> None:
        """Schedule every fault with an *onset* instant in ``[0, end)``.

        ``recover_until`` bounds recovery instants (crash repairs,
        blackout ends, degradation ends); it defaults to ``end``.  The
        runner passes ``end=horizon`` and ``recover_until=horizon+drain``
        so fault injection stops with the workload while repairs keep
        landing through the drain — otherwise churn during the drain
        could strand a re-dispatched job past the end of the run.

        ``rng`` is required iff the plan has stochastic churn
        (``resource_mttf`` set); explicit timelines are deterministic
        without it.  Churn draws happen here, eagerly and in resource-id
        order, so the stream consumption is reproducible.
        """
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        if recover_until is None:
            recover_until = end
        self._recover_until = recover_until
        plan = self.plan

        for crash in plan.crashes:
            if not self.resources:
                break
            rid = crash.resource % len(self.resources)
            self._arm_outage(rid, crash.at, crash.duration, end)

        if plan.has_churn:
            if rng is None:
                raise ValueError("stochastic churn requires an rng")
            self._arm_churn(end, rng)

        for blackout in plan.blackouts:
            if not self.schedulers:
                break
            sid = blackout.scheduler % len(self.schedulers)
            if blackout.at >= end:
                continue
            self.sim.schedule_at(blackout.at, self._blackout_start, sid, blackout.duration)
            self.sim.schedule_at(
                min(recover_until, blackout.at + blackout.duration),
                self._blackout_end,
                sid,
            )

        for window in plan.degradations:
            if window.at >= end:
                continue
            self.sim.schedule_at(window.at, self._degrade_start, window)
            self.sim.schedule_at(
                min(recover_until, window.at + window.duration),
                self._degrade_end,
                window,
            )

    def _arm_churn(self, end: float, rng) -> None:
        plan = self.plan
        mttf = plan.resource_mttf
        mttr = plan.effective_mttr
        n = len(self.resources)
        subjects = list(range(n))
        if plan.churn_fraction < 1.0 and n > 0:
            count = max(1, int(round(plan.churn_fraction * n)))
            chosen = rng.choice(n, size=count, replace=False)
            subjects = sorted(int(r) for r in chosen)
        for rid in subjects:
            t = float(rng.exponential(mttf))
            while t < end:
                down = float(rng.exponential(mttr))
                self._arm_outage(rid, t, down, end)
                t += down + float(rng.exponential(mttf))

    def _arm_outage(self, rid: int, at: float, duration: float, end: float) -> None:
        if at >= end:
            return
        self.sim.schedule_at(at, self._crash, rid)
        recover_at = at + duration
        if recover_at < self._recover_until:
            self.sim.schedule_at(recover_at, self._recover, rid)

    # -- firing callbacks -----------------------------------------------------
    def _record(self, kind: str, **fields: Any) -> None:
        entry: Dict[str, Any] = {"t": self.sim.now, "kind": kind}
        entry.update(fields)
        self.events.append(entry)
        _telemetry().event(f"fault.{kind}", t=self.sim.now, **fields)
        rec = _flightrec.current()
        if rec is not None:
            rec.fault_event(kind, t=self.sim.now, **fields)

    def _crash(self, rid: int) -> None:
        res = self.resources[rid]
        if res.failed:
            return
        killed = res.fail()
        self.crashes += 1
        self._record("crash", resource=rid, cluster=res.cluster_id, jobs_killed=killed)

    def _recover(self, rid: int) -> None:
        res = self.resources[rid]
        if not res.failed:
            return
        res.repair()
        self.recoveries += 1
        self._record("recover", resource=rid, cluster=res.cluster_id)

    def _blackout_start(self, sid: int, duration: float) -> None:
        self.schedulers[sid].pause()
        self.blackouts += 1
        self._record("blackout", scheduler=sid, duration=duration)

    def _blackout_end(self, sid: int) -> None:
        self.schedulers[sid].resume()
        self._record("blackout_end", scheduler=sid)

    def _degrade_start(self, window) -> None:
        self.network.push_degradation(
            extra_loss=window.extra_loss, delay_factor=window.delay_factor
        )
        self.degradations += 1
        self._record(
            "degrade",
            extra_loss=window.extra_loss,
            delay_factor=window.delay_factor,
            duration=window.duration,
        )

    def _degrade_end(self, window) -> None:
        self.network.pop_degradation(
            extra_loss=window.extra_loss, delay_factor=window.delay_factor
        )
        self._record("degrade_end", extra_loss=window.extra_loss, delay_factor=window.delay_factor)

    # -- reporting -------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Injection counters (merged into ``RunMetrics.fault_stats``)."""
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "blackouts": self.blackouts,
            "degradations": self.degradations,
        }
