"""The :class:`FaultPlan` public API: one declarative description of
every fault a run injects.

The paper's model assumes a static resource pool; real Grids are
defined by churn.  A ``FaultPlan`` consolidates every failure knob the
substrate supports into a single frozen dataclass that rides on
:class:`~repro.experiments.config.SimulationConfig` (and is therefore
hashed into the run-cache key):

* **link loss** — the transport's control-plane message-loss
  probability (successor of the deprecated
  ``SimulationConfig.loss_probability`` knob);
* **resource churn** — crash/recover cycles, either stochastic
  (exponential MTTF/MTTR drawn from the run's deterministic RNG) or an
  explicit :class:`CrashEvent` timeline;
* **scheduler blackouts** — windows during which a scheduler stops
  processing messages (they queue; nothing is lost);
* **link degradation windows** — time intervals that add loss and/or
  scale delays on top of the base transport knobs.

Everything is deterministic: stochastic churn derives from the run's
root seed (the ``"faults"`` stream), so two runs of the same config are
bit-for-bit identical, and the default ``FaultPlan()`` is *inert* — it
arms no machinery, draws no random numbers, and leaves every zero-fault
run byte-identical to a build without the subsystem.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "Blackout",
    "CrashEvent",
    "DegradationWindow",
    "FaultPlan",
    "plan_from_jsonable",
    "plan_to_jsonable",
]


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled resource crash.

    Attributes
    ----------
    resource:
        Resource id (taken modulo the pool size at build time, so an
        explicit timeline stays usable across scale factors).
    at:
        Simulated crash instant.
    duration:
        Downtime; ``inf`` (or any non-positive-recovery value ≥ the
        run length) means the resource never comes back.
    """

    resource: int
    at: float
    duration: float = float("inf")

    def __post_init__(self) -> None:
        if self.resource < 0:
            raise ValueError("resource id must be nonnegative")
        if self.at < 0.0:
            raise ValueError("crash time must be nonnegative")
        if not self.duration > 0.0:
            raise ValueError("crash duration must be positive")


@dataclass(frozen=True)
class Blackout:
    """A window during which one scheduler processes no messages.

    Deliveries during the window queue at the scheduler and are served
    when it resumes — modeling a hung/overloaded manager node rather
    than a lossy one.
    """

    scheduler: int
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.scheduler < 0:
            raise ValueError("scheduler id must be nonnegative")
        if self.at < 0.0:
            raise ValueError("blackout time must be nonnegative")
        if not self.duration > 0.0:
            raise ValueError("blackout duration must be positive")


@dataclass(frozen=True)
class DegradationWindow:
    """A time window of degraded transport.

    While active, ``extra_loss`` adds to the control-plane loss
    probability and every transit delay is multiplied by
    ``delay_factor`` — modulating the existing loss/delay knobs rather
    than replacing them.
    """

    at: float
    duration: float
    extra_loss: float = 0.0
    delay_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0.0:
            raise ValueError("window start must be nonnegative")
        if not self.duration > 0.0:
            raise ValueError("window duration must be positive")
        if not (0.0 <= self.extra_loss < 1.0):
            raise ValueError("extra_loss must be in [0, 1)")
        if self.delay_factor <= 0.0:
            raise ValueError("delay_factor must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault schedule of one run (inert by default).

    Attributes
    ----------
    link_loss:
        Control-plane message-loss probability (the job plane stays
        reliable; see :mod:`repro.network.transport`).  Successor of
        the deprecated ``SimulationConfig.loss_probability``.
    resource_mttf / resource_mttr:
        Exponential mean time to failure / to repair for stochastic
        resource churn.  ``resource_mttr=None`` derives MTTR as one
        tenth of MTTF.  ``resource_mttf=None`` disables churn.
    churn_fraction:
        Fraction of the resource pool subject to churn (chosen
        deterministically from the run RNG).
    crashes / blackouts / degradations:
        Explicit fault timelines (applied in addition to churn).
    heartbeat_timeout:
        Silence span after which an estimator declares a resource
        dead.  ``None`` derives ``4.5 x update_interval`` — safely
        beyond the resource keepalive span (3 intervals), so a healthy
        quiet resource is never declared dead.
    heartbeat_interval:
        Estimator liveness-sweep period (``None``: the update
        interval).
    redispatch_backoff / redispatch_cap:
        Capped exponential backoff for job re-dispatch after a crash:
        the n-th retry of a job waits ``min(backoff * 2**n, cap)``.
    """

    link_loss: float = 0.0
    resource_mttf: Optional[float] = None
    resource_mttr: Optional[float] = None
    churn_fraction: float = 1.0
    crashes: Tuple[CrashEvent, ...] = ()
    blackouts: Tuple[Blackout, ...] = ()
    degradations: Tuple[DegradationWindow, ...] = ()
    heartbeat_timeout: Optional[float] = None
    heartbeat_interval: Optional[float] = None
    redispatch_backoff: float = 20.0
    redispatch_cap: float = 320.0

    def __post_init__(self) -> None:
        # Tolerate lists from JSON plan files; canonicalize to tuples.
        for name, cls in (
            ("crashes", CrashEvent),
            ("blackouts", Blackout),
            ("degradations", DegradationWindow),
        ):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
                value = getattr(self, name)
            for item in value:
                if not isinstance(item, cls):
                    raise TypeError(f"{name} must contain {cls.__name__} items")
        if not (0.0 <= self.link_loss < 1.0):
            raise ValueError("link_loss must be in [0, 1)")
        if self.resource_mttf is not None and self.resource_mttf <= 0.0:
            raise ValueError("resource_mttf must be positive")
        if self.resource_mttr is not None and self.resource_mttr <= 0.0:
            raise ValueError("resource_mttr must be positive")
        if not (0.0 < self.churn_fraction <= 1.0):
            raise ValueError("churn_fraction must be in (0, 1]")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0.0:
            raise ValueError("heartbeat_timeout must be positive")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0.0:
            raise ValueError("heartbeat_interval must be positive")
        if self.redispatch_backoff <= 0.0 or self.redispatch_cap <= 0.0:
            raise ValueError("re-dispatch backoff parameters must be positive")

    # -- predicates (gate what the builder arms) ------------------------
    @property
    def has_churn(self) -> bool:
        """Whether stochastic crash/recover cycles are requested."""
        return self.resource_mttf is not None

    @property
    def has_resource_faults(self) -> bool:
        """Whether any resource can crash (churn or explicit timeline)."""
        return self.has_churn or bool(self.crashes)

    @property
    def any_link_loss(self) -> bool:
        """Whether any message can ever be dropped (base or windowed)."""
        return self.link_loss > 0.0 or any(
            w.extra_loss > 0.0 for w in self.degradations
        )

    @property
    def is_inert(self) -> bool:
        """True iff the plan injects nothing at all (the default)."""
        return not (
            self.any_link_loss
            or self.has_resource_faults
            or self.blackouts
            or self.degradations
        )

    # -- derived settings -------------------------------------------------
    @property
    def effective_mttr(self) -> float:
        """The repair mean actually applied (default: MTTF / 10)."""
        if self.resource_mttr is not None:
            return self.resource_mttr
        if self.resource_mttf is None:
            raise ValueError("no churn configured")
        return self.resource_mttf / 10.0

    def effective_heartbeat_timeout(self, update_interval: float) -> float:
        """Dead-declaration silence span under ``update_interval``."""
        if self.heartbeat_timeout is not None:
            return self.heartbeat_timeout
        return 4.5 * update_interval

    def effective_heartbeat_interval(self, update_interval: float) -> float:
        """Estimator liveness-sweep period under ``update_interval``."""
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return update_interval


# ---------------------------------------------------------------------------
# JSON (de)serialization — the CLI's ``--fault-plan FILE`` format
# ---------------------------------------------------------------------------

def plan_to_jsonable(plan: FaultPlan) -> Dict[str, Any]:
    """The plan as plain JSON types (inverse of :func:`plan_from_jsonable`)."""
    out = dataclasses.asdict(plan)
    for name in ("crashes", "blackouts", "degradations"):
        out[name] = [dict(item) for item in out[name]]
    return out


def plan_from_jsonable(payload: Dict[str, Any]) -> FaultPlan:
    """Build a :class:`FaultPlan` from a JSON dict (unknown keys rejected)."""
    if not isinstance(payload, dict):
        raise TypeError("a fault plan must be a JSON object")
    known = {f.name for f in dataclasses.fields(FaultPlan)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
    kwargs = dict(payload)
    for name, cls in (
        ("crashes", CrashEvent),
        ("blackouts", Blackout),
        ("degradations", DegradationWindow),
    ):
        if name in kwargs:
            kwargs[name] = tuple(
                item if isinstance(item, cls) else cls(**item)
                for item in kwargs[name]
            )
    return FaultPlan(**kwargs)
