"""Deterministic named random-number streams.

Scalability measurement compares *the same* workload and topology across
many RMS designs and enabler settings, so variance control matters: the
arrival process must not change because a scheduler happened to draw one
extra random number.  :class:`RngHub` therefore hands out an independent
``numpy.random.Generator`` per named stream, derived from a single root
seed via ``SeedSequence.spawn``-style keying.  Streams with the same name
under the same root seed always produce identical sequences, regardless
of creation order or of what other streams consumed.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngHub"]


class RngHub:
    """Factory for deterministic, independent named random streams.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation run.

    Examples
    --------
    >>> hub = RngHub(42)
    >>> a1 = hub.stream("arrivals").random()
    >>> hub2 = RngHub(42)
    >>> _ = hub2.stream("topology")   # creation order does not matter
    >>> a2 = hub2.stream("arrivals").random()
    >>> a1 == a2
    True
    """

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @staticmethod
    def _key(name: str) -> int:
        """Stable 32-bit key for a stream name.

        ``zlib.crc32`` is used instead of ``hash`` because the latter is
        salted per interpreter process and would break reproducibility.
        """
        return zlib.crc32(name.encode("utf-8"))

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields the same sequence.
        """
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(self._key(name),))
            gen = np.random.Generator(np.random.PCG64(ss))
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngHub":
        """Derive a new hub whose streams are independent of this one.

        Used when the same base configuration is simulated repeatedly with
        different replications (e.g. annealing probes that should share the
        workload but vary protocol jitter use the same hub; independent
        replications use forks).
        """
        return RngHub((self.seed * 1_000_003 + salt) & 0x7FFF_FFFF_FFFF_FFFF)
