"""Statistics collection for simulation runs.

Three collector flavours cover everything the experiments need:

* :class:`Counter` — monotone event counts (jobs submitted, messages sent).
* :class:`Tally` — sample statistics of observations (response times),
  with numerically stable one-pass mean/variance (Welford).
* :class:`TimeWeighted` — time-averaged piecewise-constant signals
  (queue lengths, resource utilization).
* :class:`SeriesRecorder` — raw ``(time, value)`` traces for plots.

These mirror the instrumentation a Parsec model would carry, and they are
what :class:`repro.experiments.runner` aggregates into ``RunMetrics``.
"""

from __future__ import annotations

import math
from typing import List, Tuple

__all__ = ["Counter", "Tally", "TimeWeighted", "SeriesRecorder"]


class Counter:
    """A monotone nonnegative event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (must be nonnegative) to the counter."""
        if by < 0:
            raise ValueError("Counter.increment requires a nonnegative amount")
        self.value += by

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Tally:
    """One-pass sample statistics over recorded observations.

    Uses Welford's algorithm so mean and variance are stable even for
    millions of observations with large magnitudes.
    """

    __slots__ = ("name", "count", "_mean", "_m2", "min", "max", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def record(self, x: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        """Sample mean, ``nan`` if no observations were recorded."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``nan`` for fewer than 2 samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tally({self.name}: n={self.count}, mean={self.mean:.4g})"


class TimeWeighted:
    """Time-average of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; the value in effect
    between updates is integrated against elapsed simulated time.
    """

    __slots__ = ("name", "_last_time", "_last_value", "_area", "_start")

    def __init__(self, name: str, time: float = 0.0, value: float = 0.0) -> None:
        self.name = name
        self._start = time
        self._last_time = time
        self._last_value = value
        self._area = 0.0

    def update(self, time: float, value: float) -> None:
        """Record that the signal takes ``value`` from ``time`` onward."""
        if time < self._last_time:
            raise ValueError("TimeWeighted.update times must be nondecreasing")
        self._area += self._last_value * (time - self._last_time)
        self._last_time = time
        self._last_value = value

    def mean(self, now: float) -> float:
        """Time-average of the signal over ``[start, now]``."""
        span = now - self._start
        if span <= 0.0:
            return self._last_value
        area = self._area + self._last_value * (now - self._last_time)
        return area / span

    @property
    def current(self) -> float:
        """The most recently recorded signal value."""
        return self._last_value


class SeriesRecorder:
    """``(time, value)`` trace with an optional memory bound.

    Unbounded by default (every sample kept verbatim).  With
    ``max_points`` set, reaching the bound doubles the recorder's
    *stride* and drops every other retained point: a long run keeps at
    most ``max_points`` samples, evenly thinned across its whole span
    rather than truncated at either end.  Stride doubling keeps indices
    aligned across decimations, so the retained points are always every
    ``stride``-th original sample.
    """

    __slots__ = ("name", "times", "values", "max_points", "stride", "_skip")

    def __init__(self, name: str, max_points: int = 0) -> None:
        if max_points < 0:
            raise ValueError("max_points must be >= 0 (0 = unbounded)")
        if 0 < max_points < 2:
            raise ValueError("a bounded recorder needs max_points >= 2")
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []
        self.max_points = max_points
        #: every ``stride``-th offered sample is retained (1 = all)
        self.stride = 1
        self._skip = 0

    def record(self, time: float, value: float) -> None:
        """Offer one sample (kept or skipped per the current stride)."""
        if self._skip:
            self._skip -= 1
            return
        self._skip = self.stride - 1
        self.times.append(time)
        self.values.append(value)
        if self.max_points and len(self.times) >= self.max_points:
            self.times = self.times[::2]
            self.values = self.values[::2]
            self.stride *= 2
            # The dropped half included the most recent point; the next
            # retained sample is a full (new) stride after the last kept
            # one, i.e. half a stride from now.
            self._skip = self.stride // 2 - 1

    def as_tuples(self) -> List[Tuple[float, float]]:
        """Return the trace as a list of ``(time, value)`` pairs."""
        return list(zip(self.times, self.values))

    def __len__(self) -> int:
        return len(self.times)
