"""Execution tracing and timeline inspection.

Debugging a protocol interaction ("why did this job miss its bound?")
needs more than aggregate counters.  :class:`TraceRecorder` hooks the
simulator's trace callback and keeps a bounded ring of executed events;
:func:`job_timeline` reconstructs one job's life as human-readable
lines; :func:`busy_gantt` renders resources' busy periods as a text
Gantt chart.  All of it is optional tooling — nothing in the hot path
changes unless a recorder is attached.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from ..grid.jobs import Job
from .kernel import Simulator

__all__ = ["TraceRecord", "TraceRecorder", "job_timeline", "busy_gantt"]


@dataclass(frozen=True)
class TraceRecord:
    """One executed event: time, callback name, argument summary."""

    time: float
    callback: str
    summary: str


class TraceRecorder:
    """Bounded ring buffer of executed simulation events.

    Recorders chain: attaching saves whatever ``sim.trace`` callback was
    already installed, forwards every event to it, and :meth:`detach`
    restores it — so stacking a second observer never silences the
    first.  Detach in LIFO order; a recorder that is not the innermost
    observer ignores :meth:`detach` (its caller will restore it).

    Parameters
    ----------
    sim:
        Simulator to attach to (sets ``sim.trace``).
    capacity:
        Maximum retained records (oldest evicted first).
    predicate:
        Optional filter ``(time, fn, args) -> bool``; only matching
        events are recorded (forwarding to a chained observer is not
        filtered).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 10_000,
        predicate: Optional[Callable] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._predicate = predicate
        self.dropped = 0
        self._previous = sim.trace
        sim.trace = self._on_event

    def _on_event(self, time: float, fn, args) -> None:
        if self._previous is not None:
            self._previous(time, fn, args)
        if self._predicate is not None and not self._predicate(time, fn, args):
            return
        if len(self._records) == self._records.maxlen:
            self.dropped += 1
        name = getattr(fn, "__qualname__", getattr(fn, "__name__", repr(fn)))
        summary = ", ".join(self._summarize(a) for a in args[:3])
        self._records.append(TraceRecord(time=time, callback=name, summary=summary))

    @staticmethod
    def _summarize(arg) -> str:
        text = repr(arg)
        return text if len(text) <= 60 else text[:57] + "..."

    @property
    def records(self) -> List[TraceRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    def matching(self, needle: str) -> List[TraceRecord]:
        """Records whose callback or summary contains ``needle``."""
        return [
            r for r in self._records if needle in r.callback or needle in r.summary
        ]

    def detach(self, sim: Simulator) -> None:
        """Stop recording, restoring the previously installed callback."""
        if sim.trace == self._on_event:
            sim.trace = self._previous


def job_timeline(job: Job) -> List[str]:
    """A human-readable reconstruction of one job's life.

    Works from the job's recorded state, so it needs no tracer.
    """
    spec = job.spec
    lines = [
        f"job #{spec.job_id} [{spec.job_class}] demand={spec.execution_time:.1f} "
        f"U_b={spec.benefit_bound:.1f} submitted at cluster {spec.submit_cluster}",
        f"t={spec.arrival_time:10.1f}  arrival",
    ]
    if job.executed_cluster is not None:
        hop = (
            f" (transferred x{job.transfers})"
            if job.transfers
            else " (stayed local)"
        )
        lines.append(f"{'':14}placed at cluster {job.executed_cluster}{hop}")
    if job.start_service is not None:
        wait = job.start_service - spec.arrival_time
        lines.append(f"t={job.start_service:10.1f}  service start (waited {wait:.1f})")
    if job.completion_time is not None:
        verdict = "SUCCESS" if job.successful else "MISSED BOUND"
        lines.append(
            f"t={job.completion_time:10.1f}  completed, response "
            f"{job.response_time:.1f} vs U_b {spec.benefit_bound:.1f} -> {verdict}"
        )
    else:
        lines.append(f"{'':14}state: {job.state}")
    return lines


def busy_gantt(
    jobs: Sequence[Job],
    t_start: float,
    t_end: float,
    width: int = 72,
    by: str = "cluster",
) -> str:
    """Render completed jobs' service intervals as a text Gantt chart.

    Parameters
    ----------
    jobs:
        Jobs to render (incomplete ones are skipped).
    t_start, t_end:
        Window to render.
    width:
        Chart columns.
    by:
        Row grouping: ``"cluster"`` or ``"resource"`` (by executed
        cluster only — resources are not recorded on the job — so
        ``"cluster"`` is the meaningful default).
    """
    if t_end <= t_start:
        raise ValueError("t_end must exceed t_start")
    span = t_end - t_start
    rows = {}
    for job in jobs:
        if job.start_service is None or job.completion_time is None:
            continue
        key = job.executed_cluster if by == "cluster" else job.executed_cluster
        rows.setdefault(key, []).append(job)
    lines = []
    for key in sorted(k for k in rows if k is not None):
        cells = [" "] * width
        for job in rows[key]:
            lo = max(job.start_service, t_start)
            hi = min(job.completion_time, t_end)
            if hi <= lo:
                continue
            c0 = int((lo - t_start) / span * (width - 1))
            c1 = int((hi - t_start) / span * (width - 1))
            for c in range(c0, c1 + 1):
                cells[c] = "#" if cells[c] == " " else "="  # '=' marks overlap
        lines.append(f"cluster {key:>3} |{''.join(cells)}|")
    header = f"t in [{t_start:g}, {t_end:g}]  ('#' busy, '=' concurrent jobs)"
    return header + "\n" + "\n".join(lines) if lines else header + "\n(no service in window)"
