"""Entity base classes for simulation actors.

Two kinds of actors appear in the Grid model:

* Plain :class:`Entity` — something with a location on the topology that
  can receive messages instantaneously (resources are close to this: their
  "server" is the CPU serving jobs, not a message processor).
* :class:`MessageServer` — an actor that processes incoming messages
  **serially**: each delivered message occupies the actor for a finite
  service time, and messages arriving meanwhile wait in a FIFO queue.

The message-server model is the load-bearing piece of the reproduction.
The paper defines the RMS overhead ``G(k)`` as "the overall time spent by
the schedulers for scheduling, receiving, and processing updates"; by
making schedulers finite-rate servers, that time is an emergent quantity
(busy time), queueing delay at a saturated scheduler naturally degrades
job response times (and hence efficiency), and a CENTRAL scheduler
bottlenecks exactly the way the paper describes in its Figure-3
discussion.

Busy time is charged to a *ledger*: any object exposing
``charge(category: str, amount: float, source=None)``.  The concrete
ledger lives in :mod:`repro.core.ledger`; the kernel layer stays
independent of it.  ``source`` is an opaque attribution tag — here a
``(component kind, entity id, message class)`` tuple built once per
message kind and cached, so the overhead-attribution machinery costs the
hot path one cached dict lookup.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Protocol, Tuple, runtime_checkable

from .kernel import Simulator
from .monitor import TimeWeighted

__all__ = ["Entity", "MessageServer", "ChargeSink"]


@runtime_checkable
class ChargeSink(Protocol):
    """Anything that can absorb a cost charge (see ``core.ledger``)."""

    def charge(
        self, category: str, amount: float, source: Optional[Tuple[str, str, str]] = None
    ) -> None:
        """Record ``amount`` time units of cost under ``category``."""
        ...  # pragma: no cover - protocol definition


class Entity:
    """A named actor bound to a simulator and a topology node.

    Parameters
    ----------
    sim:
        The driving :class:`~repro.sim.kernel.Simulator`.
    name:
        Unique human-readable identifier (used in logs and tests).
    node:
        Topology node id this entity is attached to; message transit
        delays are computed between entity nodes.
    """

    __slots__ = ("sim", "name", "node")

    def __init__(self, sim: Simulator, name: str, node: int = 0) -> None:
        self.sim = sim
        self.name = name
        self.node = node

    def deliver(self, message: Any) -> None:
        """Receive ``message`` at the current simulated instant.

        The base implementation dispatches straight to :meth:`handle`;
        :class:`MessageServer` overrides this to add queueing.
        """
        self.handle(message)

    def handle(self, message: Any) -> None:
        """Process one message.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}@{self.node})"


class MessageServer(Entity):
    """An entity that serves incoming messages one at a time.

    Each message occupies the server for :meth:`service_time` units; the
    protocol reaction :meth:`handle` runs when service *completes* (i.e.
    decisions are made after the processing cost is paid).  Busy time is
    charged to ``ledger`` under :meth:`cost_category`.

    Subclasses implement:

    * :meth:`service_time` — processing cost of a message (may depend on
      state, e.g. CENTRAL's status-table scan is proportional to the
      number of resources it manages);
    * :meth:`cost_category` — ledger category for that cost;
    * :meth:`handle` — the protocol logic.

    ``component`` names the component kind in attribution source tags;
    concrete server types (scheduler, estimator, middleware) override it.
    """

    #: component kind used in attribution source tags
    component = "server"

    __slots__ = (
        "ledger",
        "_queue",
        "_busy",
        "_paused",
        "queue_stat",
        "busy_time",
        "served",
        "_source_cache",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        node: int = 0,
        ledger: Optional[ChargeSink] = None,
    ) -> None:
        super().__init__(sim, name, node)
        self.ledger = ledger
        self._queue: Deque[Any] = deque()
        self._busy = False
        self._paused = False
        #: time-weighted queue-length statistic (diagnostics, saturation tests)
        self.queue_stat = TimeWeighted(f"{name}.queue", time=sim.now)
        #: total busy time accumulated by this server
        self.busy_time = 0.0
        #: number of messages fully served
        self.served = 0
        #: message-kind → cached attribution tuple (see :meth:`cost_source`)
        self._source_cache: Dict[Any, Tuple[str, str, str]] = {}

    # -- interface for subclasses ---------------------------------------
    def service_time(self, message: Any) -> float:
        """Processing cost of ``message`` in time units.  Override."""
        raise NotImplementedError

    def cost_category(self, message: Any) -> str:
        """Ledger category the processing cost is charged to.  Override."""
        raise NotImplementedError

    def cost_source(self, message: Any) -> Optional[Tuple[str, str, str]]:
        """Attribution tag ``(component, entity, message class)`` for the
        processing cost of ``message``.

        Tuples are interned per message kind so repeated charges reuse
        one object; messages without a ``kind`` stay untagged.
        """
        kind = getattr(message, "kind", None)
        if kind is None:
            return None
        source = self._source_cache.get(kind)
        if source is None:
            source = (self.component, self.name, str(kind))
            self._source_cache[kind] = source
        return source

    # -- queueing machinery ----------------------------------------------
    @property
    def busy(self) -> bool:
        """Whether the server is currently processing a message."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of messages waiting (excluding the one in service)."""
        return len(self._queue)

    @property
    def paused(self) -> bool:
        """Whether the server is in a blackout (accepting but not serving)."""
        return self._paused

    def deliver(self, message: Any) -> None:
        """Enqueue ``message``; begin service immediately if idle."""
        if self._busy or self._paused:
            self._queue.append(message)
            self.queue_stat.update(self.sim.now, len(self._queue))
        else:
            self._begin(message)

    def pause(self) -> None:
        """Enter a blackout: stop starting service on new messages.

        A message already in service completes normally; everything else
        (including new arrivals) queues until :meth:`resume` — nothing is
        lost, mirroring a hung-but-reachable node.
        """
        self._paused = True

    def resume(self) -> None:
        """Leave a blackout and drain whatever queued during it."""
        if not self._paused:
            return
        self._paused = False
        if not self._busy and self._queue:
            nxt = self._queue.popleft()
            self.queue_stat.update(self.sim.now, len(self._queue))
            self._begin(nxt)

    def _begin(self, message: Any) -> None:
        self._busy = True
        st = self.service_time(message)
        if st < 0.0:
            raise ValueError(f"{self.name}: negative service time {st}")
        self.sim.schedule(st, self._complete, message, st)

    def _complete(self, message: Any, st: float) -> None:
        self.busy_time += st
        self.served += 1
        if self.ledger is not None and st > 0.0:
            self.ledger.charge(self.cost_category(message), st, self.cost_source(message))
        # React *before* pulling the next message so handlers observe a
        # consistent "just finished" state; any messages the handler sends
        # to self are queued behind already-waiting ones.
        self.handle(message)
        if self._queue and not self._paused:
            nxt = self._queue.popleft()
            self.queue_stat.update(self.sim.now, len(self._queue))
            self._begin(nxt)
        else:
            self._busy = False
