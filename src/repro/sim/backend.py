"""Kernel backend registry: pluggable event-loop implementations.

The simulation kernel is consumed through a narrow contract —
:class:`KernelBackend` — with two registered implementations:

``reference``
    :class:`~repro.sim.kernel.Simulator`, the original heap-of-Events
    engine.  The semantics oracle: the conformance and differential
    suites define correctness as "behaves exactly like reference".
``fast``
    :class:`~repro.sim.fastkernel.FastSimulator`, array-backed storage
    with a sorted-spine event store (see its module docstring).

Backends are *bit-identical* by contract, not merely statistically
equivalent: every registered backend must dispatch the same events in
the same ``(time, seq)`` order with the same clock readings, so study
results (F/G/H, attribution cells, metrics bytes) do not depend on the
backend at all.  That is why the backend choice is recorded as
*provenance* (manifests, cache entries, bench reports) but deliberately
**excluded from run-cache keys** — a cached result is valid for every
backend, and the differential suite enforces it.

Selection precedence: explicit argument > ``REPRO_KERNEL_BACKEND``
environment variable > ``reference``.  The env var is what lets the CI
matrix re-run the whole suite on the fast backend without touching any
call sites, and pool workers inherit it.

Writing a new backend
---------------------
Implement the :class:`KernelBackend` contract, call
:func:`register_backend`, and parametrized conformance/differential
tests pick it up automatically (they iterate :func:`backend_names`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

from .fastkernel import FastSimulator
from .kernel import Simulator

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "KernelBackend",
    "backend_names",
    "create_kernel",
    "register_backend",
    "resolve_backend",
]

#: environment variable consulted when no explicit backend is given
ENV_BACKEND = "REPRO_KERNEL_BACKEND"
#: the semantics oracle; used when neither argument nor env select one
DEFAULT_BACKEND = "reference"


@runtime_checkable
class KernelBackend(Protocol):
    """The contract every kernel backend implements.

    Semantics (pinned by ``tests/test_kernel_conformance.py``):

    * Events fire in ``(time, seq)`` total order, ``seq`` being the
      scheduling order — ties are FIFO and deterministic.
    * ``schedule(delay, fn, *args)`` rejects negative/NaN delays with
      :class:`~repro.sim.kernel.SimulationError` and returns an opaque
      cancellation handle; ``schedule_at`` is the absolute-time
      spelling under the same no-past rule.
    * ``cancel(handle)`` is lazy and idempotent: cancelling a fired or
      already-cancelled event is a no-op, and a cancelled event never
      runs nor counts in ``events_executed``.
    * ``run(until=, max_events=)``: inclusive horizon; the clock lands
      exactly on ``until`` whenever given — even when ``max_events``
      (``0`` allowed) stopped dispatch first — and never runs
      backwards.  A horizon before ``now`` raises.
    * ``step()`` dispatches the single earliest event, returning
      whether one ran.
    * ``pop_until(limit)`` removes and returns the earliest pending
      ``(time, fn, args)`` at or before ``limit`` (``None`` = no
      horizon) without dispatching: clock, trace, and counters are
      untouched.  ``peek_time()`` reports the earliest pending time
      without removing anything.
    * ``pending`` counts live events; ``events_executed`` counts
      dispatched ones; ``trace`` (read *per event*, so it can be
      swapped mid-run) is called as ``trace(time, fn, args)`` before
      each dispatch.
    """

    trace: Optional[Callable[[float, Callable, tuple], None]]

    @property
    def now(self) -> float: ...

    @property
    def events_executed(self) -> int: ...

    @property
    def pending(self) -> int: ...

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Any: ...

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Any: ...

    def cancel(self, handle: Any) -> None: ...

    def peek_time(self) -> Optional[float]: ...

    def pop_until(self, limit: Optional[float] = None) -> Optional[tuple]: ...

    def step(self) -> bool: ...

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None: ...


_REGISTRY: Dict[str, Callable[..., KernelBackend]] = {}


def register_backend(name: str, factory: Callable[..., KernelBackend]) -> None:
    """Register ``factory`` (called as ``factory(start_time=...)``) under
    ``name``.

    Re-registering an existing name replaces it — deliberate, so tests
    can shadow a backend with an instrumented double and restore it.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, sorted (stable test-param order)."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: Optional[str] = None) -> str:
    """The backend name to use: explicit > ``REPRO_KERNEL_BACKEND`` > default.

    An empty-string env value counts as unset.  Unknown names raise
    ``ValueError`` listing what is registered.
    """
    if name is None:
        from ..envknobs import get_str

        name = get_str(ENV_BACKEND, default=DEFAULT_BACKEND)
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {', '.join(backend_names())}"
        )
    return name


def create_kernel(name: Optional[str] = None, start_time: float = 0.0) -> KernelBackend:
    """Instantiate the selected kernel backend (see :func:`resolve_backend`)."""
    return _REGISTRY[resolve_backend(name)](start_time=start_time)


register_backend("reference", Simulator)
register_backend("fast", FastSimulator)
