"""The ``fast`` kernel backend: array-backed event storage.

:class:`FastSimulator` implements the same :class:`KernelBackend`
contract as the ``reference`` :class:`~repro.sim.kernel.Simulator` —
proven equivalent by the cross-backend conformance and differential
suites — with a different event store tuned for the ROADMAP's
million-pending-event scaling cases:

* **Slot-indexed payload arrays.**  Callback and args live in parallel
  lists (``_fns`` / ``_argss``) indexed by a recycled slot number, with
  free-list slot reuse as events fire or are cancelled.  No ``Event``
  object is ever allocated: the only per-event allocation on the hot
  path is the ``(time, seq, slot)`` key tuple, which doubles as the
  cancellation handle.  ``_keys[slot]`` remembers which key currently
  owns each slot, so a stale handle (event fired, slot since reused)
  can never cancel the wrong event — the generation check is an
  identity comparison against the unique-``seq`` key.
* **A sorted spine instead of a single heap.**  Pending events live in
  three structures, all holding the same key tuples: a *spine* (sorted
  list consumed by cursor — O(1) pops, no sift), a small overflow
  *heap* (``heapq``) for out-of-order arrivals, and a *bulk* buffer
  (unsorted appends while the spine is exhausted) promoted with one
  Timsort when dispatch resumes.  Arrivals that sort at or near the
  spine's tail — the overwhelmingly common pattern in discrete-event
  workloads (interval timers, timeouts, pre-generated arrival
  processes) — are O(1) appends / tiny insorts.  Dispatch takes the
  minimum of spine head and heap head, which preserves the exact
  ``(time, seq)`` total order.  Sorted runs thus deliver in batches:
  the spine is the ``pop_until`` batching surface, consumed without a
  single comparison sift.

Design note — int-encoded keys.  The obvious alternative store (a heap
of ``(time_bits << 96) | (seq << 32) | slot`` ints, IEEE-754 monotone
time encoding) was prototyped and measured *slower* than both the
reference kernel and this design at realistic heap sizes: every touch
of a 160-bit key is an arbitrary-precision int operation that
allocates, and the encode cost on ``schedule`` dwarfs what cheaper
sift comparisons save until heaps grow far beyond even the million
pending-event regime.  The sorted-spine layout beats both by removing
per-event sift comparisons entirely on the common path.

Cancellation is lazy, exactly as in the reference backend: a cancelled
event's key stays where it is (its slot's ``_fns`` entry becomes
``None``) until consumed or compacted away, and compaction triggers on
the same "more than half dead, store non-trivial" policy — with the
live count recounted during compaction, mirroring the reference
queue's self-healing accounting.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from .kernel import SimulationError

__all__ = ["FastSimulator"]

# Compaction policy (mirrors EventQueue): rebuild when the pending
# store is non-trivial and more than half dead.
_COMPACT_MIN = 64
# Arrivals whose sorted position is within this many entries of the
# spine's tail are insorted (cheap memmove); anything deeper goes to
# the overflow heap instead.
_INSORT_TAIL = 32
# Dispatched spine prefixes longer than this are physically deleted
# once they dominate the list (amortized O(1) per event).
_TRIM_MIN = 65536


class FastSimulator:
    """Array-backed sequential discrete-event simulator.

    Drop-in behavioural replacement for the reference
    :class:`~repro.sim.kernel.Simulator`; the only visible difference is
    the *type* of the scheduling handle (an opaque key tuple rather than
    an :class:`~repro.sim.events.Event`), which contract code must treat
    opaquely anyway — store it, compare it with ``is not None``, pass it
    to :meth:`cancel`.
    """

    __slots__ = (
        "_spine",
        "_cursor",
        "_heap",
        "_bulk",
        "_fns",
        "_argss",
        "_keys",
        "_free",
        "_now",
        "_seq",
        "_events_executed",
        "_live",
        "trace",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self._spine: List[tuple] = []
        self._cursor = 0
        self._heap: List[tuple] = []
        self._bulk: List[tuple] = []
        self._fns: List[Optional[Callable]] = []
        self._argss: List[Optional[tuple]] = []
        self._keys: List[Optional[tuple]] = []
        self._free: List[int] = []
        self._now = float(start_time)
        self._seq = 0
        self._events_executed = 0
        self._live = 0
        #: Optional callable ``(time, fn, args)`` invoked before each event
        #: executes; ``None`` disables tracing (same contract as reference).
        self.trace: Optional[Callable[[float, Callable, tuple], None]] = None

    # ------------------------------------------------------------------
    # Clock and counters
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events dispatched so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> tuple:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        Same contract as the reference backend; returns an opaque handle
        for :meth:`cancel`.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        t = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            slot = free.pop()
            self._fns[slot] = fn
            self._argss[slot] = args
        else:
            slot = len(self._fns)
            self._fns.append(fn)
            self._argss.append(args)
            self._keys.append(None)
        key = (t, seq, slot)
        self._keys[slot] = key
        spine = self._spine
        cursor = self._cursor
        if cursor < len(spine):
            # Spine active: tail appends are the common case (interval
            # timers, timeouts, arrival processes are ~monotone).
            if key >= spine[-1]:
                spine.append(key)
            else:
                pos = bisect_left(spine, key, cursor)
                if len(spine) - pos <= _INSORT_TAIL:
                    spine.insert(pos, key)
                else:
                    heappush(self._heap, key)
        elif not self._bulk:
            # Spine exhausted with no backlog: restart it in place (a
            # single key is trivially sorted).
            if cursor:
                del spine[:]
                self._cursor = 0
            spine.append(key)
        else:
            # Backlog building while dispatch is idle: buffer unsorted,
            # one Timsort promotes the whole batch when dispatch resumes.
            self._bulk.append(key)
        self._live += 1
        return key

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> tuple:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        return self.schedule(time - self._now, fn, *args)

    def cancel(self, handle: tuple) -> None:
        """Cancel a previously scheduled event.

        No-op for handles whose event already fired or was already
        cancelled: the identity comparison against the slot's current
        owner key makes stale handles (slot since recycled) harmless.
        """
        slot = handle[2]
        if self._keys[slot] is not handle or self._fns[slot] is None:
            return
        self._fns[slot] = None
        self._argss[slot] = None
        self._live -= 1
        total = len(self._spine) - self._cursor + len(self._heap) + len(self._bulk)
        if total > _COMPACT_MIN and self._live < total // 2:
            self._compact()

    def _compact(self) -> None:
        """Drop dead keys from all three stores; ``O(n)``.

        Dead keys' slots go back on the free list here (nothing
        references them any more).  All three lists are mutated *in
        place*: ``run()`` holds local aliases, and cancellations
        arriving from inside a dispatched callback must not strand the
        dispatch loop on stale lists.  The live count is recounted from
        the rebuilt stores rather than trusted — the same self-healing
        accounting the reference queue's compaction performs.
        """
        fns = self._fns
        free_append = self._free.append
        spine = self._spine
        alive: List[tuple] = []
        append = alive.append
        for key in spine[self._cursor :]:
            if fns[key[2]] is not None:
                append(key)
            else:
                free_append(key[2])
        spine[:] = alive
        self._cursor = 0
        heap = self._heap
        alive = []
        append = alive.append
        for key in heap:
            if fns[key[2]] is not None:
                append(key)
            else:
                free_append(key[2])
        heap[:] = alive
        heapq.heapify(heap)
        bulk = self._bulk
        alive = []
        append = alive.append
        for key in bulk:
            if fns[key[2]] is not None:
                append(key)
            else:
                free_append(key[2])
        bulk[:] = alive
        self._live = len(spine) + len(heap) + len(bulk)

    def _refill(self) -> None:
        """Cursor hit the spine's end: trim it and promote the backlog."""
        spine = self._spine
        if self._cursor:
            del spine[:]
            self._cursor = 0
        bulk = self._bulk
        if bulk:
            bulk.sort()
            spine.extend(bulk)
            bulk.clear()

    # ------------------------------------------------------------------
    # Queue inspection (part of the KernelBackend contract)
    # ------------------------------------------------------------------
    def _select(self) -> Optional[Tuple[tuple, bool]]:
        """The next live key and whether it comes from the spine.

        Discards dead heads (recycling their slots) as a side effect,
        and promotes the backlog if dispatch is about to resume — both
        invisible to the contract.  Returns ``None`` when nothing live
        is pending.
        """
        fns = self._fns
        free_append = self._free.append
        heap = self._heap
        while True:
            spine = self._spine
            cursor = self._cursor
            if cursor >= len(spine) and (self._bulk or cursor):
                self._refill()
                continue
            key = None
            from_spine = False
            if cursor < len(spine):
                key = spine[cursor]
                if fns[key[2]] is None:
                    self._cursor = cursor + 1
                    free_append(key[2])
                    continue
                from_spine = True
            if heap:
                hkey = heap[0]
                if fns[hkey[2]] is None:
                    heappop(heap)
                    free_append(hkey[2])
                    continue
                if not from_spine or hkey < key:
                    return (hkey, False)
            if key is None or not from_spine:
                return None
            return (key, True)

    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest pending event, or ``None``.

        Dead heads encountered are discarded (their slots recycled), so
        repeated peeks stay cheap — same side effect as reference.
        """
        selected = self._select()
        return None if selected is None else selected[0][0]

    def pop_until(self, limit: Optional[float] = None):
        """Remove and return the earliest pending ``(time, fn, args)``
        at or before ``limit`` without dispatching it.

        Identical contract to the reference backend's ``pop_until``:
        ``None`` (event left queued) when the earliest pending event is
        beyond ``limit`` or nothing is pending; clock, trace, and
        counters untouched.
        """
        selected = self._select()
        if selected is None:
            return None
        key, from_spine = selected
        t = key[0]
        if limit is not None and t > limit:
            return None
        if from_spine:
            self._cursor += 1
        else:
            heappop(self._heap)
        slot = key[2]
        fn = self._fns[slot]
        args = self._argss[slot]
        self._fns[slot] = None
        self._argss[slot] = None
        self._free.append(slot)
        self._live -= 1
        return (t, fn, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest event; ``False`` if queue empty."""
        popped = self.pop_until(None)
        if popped is None:
            return False
        t, fn, args = popped
        if t > self._now:  # clock never runs backwards (see run())
            self._now = t
        if self.trace is not None:
            self.trace(t, fn, args)
        self._events_executed += 1
        fn(*args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until exhaustion, a time horizon, or an event budget.

        Exact contract of the reference backend's ``run`` (inclusive
        ``until``, clock lands on ``until`` even under a ``max_events``
        stop, ``max_events=0`` dispatches nothing but still advances the
        clock).

        The loop keeps the spine cursor in a local for speed, syncing it
        to ``self._cursor`` around every callback invocation: callbacks
        re-enter ``schedule``/``cancel`` (which read the cursor and may
        compact the stores in place), and may even run nested
        ``run()``/``step()`` calls.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"horizon {until} is before current time {self._now}")
        budget = max_events if max_events is not None else -1
        fns = self._fns
        argss = self._argss
        free_append = self._free.append
        heap = self._heap
        spine = self._spine
        bulk = self._bulk
        cursor = self._cursor
        try:
            while budget != 0:
                if cursor >= len(spine):
                    if bulk or cursor:
                        self._cursor = cursor
                        self._refill()
                        cursor = 0
                    if cursor >= len(spine):
                        if not heap:
                            break
                        # Heap-only: dispatch straight off the heap.
                        hkey = heap[0]
                        hslot = hkey[2]
                        fn = fns[hslot]
                        if fn is None:
                            heappop(heap)
                            free_append(hslot)
                            continue
                        t = hkey[0]
                        if until is not None and t > until:
                            break
                        heappop(heap)
                        args = argss[hslot]
                        fns[hslot] = None
                        argss[hslot] = None
                        free_append(hslot)
                        self._live -= 1
                        if t > self._now:
                            self._now = t
                        if self.trace is not None:
                            self.trace(t, fn, args)
                        self._events_executed += 1
                        self._cursor = cursor
                        fn(*args)
                        cursor = self._cursor
                        if budget > 0:
                            budget -= 1
                        continue
                t, seq, slot = key = spine[cursor]
                fn = fns[slot]
                if fn is None:
                    cursor += 1
                    free_append(slot)
                    continue
                if heap and heap[0] < key:
                    # Out-of-order arrival due before the spine head.
                    hkey = heap[0]
                    hslot = hkey[2]
                    hfn = fns[hslot]
                    if hfn is None:
                        heappop(heap)
                        free_append(hslot)
                        continue
                    t = hkey[0]
                    if until is not None and t > until:
                        break
                    heappop(heap)
                    args = argss[hslot]
                    fns[hslot] = None
                    argss[hslot] = None
                    free_append(hslot)
                    self._live -= 1
                    if t > self._now:
                        self._now = t
                    if self.trace is not None:
                        self.trace(t, hfn, args)
                    self._events_executed += 1
                    self._cursor = cursor
                    hfn(*args)
                    cursor = self._cursor
                    if budget > 0:
                        budget -= 1
                    continue
                if until is not None and t > until:
                    break
                cursor += 1
                args = argss[slot]
                fns[slot] = None
                argss[slot] = None
                free_append(slot)
                self._live -= 1
                if t > self._now:  # clock never runs backwards
                    self._now = t
                if self.trace is not None:
                    self.trace(t, fn, args)
                self._events_executed += 1
                self._cursor = cursor
                fn(*args)
                cursor = self._cursor
                if budget > 0:
                    budget -= 1
                if cursor > _TRIM_MIN and cursor * 2 > len(spine):
                    del spine[:cursor]
                    cursor = 0
        finally:
            self._cursor = cursor
        if until is not None and until > self._now:
            self._now = until
