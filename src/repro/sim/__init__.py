"""Discrete-event simulation kernel (the Parsec substitute).

Public surface:

* :class:`~repro.sim.kernel.Simulator` — the event loop.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue`
  — scheduling primitives.
* :class:`~repro.sim.entity.Entity` / :class:`~repro.sim.entity.MessageServer`
  — actor base classes.
* :class:`~repro.sim.rng.RngHub` — deterministic named random streams.
* :mod:`~repro.sim.monitor` — statistics collectors.
"""

from .entity import ChargeSink, Entity, MessageServer
from .events import Event, EventQueue
from .kernel import SimulationError, Simulator
from .monitor import Counter, SeriesRecorder, Tally, TimeWeighted
from .rng import RngHub
from .trace import TraceRecord, TraceRecorder, busy_gantt, job_timeline

__all__ = [
    "ChargeSink",
    "Counter",
    "Entity",
    "Event",
    "EventQueue",
    "MessageServer",
    "RngHub",
    "SeriesRecorder",
    "SimulationError",
    "Simulator",
    "Tally",
    "TimeWeighted",
    "TraceRecord",
    "TraceRecorder",
    "busy_gantt",
    "job_timeline",
]
