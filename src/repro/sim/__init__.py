"""Discrete-event simulation kernel (the Parsec substitute).

Public surface:

* :class:`~repro.sim.kernel.Simulator` — the event loop (the
  ``reference`` backend).
* :class:`~repro.sim.fastkernel.FastSimulator` — the array-backed
  ``fast`` backend.
* :mod:`~repro.sim.backend` — the :class:`KernelBackend` contract and
  registry (:func:`create_kernel` selects by name /
  ``REPRO_KERNEL_BACKEND``).
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue`
  — scheduling primitives.
* :class:`~repro.sim.entity.Entity` / :class:`~repro.sim.entity.MessageServer`
  — actor base classes.
* :class:`~repro.sim.rng.RngHub` — deterministic named random streams.
* :mod:`~repro.sim.monitor` — statistics collectors.
"""

from .backend import (
    KernelBackend,
    backend_names,
    create_kernel,
    register_backend,
    resolve_backend,
)
from .entity import ChargeSink, Entity, MessageServer
from .events import Event, EventQueue
from .fastkernel import FastSimulator
from .kernel import SimulationError, Simulator
from .monitor import Counter, SeriesRecorder, Tally, TimeWeighted
from .rng import RngHub
from .trace import TraceRecord, TraceRecorder, busy_gantt, job_timeline

__all__ = [
    "ChargeSink",
    "Counter",
    "Entity",
    "Event",
    "EventQueue",
    "FastSimulator",
    "KernelBackend",
    "MessageServer",
    "RngHub",
    "SeriesRecorder",
    "SimulationError",
    "Simulator",
    "Tally",
    "TimeWeighted",
    "TraceRecord",
    "TraceRecorder",
    "backend_names",
    "busy_gantt",
    "create_kernel",
    "job_timeline",
    "register_backend",
    "resolve_backend",
]
