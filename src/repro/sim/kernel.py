"""The discrete-event simulation kernel.

:class:`Simulator` is the heart of the substrate that replaces Parsec in
the original study: a sequential, deterministic, seedable discrete-event
engine.  All other subsystems (network transport, resources, schedulers,
estimators, middleware, workload injection) are built as callbacks and
entities driven by a single ``Simulator`` instance.

Design notes
------------
* Time is a ``float`` in abstract "time units", matching the paper (e.g.
  ``T_CPU = 700 time units``).
* Events fire in ``(time, seq)`` order; ``seq`` is the scheduling order,
  which makes ties deterministic and runs reproducible.
* The kernel is intentionally tiny and allocation-light — the scalability
  experiments execute millions of events, and per the HPC guidance we keep
  the hot path (schedule/pop/dispatch) free of indirection.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .events import Event, EventQueue

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, bad horizons)."""


class Simulator:
    """A sequential discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (defaults to ``0.0``).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run(until=10.0)
    >>> fired
    ['b', 'a']
    >>> sim.now
    10.0
    """

    __slots__ = ("_queue", "_now", "_seq", "_events_executed", "trace")

    def __init__(self, start_time: float = 0.0) -> None:
        self._queue = EventQueue()
        self._now = float(start_time)
        self._seq = 0
        self._events_executed = 0
        #: Optional callable ``(time, fn, args)`` invoked before each event
        #: executes.  Used by tests and debugging tools; ``None`` disables
        #: tracing entirely (the hot path checks a single attribute).
        self.trace: Optional[Callable[[float, Callable, tuple], None]] = None

    # ------------------------------------------------------------------
    # Clock and counters
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events dispatched so far (cancelled events excluded)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now.

        Parameters
        ----------
        delay:
            Nonnegative offset from the current clock.  ``0.0`` is allowed
            and fires after all events already scheduled for the current
            instant (stable FIFO semantics).
        fn:
            Callback to invoke.
        *args:
            Positional arguments for ``fn``.

        Returns
        -------
        Event
            A handle that can be passed to :meth:`cancel`.

        Raises
        ------
        SimulationError
            If ``delay`` is negative or not finite.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        ev = Event(self._now + delay, self._seq, fn, args)
        self._seq += 1
        self._queue.push(ev)
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        Equivalent to ``schedule(time - now, ...)`` and subject to the same
        no-past rule.
        """
        return self.schedule(time - self._now, fn, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.

        Cancelling an event that already fired or was already cancelled is
        a no-op, which lets protocol code cancel timeout handles without
        tracking whether they raced with delivery.
        """
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Queue inspection (part of the KernelBackend contract)
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest pending event, or ``None``.

        Does not advance the clock or dispatch anything.
        """
        return self._queue.peek_time()

    def pop_until(self, limit: Optional[float] = None):
        """Remove and return the earliest pending ``(time, fn, args)``
        at or before ``limit`` without dispatching it.

        Returns ``None`` — leaving the event queued — when the earliest
        pending event fires after ``limit`` or nothing is pending;
        ``limit=None`` means no horizon.  The clock, the trace hook, and
        ``events_executed`` are untouched: this is the dispatch-loop
        primitive that ``run()`` is built on, exposed so the conformance
        suite can pin its batching semantics for every backend.
        """
        ev = self._queue.pop_until(limit)
        if ev is None:
            return None
        fn, args = ev.fn, ev.args
        ev.fn = None
        ev.args = ()
        return (ev.time, fn, args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest event.

        Returns
        -------
        bool
            ``True`` if an event was executed, ``False`` if the queue was
            empty (the clock does not move in that case).
        """
        try:
            ev = self._queue.pop()
        except IndexError:
            return False
        if ev.time > self._now:  # clock never runs backwards (see run())
            self._now = ev.time
        if self.trace is not None:
            self.trace(ev.time, ev.fn, ev.args)  # type: ignore[arg-type]
        fn, args = ev.fn, ev.args
        ev.fn = None  # release references promptly
        ev.args = ()
        self._events_executed += 1
        fn(*args)  # type: ignore[misc]
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until exhaustion, a time horizon, or an event budget.

        Parameters
        ----------
        until:
            If given, execute only events with ``time <= until`` and then
            advance the clock *to* ``until`` (even if the queue still holds
            later events, and even when ``max_events`` stopped the run
            first — the clock lands on ``until`` whenever it is given).
            Must not be earlier than the current clock.  Events left
            behind the advanced clock still fire, in order, on a later
            ``run()``/``step()``; the clock simply does not move backwards
            for them.
        max_events:
            If given, stop after dispatching this many additional events
            (``0`` dispatches none).  Mainly a safety valve for runaway
            protocol loops in tests.
        """
        if until is not None and until < self._now:
            raise SimulationError(f"horizon {until} is before current time {self._now}")
        # The dispatch loop is the simulation's hottest path (millions of
        # events per run): it pops each event straight off the heap with a
        # single combined pop-within-horizon call (instead of a peek/pop
        # pair) and dispatches inline (instead of a step() call per event).
        budget = max_events if max_events is not None else -1
        pop_until = self._queue.pop_until
        while budget != 0:
            ev = pop_until(until)
            if ev is None:
                break
            if ev.time > self._now:  # clock never runs backwards
                self._now = ev.time
            if self.trace is not None:
                self.trace(ev.time, ev.fn, ev.args)  # type: ignore[arg-type]
            fn, args = ev.fn, ev.args
            ev.fn = None  # release references promptly
            ev.args = ()
            self._events_executed += 1
            fn(*args)  # type: ignore[misc]
            if budget > 0:
                budget -= 1
        if until is not None and until > self._now:
            self._now = until
