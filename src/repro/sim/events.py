"""Event primitives for the discrete-event simulation kernel.

This module provides the two building blocks of the kernel:

* :class:`Event` — a scheduled callback with a firing time, a stable
  sequence number (used to break ties deterministically), and a
  cancellation flag.
* :class:`EventQueue` — a binary-heap priority queue of events ordered by
  ``(time, seq)``.

The paper's simulator was written in Parsec, a parallel discrete-event
simulation language.  We only need Parsec's *semantics* (timestamped
events executed in nondecreasing time order, deterministic tie-breaking),
not its parallel execution engine, so a sequential heap-based queue is an
exact behavioural substitute for these experiments.

Cancellation is *lazy*: cancelled events stay in the heap and are skipped
when popped.  This keeps both :meth:`EventQueue.push` and
:meth:`EventQueue.pop` at ``O(log n)`` and makes cancellation ``O(1)``,
which matters because status-update suppression and auction timeouts
cancel events frequently.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "EventQueue"]


class Event:
    """A single scheduled occurrence in simulated time.

    Events are created through :meth:`repro.sim.kernel.Simulator.schedule`
    rather than directly.  An event holds the callable to invoke, its
    positional arguments, the simulated ``time`` at which it fires, and a
    monotonically increasing sequence number ``seq`` that makes the
    execution order a *total* order: two events scheduled for the same
    instant fire in the order they were scheduled.

    Attributes
    ----------
    time:
        Absolute simulated time at which the event fires.
    seq:
        Global, strictly increasing creation index (tie-breaker).
    fn:
        Callback invoked when the event fires, or ``None`` after
        cancellation.
    args:
        Positional arguments passed to ``fn``.
    """

    __slots__ = ("time", "seq", "fn", "args")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Optional[Callable[..., Any]],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self.fn is None

    def cancel(self) -> None:
        """Prevent the event from firing.

        Safe to call multiple times and safe to call on an event that has
        already fired (it simply has no further effect).  The callback and
        argument references are dropped immediately so cancelled events do
        not pin objects in memory while they wait to be popped.
        """
        self.fn = None
        self.args = ()

    # Heap ordering -----------------------------------------------------
    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else getattr(self.fn, "__name__", str(self.fn))
        return f"Event(t={self.time:.6g}, seq={self.seq}, {state})"


class EventQueue:
    """Binary-heap future event list with stable ordering and lazy cancel.

    The queue orders events by ``(time, seq)``.  Because ``seq`` is unique,
    the ordering is total and simulation runs are exactly reproducible for
    a given seed and scheduling sequence.

    Heap entries are ``(time, seq, event)`` tuples rather than bare
    events: tuple comparison runs in C and the unique ``seq`` guarantees
    the ``event`` field is never compared.  Profiling showed
    ``Event.__lt__`` dominating the hot loop otherwise (millions of
    comparisons per run).
    """

    __slots__ = ("_heap", "_live")

    def __init__(self) -> None:
        self._heap: list = []
        # Number of non-cancelled events currently in the heap.  Tracked
        # so __len__ reflects *live* events, and so we can compact the
        # heap when it becomes dominated by cancelled entries.
        self._live = 0

    def push(self, event: Event) -> None:
        """Insert ``event``; ``O(log n)``.

        Raises
        ------
        ValueError
            If ``event`` is already cancelled (or already fired, which
            is indistinguishable).  Re-pushing a dead event used to
            silently inflate the live count — the queue would report
            phantom pending events forever — so it is now rejected.
        """
        if event.fn is None:
            raise ValueError(f"cannot push a cancelled or fired event: {event!r}")
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self._live += 1

    def cancel(self, event: Event) -> bool:
        """Cancel ``event`` if it is still live; returns whether it was.

        Idempotent: repeated calls (and calls for events that already
        fired) are no-ops and — unlike pairing ``event.cancel()`` with a
        manual :meth:`note_cancelled` — can never double-decrement the
        live count.  This is the only cancellation entry point the
        kernel uses.
        """
        if event.fn is None:
            return False
        event.cancel()
        self._live -= 1
        self._maybe_compact()
        return True

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)[2]
            if ev.fn is not None:  # not cancelled
                self._live -= 1
                return ev
        raise IndexError("pop from empty EventQueue")

    def pop_until(self, limit: Optional[float]) -> Optional[Event]:
        """Pop the earliest live event firing at or before ``limit``.

        Returns ``None`` — leaving the event queued — when the earliest
        live event fires after ``limit``, or when no live event remains.
        ``limit=None`` means "no horizon" (pop unconditionally).  This
        is the kernel's dispatch-loop primitive: it replaces the
        ``peek_time()`` + ``pop()`` pair, touching the heap once per
        event instead of twice.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].fn is None:  # cancelled: discard and keep looking
                heapq.heappop(heap)
                continue
            if limit is not None and entry[0] > limit:
                return None
            heapq.heappop(heap)
            self._live -= 1
            return entry[2]
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or ``None``.

        Cancelled events encountered at the top of the heap are discarded
        as a side effect, so repeated peeks stay cheap.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
            else:
                return entry[0]
        return None

    def note_cancelled(self) -> None:
        """Account for one event cancelled via ``event.cancel()`` directly.

        Retained for callers that mark events dead themselves; prefer
        :meth:`cancel`, which pairs the mark and the accounting
        atomically and is idempotent.  A double ``note_cancelled`` for
        one event (or a note without a mark) drifts the live count; the
        compaction recount below heals such drift the next time the heap
        is rebuilt.
        """
        self._live -= 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap without dead entries once they dominate.

        Triggered when more than half of a non-trivial heap is dead
        weight; ``O(n)``.  The live count is *recounted* from the
        rebuilt heap rather than trusted — under heavy cancel/re-push
        interleaving the incremental count can drift (historically:
        double ``note_cancelled`` drove it negative, suppressing
        compaction forever), and the rebuild is the natural place to
        resynchronize it with ground truth.
        """
        heap = self._heap
        if len(heap) > 64 and self._live < len(heap) // 2:
            alive = [entry for entry in heap if entry[2].fn is not None]
            heapq.heapify(alive)
            self._heap = alive
            self._live = len(alive)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
