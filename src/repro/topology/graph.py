"""Router-level topology data structure.

A :class:`Topology` is an undirected graph of router nodes connected by
links with finite **latency** (time units) and **bandwidth** (payload
units per time unit), matching the paper's assumption that "network links
have finite bandwidth and non-zero latencies".

The structure is deliberately minimal — adjacency dictionaries keyed by
node id — because the routing layer (Dijkstra) and the generator are the
only consumers.  A :meth:`to_networkx` view exists for tests, which
cross-check our shortest paths against ``networkx``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx

__all__ = ["Link", "Topology"]


@dataclass(frozen=True)
class Link:
    """An undirected link between two routers.

    Attributes
    ----------
    u, v:
        Endpoint node ids (``u < v`` by construction).
    latency:
        Propagation delay in time units; must be positive ("non-zero
        latencies").
    bandwidth:
        Transfer capacity in payload units per time unit; must be
        positive ("finite bandwidth").
    """

    u: int
    v: int
    latency: float
    bandwidth: float


class Topology:
    """An undirected router graph with latency/bandwidth-annotated links.

    Nodes are dense integers ``0..n-1``.  Optional per-node planar
    coordinates (from the generator) are kept for placement heuristics
    and debugging.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("topology needs at least one node")
        self._n = n_nodes
        # adjacency: node -> {neighbor: Link}
        self._adj: List[Dict[int, Link]] = [dict() for _ in range(n_nodes)]
        self._n_links = 0
        #: optional (x, y) coordinates per node, filled by the generator
        self.coords: Optional[List[Tuple[float, float]]] = None

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of router nodes."""
        return self._n

    @property
    def n_links(self) -> int:
        """Number of undirected links."""
        return self._n_links

    def add_link(self, u: int, v: int, latency: float, bandwidth: float) -> Link:
        """Add an undirected link; replaces any existing ``(u, v)`` link.

        Raises
        ------
        ValueError
            For self-loops, unknown nodes, or non-positive latency or
            bandwidth.
        """
        if u == v:
            raise ValueError("self-loops are not allowed")
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(f"link endpoints out of range: ({u}, {v})")
        if latency <= 0.0:
            raise ValueError("links must have non-zero latency")
        if bandwidth <= 0.0:
            raise ValueError("links must have positive bandwidth")
        a, b = (u, v) if u < v else (v, u)
        link = Link(a, b, latency, bandwidth)
        if v not in self._adj[u]:
            self._n_links += 1
        self._adj[u][v] = link
        self._adj[v][u] = link
        return link

    def has_link(self, u: int, v: int) -> bool:
        """Whether an undirected link ``(u, v)`` exists."""
        return v in self._adj[u]

    def link(self, u: int, v: int) -> Link:
        """Return the link between ``u`` and ``v`` (KeyError if absent)."""
        return self._adj[u][v]

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate neighbor node ids of ``u``."""
        return iter(self._adj[u])

    def degree(self, u: int) -> int:
        """Number of links incident to ``u``."""
        return len(self._adj[u])

    def links(self) -> Iterator[Link]:
        """Iterate each undirected link exactly once."""
        for u in range(self._n):
            for v, link in self._adj[u].items():
                if u < v:
                    yield link

    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """Whether every node is reachable from node 0 (BFS)."""
        seen = [False] * self._n
        seen[0] = True
        stack = [0]
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def to_networkx(self) -> "nx.Graph":
        """Export as a ``networkx.Graph`` with ``latency``/``bandwidth``
        edge attributes (used by tests as a reference implementation)."""
        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for link in self.links():
            g.add_edge(link.u, link.v, latency=link.latency, bandwidth=link.bandwidth)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(n_nodes={self._n}, n_links={self._n_links})"
