"""Shortest-path algorithms over :class:`~repro.topology.graph.Topology`.

These are pure graph algorithms shared by the routing layer (which is an
OSPF substitute: link-state shortest path by latency) and by the grid
mapper (which assigns resources to their nearest scheduler).

Paths minimize **total link latency**, matching OSPF's additive-metric
semantics.  Alongside the latency we accumulate the **transmission
factor** ``sum(1 / bandwidth)`` over the chosen path, so the transport
layer can price a message of size ``s`` as
``latency + s * transmission_factor`` (store-and-forward over every hop).
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, List, Tuple

from .graph import Topology

__all__ = ["single_source", "multi_source_nearest", "PathInfo"]

#: (latency, hops, transmission_factor) triple for one destination.
PathInfo = Tuple[float, int, float]


def single_source(topo: Topology, source: int) -> List[PathInfo]:
    """Dijkstra from ``source`` minimizing latency.

    Returns
    -------
    list[PathInfo]
        For every node ``v``: ``(latency, hops, transmission_factor)``
        along the latency-shortest path from ``source`` to ``v``.
        Unreachable nodes (cannot happen for generated topologies, which
        are connected) get ``(inf, -1, inf)``.
    """
    n = topo.n_nodes
    dist = [math.inf] * n
    hops = [-1] * n
    txf = [math.inf] * n
    dist[source] = 0.0
    hops[source] = 0
    txf[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue  # stale entry
        for v in topo.neighbors(u):
            link = topo.link(u, v)
            nd = d + link.latency
            if nd < dist[v]:
                dist[v] = nd
                hops[v] = hops[u] + 1
                txf[v] = txf[u] + 1.0 / link.bandwidth
                heapq.heappush(heap, (nd, v))
    return list(zip(dist, hops, txf))


def multi_source_nearest(
    topo: Topology, sources: Iterable[int]
) -> Tuple[List[float], List[int]]:
    """Multi-source Dijkstra: latency and identity of the nearest source.

    Used to partition resources into non-overlapping clusters around
    their closest scheduler.  Ties are broken toward the source that
    first reaches the node in the (deterministic) heap order, which is
    the lowest-latency one and, for exact ties, the lowest node id
    among the seeds pushed first.

    Returns
    -------
    (dist, nearest):
        ``dist[v]`` — latency from ``v`` to its nearest source;
        ``nearest[v]`` — the source node id ``v`` is assigned to.
    """
    n = topo.n_nodes
    dist = [math.inf] * n
    nearest = [-1] * n
    heap: List[Tuple[float, int, int]] = []
    for s in sorted(set(sources)):
        if not (0 <= s < n):
            raise ValueError(f"source {s} out of range")
        dist[s] = 0.0
        nearest[s] = s
        heap.append((0.0, s, s))
    heapq.heapify(heap)
    while heap:
        d, u, src = heapq.heappop(heap)
        if d > dist[u] or (d == dist[u] and nearest[u] != src):
            continue
        for v in topo.neighbors(u):
            nd = d + topo.link(u, v).latency
            if nd < dist[v]:
                dist[v] = nd
                nearest[v] = src
                heapq.heappush(heap, (nd, v, src))
    return dist, nearest
