"""Router-level topologies and Grid element placement (Mercator substitute)."""

from .generator import TopologyParams, generate_topology
from .graph import Link, Topology
from .grid_map import GridMap, map_grid
from .paths import multi_source_nearest, single_source

__all__ = [
    "GridMap",
    "Link",
    "Topology",
    "TopologyParams",
    "generate_topology",
    "map_grid",
    "multi_source_nearest",
    "single_source",
]
