"""Mapping Grid elements onto a router topology.

The paper: "To these topologies, we map elements such as routers,
schedulers, and resources to obtain Grid topologies. ... The set of
resources are separated into non-overlapping clusters and each cluster
is coordinated by a scheduler."

:func:`map_grid` turns a router :class:`~repro.topology.graph.Topology`
into a :class:`GridMap`:

* **Scheduler sites** are the highest-degree routers (well-connected
  transit points), one per cluster.
* **Estimator sites** are routers adjacent (nearest) to scheduler sites;
  estimators are the RMS nodes that receive status updates from
  resources and distribute them to scheduling decision makers (paper,
  Fig. 4 caption).  With one estimator per scheduler the estimator is
  co-located with its scheduler — the base configuration.
* **Resource sites** are the remaining routers; every resource joins the
  cluster of its nearest scheduler (multi-source Dijkstra by latency),
  yielding the non-overlapping clustering.
* Resources are assigned to estimators round-robin **within their
  cluster ordering**, so estimator coverage respects locality.

Network size in the paper's Case 1 is ``sizeof[RMS] + sizeof[RP]``:
here that is ``n_schedulers + n_estimators + n_resources`` mapped sites
(sites may share a router when the graph is small; the simulation works
at the site level, not the router level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .graph import Topology
from .paths import PathInfo, multi_source_nearest

__all__ = ["GridMap", "map_grid"]


@dataclass
class GridMap:
    """Placement of Grid elements on a router topology.

    Attributes
    ----------
    topology:
        The underlying router graph.
    scheduler_nodes:
        Router node of each scheduler, indexed by scheduler id.
    estimator_nodes:
        Router node of each estimator, indexed by estimator id.
    resource_nodes:
        Router node of each resource, indexed by resource id.
    cluster_of_resource:
        Scheduler id owning each resource (non-overlapping clusters).
    resources_of_cluster:
        Inverse map: scheduler id -> sorted resource ids.
    estimator_of_resource:
        Estimator id each resource sends status updates to.
    schedulers_of_estimator:
        Scheduler ids each estimator forwards updates to (the owners of
        the resources it covers).
    scheduler_tables:
        The per-scheduler-site ``single_source`` routing tables the
        mapper computed for cluster assignment, in ``scheduler_nodes``
        order.  The builder donates them to the
        :class:`~repro.network.routing.Router` cache — scheduler (and
        co-located estimator) sites originate nearly all routed
        traffic, so reusing the mapper's Dijkstra passes means the hot
        sources never pay a second shortest-path sweep.
    """

    topology: Topology
    scheduler_nodes: List[int]
    estimator_nodes: List[int]
    resource_nodes: List[int]
    cluster_of_resource: List[int]
    resources_of_cluster: Dict[int, List[int]] = field(default_factory=dict)
    estimator_of_resource: List[int] = field(default_factory=list)
    schedulers_of_estimator: Dict[int, List[int]] = field(default_factory=dict)
    scheduler_tables: Optional[List[List[PathInfo]]] = None

    @property
    def n_schedulers(self) -> int:
        """Number of schedulers (= number of clusters)."""
        return len(self.scheduler_nodes)

    @property
    def n_estimators(self) -> int:
        """Number of status estimators."""
        return len(self.estimator_nodes)

    @property
    def n_resources(self) -> int:
        """Number of resources in the resource pool."""
        return len(self.resource_nodes)

    def validate(self) -> None:
        """Check structural invariants; raises ``AssertionError`` if broken.

        Invariants: clusters partition the resources; every cluster is
        non-empty; estimator coverage maps are mutually consistent.
        """
        assert len(self.cluster_of_resource) == self.n_resources
        assert len(self.estimator_of_resource) == self.n_resources
        seen = 0
        for sched, rs in self.resources_of_cluster.items():
            assert 0 <= sched < self.n_schedulers
            assert rs, f"cluster {sched} is empty"
            for r in rs:
                assert self.cluster_of_resource[r] == sched
            seen += len(rs)
        assert seen == self.n_resources, "clusters must partition the resources"
        for est, scheds in self.schedulers_of_estimator.items():
            assert 0 <= est < self.n_estimators
            assert scheds == sorted(set(scheds))
        for r, est in enumerate(self.estimator_of_resource):
            assert self.cluster_of_resource[r] in self.schedulers_of_estimator[est]


def map_grid(
    topo: Topology,
    n_schedulers: int,
    n_resources: int,
    n_estimators: int | None = None,
) -> GridMap:
    """Place schedulers, estimators, and resources on ``topo``.

    Parameters
    ----------
    topo:
        Router topology (must be connected).
    n_schedulers:
        Number of schedulers / clusters (>= 1).
    n_resources:
        Number of resources (>= n_schedulers so no cluster is empty).
    n_estimators:
        Number of status estimators; defaults to ``n_schedulers`` (one
        co-located estimator per scheduler — the base RMS configuration).

    Returns
    -------
    GridMap
        A validated placement.
    """
    if n_schedulers < 1:
        raise ValueError("need at least one scheduler")
    if n_resources < n_schedulers:
        raise ValueError("need at least one resource per scheduler")
    if n_estimators is None:
        n_estimators = n_schedulers
    if n_estimators < 1:
        raise ValueError("need at least one estimator")

    n = topo.n_nodes
    # Schedulers at the best-connected routers; deterministic tie-break
    # by node id so placements are reproducible.
    by_degree = sorted(range(n), key=lambda u: (-topo.degree(u), u))
    scheduler_nodes = sorted(by_degree[:n_schedulers])

    # Resources occupy the remaining routers, wrapping around (multiple
    # resource sites may share a router) when the pool outgrows the graph.
    non_sched = [u for u in range(n) if u not in set(scheduler_nodes)]
    if not non_sched:  # degenerate tiny graph: co-locate
        non_sched = list(range(n))
    resource_nodes = [non_sched[i % len(non_sched)] for i in range(n_resources)]

    # Non-overlapping, *balanced* clusters.  Pure nearest-scheduler
    # assignment on a skewed router graph produces clusters of wildly
    # different sizes, and since jobs are submitted per cluster, a
    # one-resource cluster is structurally overloaded regardless of the
    # RMS — it would confound the scalability measurement (the cited
    # load-balancing studies all use comparable cluster sizes).  We keep
    # locality but cap cluster size: resources claim their nearest
    # scheduler greedily (closest pairs first) and overflow to the next
    # nearest with free capacity.
    from .paths import single_source

    sched_tables = [single_source(topo, node) for node in scheduler_nodes]
    cap = -(-n_resources // n_schedulers)  # ceil division
    # Latency matrix (scheduler x resource site) for the greedy fill.
    # Stable argsort ties break by scheduler id, reproducing the old
    # per-resource ``sorted(..., key=(dist, s))`` bit-for-bit while
    # staying vectorized: at 1e5 resources x 100+ schedulers the
    # per-resource Python sorts alone used to dominate build time.
    res_idx = np.asarray(resource_nodes, dtype=np.intp)
    lat = np.stack(
        [np.asarray(t, dtype=float)[res_idx, 0] for t in sched_tables]
    )
    prefs_of = np.argsort(lat, axis=0, kind="stable")
    nearest = lat[prefs_of[0], np.arange(n_resources)]
    order = sorted(zip(nearest.tolist(), range(n_resources)))
    cluster_of_resource = [-1] * n_resources
    fill = [0] * n_schedulers
    for _, r in order:
        for s in prefs_of[:, r]:
            if fill[s] < cap:
                cluster_of_resource[r] = int(s)
                fill[s] += 1
                break
    resources_of_cluster: Dict[int, List[int]] = {s: [] for s in range(n_schedulers)}
    for r, s in enumerate(cluster_of_resource):
        resources_of_cluster[s].append(r)
    # The cap guarantees every cluster gets at least one resource when
    # n_resources >= n_schedulers, except in the corner where caps round
    # up; rebalance any stragglers from the fullest clusters.
    empties = [s for s, rs in resources_of_cluster.items() if not rs]
    for s in empties:
        donor = max(resources_of_cluster, key=lambda c: len(resources_of_cluster[c]))
        moved = resources_of_cluster[donor].pop()
        resources_of_cluster[s].append(moved)
        cluster_of_resource[moved] = s
    for s in resources_of_cluster:
        resources_of_cluster[s].sort()

    # Estimators: one co-located with each scheduler first; extra
    # estimators (Case 3 scaling) sit at the site of the cluster they
    # help cover.  With fewer estimators than schedulers, estimator e
    # serves clusters {e, e + n_est, ...} from scheduler e's site.
    estimator_nodes = []
    for e in range(n_estimators):
        if e < n_schedulers:
            estimator_nodes.append(scheduler_nodes[e])
        else:
            estimator_nodes.append(
                scheduler_nodes[(e - n_schedulers) % n_schedulers]
            )

    # Estimator coverage is cluster-aligned: with one estimator per
    # scheduler (the base configuration) each cluster reports to its
    # co-located estimator, so a scheduler receives exactly one batched
    # forward per window.  Scaling the estimator plane up (Case 3)
    # assigns the extra estimators to clusters round-robin and splits
    # each cluster's resources evenly across its estimators — that
    # fragmentation (more forwards per cluster per window) is precisely
    # the overhead mechanism the paper's Figure 4 measures.  With fewer
    # estimators than schedulers, clusters share estimators whole.
    estimator_of_resource = [0] * n_resources
    if n_estimators >= n_schedulers:
        ests_of_cluster: Dict[int, List[int]] = {s: [s] for s in range(n_schedulers)}
        for e in range(n_schedulers, n_estimators):
            ests_of_cluster[(e - n_schedulers) % n_schedulers].append(e)
        for s, rs in resources_of_cluster.items():
            ests = ests_of_cluster[s]
            for i, r in enumerate(rs):
                estimator_of_resource[r] = ests[i % len(ests)]
    else:
        for s, rs in resources_of_cluster.items():
            for r in rs:
                estimator_of_resource[r] = s % n_estimators

    schedulers_of_estimator: Dict[int, List[int]] = {e: [] for e in range(n_estimators)}
    for r in range(n_resources):
        e = estimator_of_resource[r]
        s = cluster_of_resource[r]
        if s not in schedulers_of_estimator[e]:
            schedulers_of_estimator[e].append(s)
    for e in schedulers_of_estimator:
        schedulers_of_estimator[e].sort()
        # Estimators with no coverage still forward nothing; keep them
        # valid entries so scaling the estimator count is well-defined.

    gm = GridMap(
        topology=topo,
        scheduler_nodes=scheduler_nodes,
        estimator_nodes=estimator_nodes,
        resource_nodes=resource_nodes,
        cluster_of_resource=cluster_of_resource,
        resources_of_cluster=resources_of_cluster,
        estimator_of_resource=estimator_of_resource,
        schedulers_of_estimator=schedulers_of_estimator,
        scheduler_tables=sched_tables,
    )
    gm.validate()
    return gm
