"""Synthetic Internet-like topology generation (Mercator substitute).

The paper extracts router-level topologies from the Mercator Internet
map discovery tool.  Mercator maps are unavailable, so we generate
synthetic router graphs that preserve the properties the experiments
actually exercise:

* **connectivity** — every scheduler/resource pair can exchange messages;
* **short, size-dependent path lengths** — message delays grow slowly
  with network size, as in Internet-like graphs;
* **skewed degree distribution** — a few well-connected "transit"
  routers plus many low-degree edge routers, so clusters hang off
  identifiable attachment points.

The generator mixes two classic models: a **preferential-attachment
backbone** (degree skew, guaranteed connectivity because each new node
attaches to existing ones) plus **Waxman-style geometric shortcuts**
(locality: nearby routers are more likely to be linked).  Link latency is
proportional to Euclidean distance between node coordinates; bandwidths
are drawn from a discrete set of capacity tiers.

All randomness flows through a caller-supplied ``numpy`` generator, so
topologies are reproducible from the run seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .graph import Topology

__all__ = ["TopologyParams", "generate_topology"]


@dataclass(frozen=True)
class TopologyParams:
    """Knobs of the synthetic topology model.

    Attributes
    ----------
    n_nodes:
        Number of router nodes.
    m_attach:
        Links added from each new node to existing nodes during the
        preferential-attachment phase (>= 1 guarantees connectivity).
    waxman_alpha:
        Probability scale of the Waxman shortcut phase; 0 disables it.
    waxman_beta:
        Waxman locality parameter in (0, 1]; larger values favour
        longer-range shortcuts.
    latency_per_unit:
        Link latency per unit of Euclidean distance (time units).
    min_latency:
        Floor on link latency, enforcing "non-zero latencies".
    bandwidth_tiers:
        Capacity tiers links are drawn from uniformly (payload units
        per time unit).
    """

    n_nodes: int
    m_attach: int = 2
    waxman_alpha: float = 0.08
    waxman_beta: float = 0.25
    latency_per_unit: float = 0.02
    min_latency: float = 0.05
    bandwidth_tiers: tuple = (100.0, 400.0, 1000.0)

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if self.m_attach < 1:
            raise ValueError("m_attach must be >= 1 for connectivity")
        if not (0.0 <= self.waxman_alpha <= 1.0):
            raise ValueError("waxman_alpha must be in [0, 1]")
        if not (0.0 < self.waxman_beta <= 1.0):
            raise ValueError("waxman_beta must be in (0, 1]")
        if self.min_latency <= 0.0:
            raise ValueError("min_latency must be positive")
        if not self.bandwidth_tiers:
            raise ValueError("at least one bandwidth tier is required")


def _link_latency(params: TopologyParams, coords: np.ndarray, u: int, v: int) -> float:
    d = float(np.hypot(*(coords[u] - coords[v])))
    return max(params.min_latency, params.latency_per_unit * d)


def generate_topology(params: TopologyParams, rng: np.random.Generator) -> Topology:
    """Generate a connected Internet-like router topology.

    Parameters
    ----------
    params:
        Model parameters; see :class:`TopologyParams`.
    rng:
        Source of randomness (typically ``RngHub.stream("topology")``).

    Returns
    -------
    Topology
        A connected topology with coordinates attached (``topo.coords``).
    """
    n = params.n_nodes
    topo = Topology(n)
    # Unit-square coordinates drive both Waxman locality and latencies.
    coords = rng.random((n, 2)) * 100.0
    topo.coords = [tuple(xy) for xy in coords]
    tiers = np.asarray(params.bandwidth_tiers, dtype=float)

    def bandwidth() -> float:
        return float(tiers[rng.integers(len(tiers))])

    # --- Phase 1: preferential attachment backbone --------------------
    # Start from a 2-node seed; each subsequent node attaches to
    # min(m_attach, existing) distinct targets chosen with probability
    # proportional to (degree + 1).
    topo.add_link(0, 1, _link_latency(params, coords, 0, 1), bandwidth())
    # Repeated-endpoint list implements preferential attachment cheaply.
    endpoint_pool = [0, 1, 0, 1]
    for u in range(2, n):
        m = min(params.m_attach, u)
        targets: set[int] = set()
        # Rejection-sample distinct targets from the endpoint pool.
        while len(targets) < m:
            v = endpoint_pool[rng.integers(len(endpoint_pool))]
            if v != u:
                targets.add(v)
        for v in targets:
            topo.add_link(u, v, _link_latency(params, coords, u, v), bandwidth())
            endpoint_pool.append(u)
            endpoint_pool.append(v)

    # --- Phase 2: Waxman geometric shortcuts --------------------------
    # P(link u~v) = alpha * exp(-d(u, v) / (beta * L)) with L the max
    # possible distance.  Vectorized over candidate pairs sampled from
    # the full pair set to keep generation O(n * k) rather than O(n^2)
    # for large n.
    if params.waxman_alpha > 0.0 and n > 2:
        l_max = 100.0 * math.sqrt(2.0)
        # Examine ~4n random candidate pairs (enough shortcuts to matter,
        # cheap even at n = 6000).
        k = 4 * n
        us = rng.integers(0, n, size=k)
        vs = rng.integers(0, n, size=k)
        mask = us != vs
        us, vs = us[mask], vs[mask]
        d = np.hypot(coords[us, 0] - coords[vs, 0], coords[us, 1] - coords[vs, 1])
        p = params.waxman_alpha * np.exp(-d / (params.waxman_beta * l_max))
        accept = rng.random(len(p)) < p
        for u, v in zip(us[accept], vs[accept]):
            u, v = int(u), int(v)
            if not topo.has_link(u, v):
                topo.add_link(u, v, _link_latency(params, coords, u, v), bandwidth())

    assert topo.is_connected(), "generator invariant: PA phase guarantees connectivity"
    return topo
