"""Shared machinery of the superscheduler RMSs (S-I, R-I, Sy-I).

Paper §3.3 (after Shan, Oliker & Biswas's job-superscheduler study):
"a set of autonomous local schedulers communicate with each other
through a Grid middleware.  We restrict each cluster to have [a] single
scheduler and model the Grid middleware using a simple queue with
infinite capacity and finite but small service time."

All three designs make decisions by comparing **turnaround costs**
built from three quantities a scheduler can estimate about a cluster:

* **AWT** (approximate waiting time): how long a new job would wait —
  estimated as the least known resource load times the cluster's
  observed mean service duration;
* **ERT** (expected run time): the job's demand over the cluster's
  observed service speed (homogeneous resources, so the demand is the
  portable part);
* **RUS** (resource utilization status): the cluster's average load.

The minimum **ATT = AWT + ERT** wins; ties within tolerance ``psi`` go
to the smallest RUS (paper's S-I rule).

:class:`SuperScheduler` maintains the observation side: exponentially
weighted estimates of service duration and speed, refreshed by the
completion notifications the scheduler already pays to process.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..grid.jobs import Job
from ..grid.scheduler import SchedulerBase
from .base import RMSInfo  # noqa: F401  (re-exported convenience)

__all__ = ["SuperScheduler"]


class SuperScheduler(SchedulerBase):
    """Base for S-I / R-I / Sy-I: middleware transport + ATT estimation."""

    use_middleware = True

    #: ATT tie tolerance ``psi`` (paper: "a small tolerance")
    psi: float = 5.0
    #: EWMA smoothing for service observations
    ewma_alpha: float = 0.2

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Priors: a typical job (~500 demand units) at unit speed.
        self._service_duration_est = 500.0
        self._service_speed_est = 1.0

    # -- observation ------------------------------------------------------
    def after_completion(self, job: Job) -> None:
        """Refresh service-duration and speed estimates from the
        completed job's measured service interval."""
        if job.start_service is None or job.completion_time is None:
            return
        duration = job.completion_time - job.start_service
        if duration <= 0.0:
            return
        a = self.ewma_alpha
        self._service_duration_est += a * (duration - self._service_duration_est)
        speed = job.spec.execution_time / duration
        self._service_speed_est += a * (speed - self._service_speed_est)

    # -- the three estimates ------------------------------------------------
    def awt(self) -> float:
        """Approximate waiting time of a new job in this cluster."""
        backlog = max(0.0, self.table.min_load())
        return backlog * self._service_duration_est

    def ert(self, demand: float) -> float:
        """Expected run time of a job with ``demand`` units of work."""
        return demand / max(1e-9, self._service_speed_est)

    def rus(self) -> float:
        """Resource utilization status: the cluster's average load."""
        return self.local_average_load()

    def att(self, demand: float) -> float:
        """Approximate turnaround time: ``AWT + ERT``."""
        return self.awt() + self.ert(demand)

    # -- decision rule ------------------------------------------------------
    def choose_by_att(
        self,
        demand: float,
        candidates: List[Tuple[Optional["SuperScheduler"], float, float]],
    ) -> Optional["SuperScheduler"]:
        """Pick the candidate with minimum ATT; ties within ``psi`` break
        toward the smallest RUS.

        Parameters
        ----------
        demand:
            The job's demand (used only by callers to build candidates;
            kept for signature clarity).
        candidates:
            ``(scheduler_or_None, att, rus)`` triples; ``None`` denotes
            the local cluster.

        Returns
        -------
        The chosen scheduler, or ``None`` for local execution.
        """
        if not candidates:
            return None
        best_att = min(att for _, att, _ in candidates)
        near = [c for c in candidates if c[1] <= best_att + self.psi]
        winner = min(near, key=lambda c: (c[2], c[1]))
        return winner[0]
