"""LOWEST: poll random peers, send the job to the least-loaded cluster.

Paper §3.3 (after Zhou's trace-driven load-balancing study): "The RMS
consists of multiple schedulers with each receiving periodic updates
from non-overlapping clusters of resources.  On a LOCAL job arrival, a
scheduler will schedule it on the least loaded resource in its cluster.
On a REMOTE job arrival, a scheduler will poll a set of randomly
selected L_p remote schedulers.  The job is transferred for execution
to a remote scheduler with the least loaded resources."

This is the canonical **pull** design: state is solicited at decision
time, so its overhead is proportional to the REMOTE job rate (and to
``L_p``) rather than to any background advertisement activity.

Implementation notes
--------------------
* Poll replies report the polled scheduler's *least known load*
  (min over its status table — the same stale view it would use
  itself).
* The local cluster participates as a candidate: the job moves only if
  some polled cluster looks strictly less loaded than the local
  minimum.  (Zhou's LOWEST keeps the job when the local host is least
  loaded; transferring onto an equal-looking cluster would pay transfer
  cost for nothing.)
* A timeout force-decides with whatever replies arrived, so message
  loss degrades placement quality instead of stranding jobs.
"""

from __future__ import annotations

from ..grid.jobs import Job
from ..grid.scheduler import SchedulerBase
from ..network.messages import Message, MessageKind
from .base import PendingPoll, PollBook, RMSInfo

__all__ = ["LowestScheduler", "LOWEST_INFO"]


class LowestScheduler(SchedulerBase):
    """The LOWEST pull scheduler."""

    #: how long to wait for poll replies before deciding anyway
    poll_timeout: float = 30.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._polls = PollBook(self, self.poll_timeout, self._decide)
        #: polls initiated (diagnostics)
        self.polls_started = 0

    # -- sender side -----------------------------------------------------
    def on_remote_job(self, job: Job) -> None:
        """Poll ``L_p`` random peers for their least-loaded resource."""
        peers = self.pick_peers(self.l_p)
        pending = self._polls.open(job, expected=len(peers))
        if peers:
            self.polls_started += 1
        for peer in peers:
            self.send_to_peer(
                Message(
                    MessageKind.POLL_REQUEST,
                    payload={"job_id": job.job_id, "reply_to": self},
                ),
                peer,
            )

    def _decide(self, pending: PendingPoll) -> None:
        """Place the job at the least-loaded candidate cluster."""
        job = pending.job
        best_peer = None
        best_load = self.table.min_load()  # local candidate
        for peer, payload in pending.replies:
            if payload["min_load"] < best_load:
                best_load = payload["min_load"]
                best_peer = peer
        if best_peer is None:
            self.schedule_local(job)
        else:
            self.transfer_job(job, best_peer)

    # -- receiver side -----------------------------------------------------
    def on_poll_request(self, message: Message) -> None:
        """Answer with the least known load in the local cluster."""
        requester = message.payload["reply_to"]
        self.send_to_peer(
            Message(
                MessageKind.POLL_REPLY,
                payload={
                    "job_id": message.payload["job_id"],
                    "min_load": self.table.min_load(),
                },
            ),
            requester,
        )

    def on_poll_reply(self, message: Message) -> None:
        """Record a reply; the PollBook closes the fan-in."""
        self._polls.record_reply(
            message.payload["job_id"], message.sender, message.payload
        )


LOWEST_INFO = RMSInfo(
    name="LOWEST",
    scheduler_cls=LowestScheduler,
    mechanism="pull",
)
