"""RESERVE: lightly-loaded clusters register reservations in advance.

Paper §3.3 (after Zhou): "When average cluster load for a local cluster
for a scheduler S_a falls below threshold T_l, then S_a advertises to
register reservations at L_p remote schedulers.  On a REMOTE job
arrival, a scheduler will examine the average load of its local
cluster.  If it is above T_l, it probes the remote scheduler that made
the most recent reservation.  The job is sent to the remote scheduler
if the loading there is below a given threshold.  Otherwise, the
reservations are cancelled."

The advertisement is **push**-flavoured state estimation: availability
information travels ahead of demand, so the per-job cost is a single
probe instead of an ``L_p``-wide poll — but the background
advertisement traffic is paid whether or not REMOTE jobs arrive, and
stale reservations cause probe/cancel churn (the mechanism behind
RESERVE's poor showing when ``L_p`` is scaled in the paper's Fig. 5).

Implementation notes
--------------------
* Advertisements are re-evaluated whenever the scheduler's view changes
  (status updates, completions), rate-limited to one round per
  ``volunteer_interval`` (the "interval for resource volunteering"
  enabler of Table 5).
* A reservation is a ``(scheduler, timestamp)`` pair; the probe targets
  the most recent one, per the paper.
* A probe timeout falls back to local placement, so a lost reply never
  strands a job.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..grid.jobs import Job
from ..grid.scheduler import SchedulerBase
from ..network.messages import Message, MessageKind
from .base import PendingPoll, PollBook, RMSInfo

__all__ = ["ReserveScheduler", "RESERVE_INFO"]


class ReserveScheduler(SchedulerBase):
    """The RESERVE reservation-based scheduler."""

    #: minimum spacing between advertisement rounds (enabler-controlled)
    volunteer_interval: float = 120.0
    #: how long to wait for a probe reply before scheduling locally
    probe_timeout: float = 30.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: reservations held here: most recent last
        self._reservations: List[Tuple[SchedulerBase, float]] = []
        self._last_advert = -float("inf")
        self._probes = PollBook(self, self.probe_timeout, self._probe_decide)
        #: peers currently holding a reservation from us (insertion
        #: ordered — iteration must be deterministic); retracted when a
        #: local crash invalidates the advertised capacity
        self._advertised_to: Dict[SchedulerBase, bool] = {}
        #: diagnostics
        self.adverts_sent = 0
        self.probes_sent = 0
        self.cancellations = 0
        self.retractions = 0

    # -- advertisement (push) ---------------------------------------------
    def _maybe_advertise(self) -> None:
        if self.sim.now - self._last_advert < self.volunteer_interval:
            return
        if self.local_average_load() < self.t_l:
            self._last_advert = self.sim.now
            for peer in self.pick_peers(self.l_p):
                self.adverts_sent += 1
                self._advertised_to[peer] = True
                self.send_to_peer(
                    Message(
                        MessageKind.RESERVE_ADVERT,
                        payload={"reply_to": self},
                    ),
                    peer,
                )

    def after_status_update(self, payload: dict) -> None:
        """Re-evaluate the advertisement trigger on fresh state."""
        self._maybe_advertise()

    def after_completion(self, job: Job) -> None:
        """Completions can drop the average load below ``T_l``."""
        self._maybe_advertise()

    def on_reserve_advert(self, message: Message) -> None:
        """Register (or refresh) a reservation from the sender."""
        reserver = message.payload["reply_to"]
        self._reservations = [(s, t) for s, t in self._reservations if s is not reserver]
        self._reservations.append((reserver, self.sim.now))

    # -- REMOTE job arrival (probe) -----------------------------------------
    def on_remote_job(self, job: Job) -> None:
        """Probe the most recent reservation if the local cluster is
        above threshold; otherwise keep the job local."""
        if self.local_average_load() <= self.t_l or not self._reservations:
            self.schedule_local(job)
            return
        target, _ = self._reservations[-1]
        self.probes_sent += 1
        self._probes.open(job, expected=1)
        self.send_to_peer(
            Message(
                MessageKind.RESERVE_PROBE,
                payload={"job_id": job.job_id, "reply_to": self},
            ),
            target,
        )

    def on_reserve_probe(self, message: Message) -> None:
        """Accept iff the local cluster is still below threshold."""
        requester = message.payload["reply_to"]
        accept = self.local_average_load() < self.t_l
        self.send_to_peer(
            Message(
                MessageKind.RESERVE_REPLY,
                payload={
                    "job_id": message.payload["job_id"],
                    "accept": accept,
                },
            ),
            requester,
        )

    def on_reserve_reply(self, message: Message) -> None:
        self._probes.record_reply(
            message.payload["job_id"], message.sender, message.payload
        )

    def _probe_decide(self, pending: PendingPoll) -> None:
        """Transfer on acceptance; on refusal (or timeout) cancel the
        reservations — they are evidently stale — and go local."""
        job = pending.job
        if pending.replies and pending.replies[0][1]["accept"]:
            self.transfer_job(job, pending.replies[0][0])
            return
        if pending.replies:  # explicit refusal: drop all reservations
            self.cancellations += 1
            for reserver, _ in self._reservations:
                self.send_to_peer(
                    Message(MessageKind.RESERVE_CANCEL, payload={"reply_to": self}),
                    reserver,
                )
            self._reservations.clear()
        self.schedule_local(job)

    def on_reserve_cancel(self, message: Message) -> None:
        """Two directions share this kind: a holder dropping our
        reservation (legacy; allow a fresh advert soon), or — with the
        ``drop`` flag — a reserver retracting the reservation it gave us
        because a crash invalidated the advertised capacity."""
        if message.payload.get("drop"):
            reserver = message.payload["reply_to"]
            self._reservations = [
                (s, t) for s, t in self._reservations if s is not reserver
            ]
            return
        self._last_advert = -float("inf")

    # -- crash invalidation -----------------------------------------------
    def on_cluster_degraded(self, resource_id: int) -> None:
        """A local resource died: if the cluster can no longer honor its
        advertised reservations (average load back above ``T_l``),
        retract them at every holder so stale reservations do not route
        jobs into a degraded cluster."""
        if not self._advertised_to:
            return
        load = self.local_average_load()
        if load == load and load < self.t_l:  # NaN-safe: all-dead -> retract
            return
        for peer in self._advertised_to:
            self.retractions += 1
            self.send_to_peer(
                Message(
                    MessageKind.RESERVE_CANCEL,
                    payload={"drop": True, "reply_to": self},
                ),
                peer,
            )
        self._advertised_to.clear()


RESERVE_INFO = RMSInfo(
    name="RESERVE",
    scheduler_cls=ReserveScheduler,
    mechanism="push",
    uses_volunteering=True,
)
