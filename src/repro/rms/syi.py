"""Sy-I: the symmetric superscheduler (R-I push + S-I pull fallback).

Paper §3.3: "This combines S-I and R-I.  As in R-I, each scheduler will
advertise its own underutilized resources periodically.  Based on this
information a scheduler with a new job will schedule the job locally or
send [it] to the advertising scheduler.  However, if a new job arrives
at a scheduler which has received no advertisements, it will use the
S-I approach to schedule the job."

Sy-I therefore pays for **both** estimation mechanisms: the periodic
volunteer plane is always on, and every REMOTE arrival without a fresh
advertisement falls back to an ``L_p``-wide poll — all of it relayed
through the shared middleware.  That doubled appetite for status
traffic is exactly why the paper finds Sy-I the least scalable
distributed design when the network (Fig. 2) or the estimator plane
(Fig. 4) grows.
"""

from __future__ import annotations

from typing import List, Tuple

from ..grid.jobs import Job
from ..network.messages import Message, MessageKind
from .base import PendingPoll, PollBook, RMSInfo
from .superscheduler import SuperScheduler

__all__ = ["SymmetricScheduler", "SYI_INFO"]


class SymmetricScheduler(SuperScheduler):
    """The Sy-I hybrid superscheduler."""

    #: period of the volunteering loop (enabler)
    volunteer_interval: float = 120.0
    #: how long a received advertisement stays usable
    advert_ttl: float = 240.0
    #: poll fan-in timeout for the S-I fallback path
    poll_timeout: float = 40.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: received adverts: (advertiser, time), most recent last
        self._adverts: List[Tuple[SuperScheduler, float]] = []
        self._polls = PollBook(self, self.poll_timeout, self._decide_poll)
        self._volunteer_event = None
        #: diagnostics
        self.volunteers_sent = 0
        self.advert_placements = 0
        self.fallback_polls = 0

    # -- push plane (as R-I) ------------------------------------------------
    def start_volunteering(self, phase: float = 0.0) -> None:
        """Arm the periodic advertisement loop (called by the builder)."""
        self._volunteer_event = self.sim.schedule(
            phase % self.volunteer_interval, self._volunteer_tick
        )

    def _volunteer_tick(self) -> None:
        if self.table.min_load() < self.t_l:
            for peer in self.pick_peers(self.l_p):
                self.volunteers_sent += 1
                self.send_to_peer(
                    Message(MessageKind.VOLUNTEER, payload={"reply_to": self}),
                    peer,
                )
        self._volunteer_event = self.sim.schedule(
            self.volunteer_interval, self._volunteer_tick
        )

    def on_volunteer(self, message: Message) -> None:
        """Remember the advertisement for upcoming arrivals."""
        advertiser = message.payload["reply_to"]
        self._adverts = [(s, t) for s, t in self._adverts if s is not advertiser]
        self._adverts.append((advertiser, self.sim.now))

    def _fresh_advertiser(self) -> SuperScheduler | None:
        cutoff = self.sim.now - self.advert_ttl
        while self._adverts and self._adverts[0][1] < cutoff:
            self._adverts.pop(0)
        return self._adverts[-1][0] if self._adverts else None

    # -- job arrivals ---------------------------------------------------------
    def on_remote_job(self, job: Job) -> None:
        """Use a fresh advertisement if one exists; otherwise fall back
        to the S-I polling path."""
        advertiser = self._fresh_advertiser()
        if advertiser is not None:
            self.advert_placements += 1
            if self.local_average_load() > self.t_l:
                self.transfer_job(job, advertiser)
            else:
                self.schedule_local(job)
            return
        # S-I fallback
        peers = self.pick_peers(self.l_p)
        pending = self._polls.open(job, expected=len(peers))
        if peers:
            self.fallback_polls += 1
        for peer in peers:
            self.send_to_peer(
                Message(
                    MessageKind.POLL_REQUEST,
                    payload={
                        "job_id": job.job_id,
                        "demand": job.spec.execution_time,
                        "reply_to": self,
                    },
                ),
                peer,
            )

    def _decide_poll(self, pending: PendingPoll) -> None:
        job = pending.job
        demand = job.spec.execution_time
        candidates = [(None, self.att(demand), self.rus())]
        for peer, payload in pending.replies:
            candidates.append((peer, payload["awt"] + payload["ert"], payload["rus"]))
        chosen = self.choose_by_att(demand, candidates)
        if chosen is None:
            self.schedule_local(job)
        else:
            self.transfer_job(job, chosen)

    # -- answering the pull plane (as S-I) -------------------------------------
    def on_poll_request(self, message: Message) -> None:
        """Answer fallback polls exactly as S-I does."""
        self.send_to_peer(
            Message(
                MessageKind.POLL_REPLY,
                payload={
                    "job_id": message.payload["job_id"],
                    "awt": self.awt(),
                    "ert": self.ert(message.payload["demand"]),
                    "rus": self.rus(),
                },
            ),
            message.payload["reply_to"],
        )

    def on_poll_reply(self, message: Message) -> None:
        self._polls.record_reply(
            message.payload["job_id"], message.sender, message.payload
        )


SYI_INFO = RMSInfo(
    name="Sy-I",
    scheduler_cls=SymmetricScheduler,
    uses_middleware=True,
    mechanism="hybrid",
    uses_volunteering=True,
)
