"""Shared RMS-policy machinery.

Each of the paper's seven RMS designs is a
:class:`~repro.grid.scheduler.SchedulerBase` subclass implementing its
protocol in the ``on_*`` hooks, plus a bit of metadata
(:class:`RMSInfo`) that tells the system builder how to wire it
(centralized?, middleware?, periodic updates?).

This module also provides :class:`PendingPoll`, the bookkeeping every
polling protocol (LOWEST, S-I, Sy-I's fallback) shares: a per-job record
of outstanding poll replies with a timeout, so a lost or slow reply can
never strand a job.

Job migration safety: :meth:`SchedulerBase.transfer_job` may be handed a
*parked* (WAITING) job when a push protocol finds it a remote home; the
job must leave the WAITING state immediately — before the transfer
message is even in flight — or the park-timeout could double-place it.
:func:`unpark_for_transfer` centralizes that transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..grid.jobs import Job, JobState
from ..grid.scheduler import SchedulerBase

__all__ = ["RMSInfo", "PendingPoll", "PollBook", "unpark_for_transfer"]


@dataclass(frozen=True)
class RMSInfo:
    """Builder-facing metadata of one RMS design.

    Attributes
    ----------
    name:
        Canonical name as used in the paper (e.g. ``"LOWEST"``).
    scheduler_cls:
        The :class:`SchedulerBase` subclass implementing the protocol.
    centralized:
        ``True`` for CENTRAL: one scheduler manages the entire pool.
    uses_middleware:
        ``True`` for the superscheduler designs (S-I, R-I, Sy-I) whose
        inter-scheduler traffic is relayed by the Grid middleware.
    mechanism:
        ``"pull"``, ``"push"``, ``"hybrid"``, or ``"central"`` — the
        status-estimation mechanism classification used in the paper's
        Figure-5 discussion.
    uses_volunteering:
        Whether the design runs a periodic volunteering/advertisement
        loop (RESERVE, AUCTION triggers; R-I and Sy-I timers), and hence
        responds to the "interval for resource volunteering" enabler.
    """

    name: str
    scheduler_cls: type
    centralized: bool = False
    uses_middleware: bool = False
    mechanism: str = "pull"
    uses_volunteering: bool = False


def unpark_for_transfer(job: Job) -> None:
    """Take ``job`` out of the WAITING state prior to a remote transfer.

    A parked job has a pending park-timeout that fires
    ``schedule_local`` if the job is still WAITING; flipping the state
    back to SUBMITTED *before* sending the transfer closes the race in
    which the timeout and the transfer both place the job.
    """
    if job.state == JobState.WAITING:
        job.state = JobState.SUBMITTED


class PendingPoll:
    """State of one in-flight poll fan-out for one job.

    Attributes
    ----------
    job:
        The job awaiting a placement decision.
    expected:
        Number of replies requested.
    replies:
        Collected ``(peer, payload)`` pairs.
    closed:
        Set once the decision was made (late replies are ignored).
    """

    __slots__ = ("job", "expected", "replies", "closed")

    def __init__(self, job: Job, expected: int) -> None:
        self.job = job
        self.expected = expected
        self.replies: List[Tuple[SchedulerBase, dict]] = []
        self.closed = False

    @property
    def complete(self) -> bool:
        """Whether every requested reply has arrived."""
        return len(self.replies) >= self.expected


class PollBook:
    """Registry of pending polls keyed by job id, with timeouts.

    Parameters
    ----------
    scheduler:
        Owning scheduler (provides the simulator for timeouts).
    timeout:
        Time after which an incomplete poll is force-decided.
    decide:
        Callback ``decide(pending)`` invoked exactly once per poll —
        either when all replies arrived or at timeout.
    """

    def __init__(
        self,
        scheduler: SchedulerBase,
        timeout: float,
        decide: Callable[[PendingPoll], None],
    ) -> None:
        if timeout <= 0.0:
            raise ValueError("poll timeout must be positive")
        self._scheduler = scheduler
        self._timeout = timeout
        self._decide = decide
        self._pending: Dict[int, PendingPoll] = {}

    def open(self, job: Job, expected: int) -> PendingPoll:
        """Register a poll for ``job`` expecting ``expected`` replies.

        With ``expected == 0`` the decision fires immediately (no peers
        to ask)."""
        pending = PendingPoll(job, expected)
        self._pending[job.job_id] = pending
        if expected == 0:
            self._close(pending)
        else:
            self._scheduler.sim.schedule(self._timeout, self._on_timeout, job.job_id)
        return pending

    def record_reply(self, job_id: int, peer: SchedulerBase, payload: dict) -> None:
        """Record one reply; closes the poll when the fan-in completes.

        Replies for unknown/closed polls (timeouts already fired, or
        duplicated messages) are dropped silently.
        """
        pending = self._pending.get(job_id)
        if pending is None or pending.closed:
            return
        pending.replies.append((peer, payload))
        if pending.complete:
            self._close(pending)

    def _on_timeout(self, job_id: int) -> None:
        pending = self._pending.get(job_id)
        if pending is not None and not pending.closed:
            self._close(pending)

    def _close(self, pending: PendingPoll) -> None:
        pending.closed = True
        self._pending.pop(pending.job.job_id, None)
        self._decide(pending)

    @property
    def open_count(self) -> int:
        """Number of polls still awaiting replies (diagnostics)."""
        return len(self._pending)
