"""The seven RMS designs evaluated in the paper, reconstructed from
its §3.3 descriptions (and the cited Zhou / Leland–Ott / Shan et al.
algorithms)."""

from .auction import AUCTION_INFO, AuctionScheduler
from .base import PendingPoll, PollBook, RMSInfo, unpark_for_transfer
from .central import CENTRAL_INFO, CentralScheduler
from .lowest import LOWEST_INFO, LowestScheduler
from .registry import ALL_RMS, RMS_BY_NAME, get_rms, rms_names
from .reserve import RESERVE_INFO, ReserveScheduler
from .ri import RI_INFO, ReceiverInitiatedScheduler
from .si import SI_INFO, SenderInitiatedScheduler
from .superscheduler import SuperScheduler
from .syi import SYI_INFO, SymmetricScheduler

__all__ = [
    "ALL_RMS",
    "AUCTION_INFO",
    "AuctionScheduler",
    "CENTRAL_INFO",
    "CentralScheduler",
    "LOWEST_INFO",
    "LowestScheduler",
    "PendingPoll",
    "PollBook",
    "RESERVE_INFO",
    "ReserveScheduler",
    "RI_INFO",
    "RMSInfo",
    "RMS_BY_NAME",
    "ReceiverInitiatedScheduler",
    "SI_INFO",
    "SYI_INFO",
    "SenderInitiatedScheduler",
    "SuperScheduler",
    "SymmetricScheduler",
    "get_rms",
    "rms_names",
    "unpark_for_transfer",
]
