"""Additional baselines beyond the paper's seven: RANDOM and THRESHOLD.

Zhou's trace-driven load-balancing study — the source of LOWEST and
RESERVE — also evaluates two simpler designs that make useful
calibration anchors for the scalability metric:

* **RANDOM**: a REMOTE job is transferred to a uniformly random remote
  scheduler, no state consulted.  Zero estimation overhead beyond the
  shared periodic-update plane; placement quality relies purely on
  statistical spreading.
* **THRESHOLD**: a REMOTE job is offered to randomly probed peers one
  at a time; the first whose cluster load is below ``T_l`` accepts.  At
  most ``L_p`` sequential probes, then the job runs locally.  This is
  the classic sender-initiated threshold policy (Eager/Lazowska/Zahorjan
  style) with per-probe rather than fan-out cost.

Neither is part of the paper's evaluation; they ship as extension
baselines (used by the extension bench and available to
:func:`repro.rms.get_rms` via :func:`register_extras`).
"""

from __future__ import annotations

from ..grid.jobs import Job
from ..grid.scheduler import SchedulerBase
from ..network.messages import Message, MessageKind
from .base import PendingPoll, PollBook, RMSInfo

__all__ = ["RandomScheduler", "ThresholdScheduler", "RANDOM_INFO", "THRESHOLD_INFO", "register_extras"]


class RandomScheduler(SchedulerBase):
    """Blind random transfer of REMOTE jobs."""

    def on_remote_job(self, job: Job) -> None:
        """Send the job to one random peer (or run locally when the
        neighborhood is empty)."""
        peers = self.pick_peers(1)
        if peers:
            self.transfer_job(job, peers[0])
        else:
            self.schedule_local(job)


class ThresholdScheduler(SchedulerBase):
    """Sequential threshold probing (first under-threshold peer wins)."""

    #: how long to wait for each probe's answer
    probe_timeout: float = 30.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._probes = PollBook(self, self.probe_timeout, self._decide)
        #: remaining candidates per in-flight job
        self._remaining = {}
        #: probes issued (diagnostics)
        self.probes_sent = 0

    def on_remote_job(self, job: Job) -> None:
        """Start the sequential probe chain."""
        self._remaining[job.job_id] = self.pick_peers(self.l_p)
        self._next_probe(job)

    def _next_probe(self, job: Job) -> None:
        candidates = self._remaining.get(job.job_id, [])
        if not candidates:
            self._remaining.pop(job.job_id, None)
            self.schedule_local(job)
            return
        peer = candidates.pop(0)
        self.probes_sent += 1
        self._probes.open(job, expected=1)
        self.send_to_peer(
            Message(
                MessageKind.POLL_REQUEST,
                payload={"job_id": job.job_id, "reply_to": self},
            ),
            peer,
        )

    def _decide(self, pending: PendingPoll) -> None:
        job = pending.job
        if pending.replies and pending.replies[0][1]["below_threshold"]:
            self._remaining.pop(job.job_id, None)
            self.transfer_job(job, pending.replies[0][0])
        else:
            self._next_probe(job)  # refused or timed out: try the next one

    def on_poll_request(self, message: Message) -> None:
        """Accept iff the local average load is below ``T_l``."""
        self.send_to_peer(
            Message(
                MessageKind.POLL_REPLY,
                payload={
                    "job_id": message.payload["job_id"],
                    "below_threshold": self.local_average_load() < self.t_l,
                },
            ),
            message.payload["reply_to"],
        )

    def on_poll_reply(self, message: Message) -> None:
        self._probes.record_reply(
            message.payload["job_id"], message.sender, message.payload
        )


RANDOM_INFO = RMSInfo(name="RANDOM", scheduler_cls=RandomScheduler, mechanism="none")
THRESHOLD_INFO = RMSInfo(
    name="THRESHOLD", scheduler_cls=ThresholdScheduler, mechanism="pull"
)


def register_extras() -> None:
    """Install RANDOM and THRESHOLD into the RMS registry (idempotent).

    They are deliberately not registered at import time: ``ALL_RMS``
    must stay exactly the paper's seven for the reproduction harness.
    """
    from . import registry

    for info in (RANDOM_INFO, THRESHOLD_INFO):
        if info.name not in registry.RMS_BY_NAME:
            registry.RMS_BY_NAME[info.name] = info
