"""CENTRAL: one scheduler decides for every resource in the system.

Paper §3.3: "Here a centralized scheduler makes decisions for all the
resources in the system.  The resources update the scheduler every tau
seconds with their loading conditions.  If loading conditions at the
resource did not change significantly from the previous update, an
update might be suppressed."

Mechanically everything CENTRAL needs already lives in
:class:`~repro.grid.scheduler.SchedulerBase`: the builder hands the
single scheduler the *entire* resource pool (so its status table — and
therefore its per-decision scan cost — covers every resource), all jobs
are "local", and the suppression-enabled periodic update plane is the
resources' default reporting behaviour.  What makes CENTRAL interesting
for the scalability study is emergent: a single finite-rate message
server absorbing the whole system's updates and decisions saturates as
either the pool (Case 1) or the workload (Case 2) grows.
"""

from __future__ import annotations

from ..grid.jobs import Job
from ..grid.scheduler import SchedulerBase
from .base import RMSInfo

__all__ = ["CentralScheduler", "CENTRAL_INFO"]


class CentralScheduler(SchedulerBase):
    """The centralized scheduler: every job placed by the global table."""

    def on_remote_job(self, job: Job) -> None:
        """REMOTE-class jobs are placed exactly like LOCAL ones — there
        is no "remote" for a scheduler that owns the whole pool."""
        self.schedule_local(job)


CENTRAL_INFO = RMSInfo(
    name="CENTRAL",
    scheduler_cls=CentralScheduler,
    centralized=True,
    mechanism="central",
)
