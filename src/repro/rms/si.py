"""S-I: the sender-initiated superscheduler.

Paper §3.3: "On a REMOTE job arrival, a scheduler polls L_p remote
schedulers.  The remote schedulers respond with approximate waiting
time (AWT), expected run time (ERT) for the particular job and resource
utilization status (RUS) for the resources in their cluster.  Based on
the collected information, the polling scheduler calculates the
potential turnaround cost (TC) at [the] local cluster and each remote
cluster.  To compute the optimal TC, first the minimum approximate
turnaround time (ATT) is calculated as [the] sum of the AWT and ERT.
If the minimum ATT is within a small tolerance psi for multiple
schedulers, the scheduler with [the] smallest RUS is chosen to accept
the job."

S-I is the **pull** superscheduler: all estimation traffic is solicited
at job-arrival time and relayed through the Grid middleware, so its
overhead rides the REMOTE job rate times ``L_p`` — cheap at low fan-out,
expensive as Table 5 scales ``L_p`` up.
"""

from __future__ import annotations

from ..grid.jobs import Job
from ..network.messages import Message, MessageKind
from .base import PendingPoll, PollBook, RMSInfo
from .superscheduler import SuperScheduler

__all__ = ["SenderInitiatedScheduler", "SI_INFO"]


class SenderInitiatedScheduler(SuperScheduler):
    """The S-I pull superscheduler."""

    #: how long to wait for poll replies before deciding anyway
    poll_timeout: float = 40.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._polls = PollBook(self, self.poll_timeout, self._decide)
        #: diagnostics
        self.polls_started = 0

    # -- sender side -----------------------------------------------------
    def on_remote_job(self, job: Job) -> None:
        """Poll ``L_p`` peers for AWT/ERT/RUS through the middleware."""
        peers = self.pick_peers(self.l_p)
        pending = self._polls.open(job, expected=len(peers))
        if peers:
            self.polls_started += 1
        for peer in peers:
            self.send_to_peer(
                Message(
                    MessageKind.POLL_REQUEST,
                    payload={
                        "job_id": job.job_id,
                        "demand": job.spec.execution_time,
                        "reply_to": self,
                    },
                ),
                peer,
            )

    def _decide(self, pending: PendingPoll) -> None:
        """Minimum-ATT placement with RUS tie-breaking (local included)."""
        job = pending.job
        demand = job.spec.execution_time
        candidates = [(None, self.att(demand), self.rus())]
        for peer, payload in pending.replies:
            candidates.append((peer, payload["awt"] + payload["ert"], payload["rus"]))
        chosen = self.choose_by_att(demand, candidates)
        if chosen is None:
            self.schedule_local(job)
        else:
            self.transfer_job(job, chosen)

    # -- receiver side -----------------------------------------------------
    def on_poll_request(self, message: Message) -> None:
        """Answer with this cluster's AWT, job-specific ERT, and RUS."""
        self.send_to_peer(
            Message(
                MessageKind.POLL_REPLY,
                payload={
                    "job_id": message.payload["job_id"],
                    "awt": self.awt(),
                    "ert": self.ert(message.payload["demand"]),
                    "rus": self.rus(),
                },
            ),
            message.payload["reply_to"],
        )

    def on_poll_reply(self, message: Message) -> None:
        self._polls.record_reply(
            message.payload["job_id"], message.sender, message.payload
        )


SI_INFO = RMSInfo(
    name="S-I",
    scheduler_cls=SenderInitiatedScheduler,
    uses_middleware=True,
    mechanism="pull",
)
