"""R-I: the receiver-initiated superscheduler.

Paper §3.3: "Periodically, a scheduler S_x checks RUS for the resources
in its cluster.  If the RUS for a resource in its cluster is below
threshold delta, S_x decides to execute remote jobs and informs at most
L_p remote schedulers.  A remote scheduler S_y, receiving S_x's
intention will send S_x the resource demands for the first job in its
wait queue.  When S_x replies back with its ATT and RUS, S_y uses this
information to compute TC at local and remote sites and schedule the
job accordingly."

R-I is the **push** superscheduler: the underutilized side initiates.
Its overhead is dominated by the periodic volunteering loop (paid even
when nobody needs help) plus a three-message negotiation per matched
job.  The volunteering period is Table 5's "interval for resource
volunteering" enabler.

Implementation notes
--------------------
* ``delta`` is identified with Table 1's threshold ``T_l``: a resource
  with known load below it is "underutilized".
* Busy schedulers hold REMOTE-class jobs in the scheduler wait queue
  (that *is* the "wait queue" the paper's S_y consults); a park timeout
  forces local dispatch so an advert drought cannot strand jobs.
"""

from __future__ import annotations

from ..grid.jobs import Job, JobState
from ..network.messages import Message, MessageKind
from .base import RMSInfo, unpark_for_transfer
from .superscheduler import SuperScheduler

__all__ = ["ReceiverInitiatedScheduler", "RI_INFO"]


class ReceiverInitiatedScheduler(SuperScheduler):
    """The R-I push superscheduler."""

    #: period of the RUS self-check / volunteering loop (enabler)
    volunteer_interval: float = 120.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: diagnostics
        self.volunteers_sent = 0
        self.demands_sent = 0
        self._volunteer_event = None

    # -- lifecycle ---------------------------------------------------------
    def start_volunteering(self, phase: float = 0.0) -> None:
        """Arm the periodic RUS self-check (called by the builder)."""
        self._volunteer_event = self.sim.schedule(
            phase % self.volunteer_interval, self._volunteer_tick
        )

    def _volunteer_tick(self) -> None:
        if self.table.min_load() < self.t_l:  # an underutilized resource
            for peer in self.pick_peers(self.l_p):
                self.volunteers_sent += 1
                self.send_to_peer(
                    Message(MessageKind.VOLUNTEER, payload={"reply_to": self}),
                    peer,
                )
        self._volunteer_event = self.sim.schedule(
            self.volunteer_interval, self._volunteer_tick
        )

    # -- overloaded sender side (S_y) ---------------------------------------
    def on_remote_job(self, job: Job) -> None:
        """Hold REMOTE jobs while the cluster is above threshold; they
        wait for a volunteer (or the park timeout)."""
        if self.local_average_load() > self.t_l:
            self.park_job(job)
        else:
            self.schedule_local(job)

    def on_volunteer(self, message: Message) -> None:
        """A volunteer appeared: negotiate for our oldest waiting job."""
        volunteer = message.payload["reply_to"]
        job = self.peek_parked()
        if job is None:
            return
        self.demands_sent += 1
        self.send_to_peer(
            Message(
                MessageKind.DEMAND,
                payload={
                    "job_id": job.job_id,
                    "demand": job.spec.execution_time,
                    "reply_to": self,
                },
            ),
            volunteer,
        )

    def on_demand_reply(self, message: Message) -> None:
        """Compare the volunteer's ATT/RUS against local; place the job."""
        job = self._find_parked(message.payload["job_id"])
        if job is None:
            return  # the park timeout already placed it
        demand = job.spec.execution_time
        candidates = [
            (None, self.att(demand), self.rus()),
            (message.sender, message.payload["att"], message.payload["rus"]),
        ]
        chosen = self.choose_by_att(demand, candidates)
        if chosen is None:
            self.schedule_local(job)  # placement from WAITING is legal
        else:
            unpark_for_transfer(job)
            self.transfer_job(job, chosen)

    def _find_parked(self, job_id: int) -> Job | None:
        for j in self._wait_queue:
            if j.job_id == job_id and j.state == JobState.WAITING:
                return j
        return None

    # -- volunteer side (S_x) -----------------------------------------------
    def on_demand(self, message: Message) -> None:
        """Answer a demand with our ATT for that job and our RUS."""
        self.send_to_peer(
            Message(
                MessageKind.DEMAND_REPLY,
                payload={
                    "job_id": message.payload["job_id"],
                    "att": self.att(message.payload["demand"]),
                    "rus": self.rus(),
                },
            ),
            message.payload["reply_to"],
        )


RI_INFO = RMSInfo(
    name="R-I",
    scheduler_cls=ReceiverInitiatedScheduler,
    uses_middleware=True,
    mechanism="push",
    uses_volunteering=True,
)
