"""AUCTION: idle clusters auction their capacity to overloaded ones.

Paper §3.3 (after Leland & Ott): "When a new job arrives, a scheduler
follows the same process as in LOWEST for initial scheduling.  When a
scheduler S_a finds a resource in its cluster is idle or has load below
threshold T_l, it sends out auction invitations to L_p neighboring
schedulers.  A scheduler S_b receiving the invitation finds a resource
in its local cluster with load above T_l, it replies back with a bid to
S_a.  The auctioning scheduler S_a accumulates bids over a small
interval and selects the bid from the bidder with the highest load."

AUCTION is a **hybrid**: invitations are pushed on observed idleness
(triggered by the status-update plane), while winning a bid effectively
pulls a job from the most-loaded bidder.  Both halves consume status
traffic, which is why the paper finds AUCTION (and Sy-I) degrade
fastest when the estimator plane is scaled up (Figs. 4, 6, 7).

Implementation notes
--------------------
* "Initial scheduling as in LOWEST" is read as LOWEST's *local* rule
  (least-loaded resource of the cluster); inter-cluster balancing is
  the auction's job.  Overloaded schedulers briefly *hold* REMOTE-class
  jobs at the scheduler (a bounded wait queue) so an auction award has
  something to hand over — the Leland–Ott style migration pool.
* Invitations are rate-limited by ``volunteer_interval`` and evaluated
  whenever the scheduler's view changes.
* Bids report the bidder's highest known resource load; the award asks
  the winner to transfer the oldest held job.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from ..grid.jobs import Job, JobState
from ..grid.scheduler import SchedulerBase
from ..network.messages import Message, MessageKind
from .base import RMSInfo, unpark_for_transfer

__all__ = ["AuctionScheduler", "AUCTION_INFO"]


class AuctionScheduler(SchedulerBase):
    """The AUCTION hybrid scheduler."""

    #: minimum spacing between auction rounds at one scheduler
    volunteer_interval: float = 120.0
    #: how long bids are accumulated before the auction closes
    auction_window: float = 10.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._auction_seq = itertools.count()
        #: open auctions: auction_id -> list of (bidder, load)
        self._open_auctions: Dict[int, List[Tuple[SchedulerBase, float]]] = {}
        self._last_invite = -float("inf")
        #: diagnostics
        self.auctions_started = 0
        self.bids_sent = 0
        self.awards_sent = 0

    # -- holding pool -----------------------------------------------------
    def on_remote_job(self, job: Job) -> None:
        """Hold REMOTE jobs at the scheduler while the cluster is above
        threshold (they are the auctionable pool); otherwise place
        locally at once."""
        if self.local_average_load() > self.t_l:
            self.park_job(job)
        else:
            self.schedule_local(job)

    # -- auctioneer side (idle cluster) ------------------------------------
    def _maybe_invite(self) -> None:
        if self.sim.now - self._last_invite < self.volunteer_interval:
            return
        if self.table.min_load() < max(self.t_l, 1.0):  # an idle/near-idle resource
            peers = self.pick_peers(self.l_p)
            if not peers:
                return
            self._last_invite = self.sim.now
            auction_id = next(self._auction_seq)
            self._open_auctions[auction_id] = []
            self.auctions_started += 1
            for peer in peers:
                self.send_to_peer(
                    Message(
                        MessageKind.AUCTION_INVITE,
                        payload={"auction_id": auction_id, "reply_to": self},
                    ),
                    peer,
                )
            self.sim.schedule(self.auction_window, self._close_auction, auction_id)

    def after_status_update(self, payload: dict) -> None:
        """Fresh state may reveal an idle resource worth auctioning."""
        self._maybe_invite()

    def after_completion(self, job: Job) -> None:
        """A completion may free a resource; consider inviting."""
        self._maybe_invite()

    def _close_auction(self, auction_id: int) -> None:
        bids = self._open_auctions.pop(auction_id, [])
        if not bids:
            return
        winner = max(bids, key=lambda b: b[1])[0]
        self.awards_sent += 1
        self.send_to_peer(
            Message(MessageKind.AUCTION_AWARD, payload={"reply_to": self}),
            winner,
        )

    def on_auction_bid(self, message: Message) -> None:
        """Collect a bid if its auction is still open."""
        auction_id = message.payload["auction_id"]
        bids = self._open_auctions.get(auction_id)
        if bids is not None:
            bids.append((message.payload["reply_to"], message.payload["load"]))

    # -- bidder side (overloaded cluster) ------------------------------------
    def on_auction_invite(self, message: Message) -> None:
        """Bid when this cluster is loaded (a held job or a resource
        above threshold) — the bid carries our pain level."""
        max_load = max(self.table.loads().values(), default=0.0)
        if self.parked_count > 0 or max_load > self.t_l:
            self.bids_sent += 1
            self.send_to_peer(
                Message(
                    MessageKind.AUCTION_BID,
                    payload={
                        "auction_id": message.payload["auction_id"],
                        "reply_to": self,
                        "load": max_load + self.parked_count,
                    },
                ),
                message.payload["reply_to"],
            )

    def on_auction_award(self, message: Message) -> None:
        """We won: hand the oldest held job to the auctioneer."""
        auctioneer = message.payload["reply_to"]
        job = self.pop_parked()
        if job is None:
            return  # pool drained since we bid; award wasted
        unpark_for_transfer(job)
        self.transfer_job(job, auctioneer)


AUCTION_INFO = RMSInfo(
    name="AUCTION",
    scheduler_cls=AuctionScheduler,
    mechanism="hybrid",
    uses_volunteering=True,
)
