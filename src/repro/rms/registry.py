"""Registry of the seven reconstructed RMS designs."""

from __future__ import annotations

from typing import Dict, List

from .auction import AUCTION_INFO
from .base import RMSInfo
from .central import CENTRAL_INFO
from .lowest import LOWEST_INFO
from .reserve import RESERVE_INFO
from .ri import RI_INFO
from .si import SI_INFO
from .syi import SYI_INFO

__all__ = ["ALL_RMS", "RMS_BY_NAME", "get_rms", "rms_names"]

#: the seven designs in the paper's presentation order
ALL_RMS: List[RMSInfo] = [
    CENTRAL_INFO,
    LOWEST_INFO,
    RESERVE_INFO,
    AUCTION_INFO,
    SI_INFO,
    RI_INFO,
    SYI_INFO,
]

RMS_BY_NAME: Dict[str, RMSInfo] = {info.name: info for info in ALL_RMS}


def get_rms(name: str) -> RMSInfo:
    """Look up an RMS design by its paper name (case-insensitive).

    Raises
    ------
    KeyError
        With the list of valid names, if ``name`` is unknown.
    """
    # Canonical names use the paper's exact casing ("Sy-I", "R-I", ...);
    # accept any casing from callers.
    for canonical, info in RMS_BY_NAME.items():
        if canonical.lower() == name.lower():
            return info
    raise KeyError(f"unknown RMS {name!r}; valid: {sorted(RMS_BY_NAME)}")


def rms_names() -> List[str]:
    """The seven canonical RMS names, in paper order."""
    return [info.name for info in ALL_RMS]
