"""Message transport substrate: OSPF-like routing + delivery."""

from .messages import DEFAULT_SIZES, Message, MessageKind
from .routing import Router
from .transport import Network

__all__ = ["DEFAULT_SIZES", "Message", "MessageKind", "Network", "Router"]
