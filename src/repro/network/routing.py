"""OSPF-like routing over a static topology.

The paper's simulator "uses an OSPF like algorithm for routing messages
between resources".  OSPF floods link-state advertisements and then each
router runs Dijkstra over the resulting link-state database.  Our
topologies are static for the duration of a run, so the link-state
database equals the topology and routing reduces to latency-weighted
shortest paths — computed lazily per source and cached.

The cache is the hot data structure of the whole simulator: a 1000-node
Case-2 run prices millions of messages, but only between a handful of
distinct (scheduler, scheduler/resource) pairs, so per-source caching
makes pricing O(1) amortized.
"""

from __future__ import annotations

from typing import Dict, List

from ..topology.graph import Topology
from ..topology.paths import PathInfo, single_source

__all__ = ["Router"]


class Router:
    """Latency-shortest-path router with per-source caching.

    Parameters
    ----------
    topo:
        The (static) router topology; must be connected for every pair
        of mapped sites to communicate.
    """

    def __init__(self, topo: Topology) -> None:
        self.topology = topo
        self._cache: Dict[int, List[PathInfo]] = {}

    def _table(self, src: int) -> List[PathInfo]:
        table = self._cache.get(src)
        if table is None:
            table = single_source(self.topology, src)
            self._cache[src] = table
        return table

    def path_info(self, src: int, dst: int) -> PathInfo:
        """Return ``(latency, hops, transmission_factor)`` for src → dst.

        ``transmission_factor`` is ``sum(1/bandwidth)`` over the path, so
        a message of size ``s`` spends ``latency + s * factor`` in
        transit (store-and-forward on every hop).
        """
        if src == dst:
            return (0.0, 0, 0.0)
        return self._table(src)[dst]

    def transit_delay(self, src: int, dst: int, size: float) -> float:
        """End-to-end transit time of a ``size``-unit message src → dst."""
        latency, _, factor = self.path_info(src, dst)
        return latency + size * factor

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links on the latency-shortest path src → dst."""
        return self.path_info(src, dst)[1]

    @property
    def cached_sources(self) -> int:
        """Number of sources with a computed routing table (diagnostics)."""
        return len(self._cache)
