"""OSPF-like routing over a static topology.

The paper's simulator "uses an OSPF like algorithm for routing messages
between resources".  OSPF floods link-state advertisements and then each
router runs Dijkstra over the resulting link-state database.  Our
topologies are static for the duration of a run, so the link-state
database equals the topology and routing reduces to latency-weighted
shortest paths — computed lazily per source and cached.

The cache is the hot data structure of the whole simulator: a 1000-node
Case-2 run prices millions of messages, but only between a handful of
distinct (scheduler, scheduler/resource) pairs, so per-source caching
makes pricing O(1) amortized.
"""

from __future__ import annotations

from typing import Dict, List

from ..topology.graph import Topology
from ..topology.paths import PathInfo, single_source

__all__ = ["Router"]


class Router:
    """Latency-shortest-path router with per-source caching.

    Parameters
    ----------
    topo:
        The (static) router topology; must be connected for every pair
        of mapped sites to communicate.
    """

    def __init__(self, topo: Topology) -> None:
        self.topology = topo
        self._cache: Dict[int, List[PathInfo]] = {}
        #: When set, an uncached source may be priced from the
        #: destination's cached table instead of running its own
        #: Dijkstra.  The topology is undirected, so shortest-path
        #: *latency* and *transmission factor* are symmetric; only the
        #: hop count of tie-broken equal-latency paths can differ.
        #: Fluid-mode builders enable this: at 1e5-scale pools the
        #: resource→scheduler completion sends would otherwise trigger
        #: one full Dijkstra per resource node.
        self.symmetric = False

    def prime(self, src: int, table: List[PathInfo]) -> None:
        """Seed the cache with a precomputed ``single_source`` table.

        The grid mapper already runs one Dijkstra per scheduler site
        for cluster assignment; donating those tables here means the
        hottest sources (schedulers and their co-located estimators)
        never pay a second shortest-path sweep.  The table must be the
        exact ``single_source`` output for ``src`` — priming is a pure
        cache warm-up and cannot change any priced path.
        """
        self._cache.setdefault(src, table)

    def _table(self, src: int) -> List[PathInfo]:
        table = self._cache.get(src)
        if table is None:
            table = single_source(self.topology, src)
            self._cache[src] = table
        return table

    def path_info(self, src: int, dst: int) -> PathInfo:
        """Return ``(latency, hops, transmission_factor)`` for src → dst.

        ``transmission_factor`` is ``sum(1/bandwidth)`` over the path, so
        a message of size ``s`` spends ``latency + s * factor`` in
        transit (store-and-forward on every hop).
        """
        if src == dst:
            return (0.0, 0, 0.0)
        if self.symmetric and src not in self._cache:
            table = self._cache.get(dst)
            if table is not None:
                return table[src]
        return self._table(src)[dst]

    def transit_delay(self, src: int, dst: int, size: float) -> float:
        """End-to-end transit time of a ``size``-unit message src → dst."""
        latency, _, factor = self.path_info(src, dst)
        return latency + size * factor

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links on the latency-shortest path src → dst."""
        return self.path_info(src, dst)[1]

    @property
    def cached_sources(self) -> int:
        """Number of sources with a computed routing table (diagnostics)."""
        return len(self._cache)
