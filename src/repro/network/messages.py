"""Message taxonomy for the Grid control and data planes.

Every interaction in the managed system is a :class:`Message` routed by
:class:`~repro.network.transport.Network`.  Message kinds fall into three
groups:

* **status plane** — resource load reports flowing to estimators and on
  to schedulers (the "state estimation" the paper charges to ``G(k)``);
* **scheduling plane** — the per-RMS protocol messages (polls, bids,
  reservations, advertisements, middleware-relayed queries);
* **job plane** — job submissions, transfers between clusters, dispatch
  to a resource, and completion notifications.

Each kind carries a default payload size (in abstract payload units)
used by the transport to price transmission time on finite-bandwidth
links; job transfers are an order of magnitude heavier than control
messages, matching the usual Grid assumption.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["MessageKind", "Message", "DEFAULT_SIZES"]


class MessageKind:
    """String constants naming every message type in the system."""

    # status plane
    STATUS_UPDATE = "status_update"        # resource -> estimator
    STATUS_FORWARD = "status_forward"      # estimator -> scheduler
    RESOURCE_DEAD = "resource_dead"        # estimator -> scheduler (liveness)

    # scheduling plane (shared)
    POLL_REQUEST = "poll_request"          # scheduler -> scheduler (LOWEST/S-I)
    POLL_REPLY = "poll_reply"

    # RESERVE protocol
    RESERVE_ADVERT = "reserve_advert"      # lightly loaded cluster registers reservations
    RESERVE_PROBE = "reserve_probe"        # overloaded cluster probes a reservation
    RESERVE_REPLY = "reserve_reply"
    RESERVE_CANCEL = "reserve_cancel"

    # AUCTION protocol
    AUCTION_INVITE = "auction_invite"      # idle cluster invites bids
    AUCTION_BID = "auction_bid"            # overloaded cluster bids
    AUCTION_AWARD = "auction_award"        # winner asked to transfer a job

    # R-I / Sy-I protocol
    VOLUNTEER = "volunteer"                # underutilized cluster advertises itself
    DEMAND = "demand"                      # job demands sent to a volunteer
    DEMAND_REPLY = "demand_reply"          # volunteer's ATT/RUS answer

    # job plane
    JOB_SUBMIT = "job_submit"              # workload source -> scheduler
    JOB_TRANSFER = "job_transfer"          # scheduler -> scheduler (remote execution)
    JOB_DISPATCH = "job_dispatch"          # scheduler -> resource
    JOB_COMPLETE = "job_complete"          # resource -> scheduler

    # middleware relay (S-I / R-I / Sy-I inter-scheduler traffic)
    MIDDLEWARE_RELAY = "middleware_relay"


#: Default payload sizes per message kind (payload units).  Control
#: messages are light; job transfers move the job image/state.
DEFAULT_SIZES: Dict[str, float] = {
    MessageKind.STATUS_UPDATE: 1.0,
    MessageKind.STATUS_FORWARD: 1.0,
    MessageKind.RESOURCE_DEAD: 1.0,
    MessageKind.POLL_REQUEST: 1.0,
    MessageKind.POLL_REPLY: 2.0,
    MessageKind.RESERVE_ADVERT: 1.0,
    MessageKind.RESERVE_PROBE: 1.0,
    MessageKind.RESERVE_REPLY: 1.0,
    MessageKind.RESERVE_CANCEL: 1.0,
    MessageKind.AUCTION_INVITE: 1.0,
    MessageKind.AUCTION_BID: 1.0,
    MessageKind.AUCTION_AWARD: 1.0,
    MessageKind.VOLUNTEER: 1.0,
    MessageKind.DEMAND: 2.0,
    MessageKind.DEMAND_REPLY: 2.0,
    MessageKind.JOB_SUBMIT: 4.0,
    MessageKind.JOB_TRANSFER: 20.0,
    MessageKind.JOB_DISPATCH: 4.0,
    MessageKind.JOB_COMPLETE: 1.0,
    MessageKind.MIDDLEWARE_RELAY: 1.0,
}


class Message:
    """A routed unit of communication between two entities.

    Attributes
    ----------
    kind:
        One of the :class:`MessageKind` constants.
    sender:
        Originating entity (its ``node`` locates the source router); may
        be ``None`` for external workload injection.
    payload:
        Kind-specific dictionary (job references, load figures, ...).
    size:
        Payload size in payload units (defaults to ``DEFAULT_SIZES``).
    created_at:
        Simulated send time, stamped by the transport.
    trace:
        Causal-tracing context ``(trace_id, parent span index)`` for
        messages carrying a sampled job; ``None`` otherwise (always
        ``None`` when tracing is off).
    """

    __slots__ = ("kind", "sender", "payload", "size", "created_at", "trace")

    def __init__(
        self,
        kind: str,
        sender: Optional[Any] = None,
        payload: Optional[Dict[str, Any]] = None,
        size: Optional[float] = None,
    ) -> None:
        self.kind = kind
        self.sender = sender
        self.payload = payload if payload is not None else {}
        # Only explicitly passed sizes need validating; the defaults
        # table is known-positive, and message construction is hot
        # (every status update, poll, and dispatch allocates one).
        if size is None:
            size = DEFAULT_SIZES.get(kind, 1.0)
        elif size <= 0.0:
            raise ValueError("message size must be positive")
        self.size = size
        self.created_at: Optional[float] = None
        self.trace = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        src = getattr(self.sender, "name", None)
        return f"Message({self.kind} from {src}, size={self.size})"
