"""Message transport: delivery of messages between entities.

:class:`Network` glues the routing substrate to the event kernel: a call
to :meth:`Network.send` prices the message over the latency-shortest
path, optionally applies the **link-delay scaling enabler** (one of the
paper's tuning knobs in Tables 2–5: provisioning faster or slower links
for the control plane), and schedules ``recipient.deliver(message)``
after the transit delay.

Failure injection: a configurable ``loss_probability`` silently drops
**control-plane** messages in flight (status updates, polls, bids,
adverts).  The job plane — submission, dispatch, transfer, completion —
is modeled as reliable transport (as in real grid middleware, where job
control rides TCP with retries), so loss degrades scheduling quality
without stranding jobs.  All seven RMS protocols must tolerate control
loss without deadlocking (their timeouts/periodic behaviour re-drive
progress); the integration tests exercise it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..sim.entity import Entity
from ..sim.kernel import Simulator
from .messages import Message, MessageKind
from .routing import Router

__all__ = ["Network", "RELIABLE_KINDS"]

#: job-plane message kinds carried over reliable transport (never
#: subject to loss injection)
RELIABLE_KINDS = frozenset(
    {
        MessageKind.JOB_SUBMIT,
        MessageKind.JOB_DISPATCH,
        MessageKind.JOB_TRANSFER,
        MessageKind.JOB_COMPLETE,
        # Losing a dead-resource declaration would strand the victim's
        # jobs until the next sweep re-fires — model it as the retried
        # RPC it would be in a real RMS.
        MessageKind.RESOURCE_DEAD,
    }
)


def _effective_kind(message: Message) -> str:
    """The kind that decides reliability — unwrapping middleware relays
    so a relayed job transfer stays reliable."""
    if message.kind == MessageKind.MIDDLEWARE_RELAY:
        inner = message.payload.get("inner")
        if inner is not None:
            return inner.kind
    return message.kind


class Network:
    """Delivers messages between entities over a routed topology.

    Parameters
    ----------
    sim:
        The driving simulator.
    router:
        Path oracle over the topology.
    delay_scale:
        Multiplier on every transit delay — the "network link delay"
        scaling enabler of Tables 2–5.  ``1.0`` is the topology's native
        speed; values below 1 model faster provisioned links.
    loss_probability:
        Probability a message is dropped in flight (failure injection;
        ``0.0`` in all paper-reproduction experiments).
    rng:
        Randomness source for loss decisions (required if
        ``loss_probability > 0``).
    """

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        delay_scale: float = 1.0,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if delay_scale <= 0.0:
            raise ValueError("delay_scale must be positive")
        if not (0.0 <= loss_probability < 1.0):
            raise ValueError("loss_probability must be in [0, 1)")
        if loss_probability > 0.0 and rng is None:
            raise ValueError("loss injection requires an rng")
        self.sim = sim
        self.router = router
        self.delay_scale = delay_scale
        self.loss_probability = loss_probability
        self._rng = rng
        # Degradation windows (FaultPlan) stack extra loss / delay
        # factors on top of the base knobs; the effective values above
        # are recomputed on every push/pop.
        self._base_loss = loss_probability
        self._base_delay_scale = delay_scale
        self._degradations: List[tuple] = []
        #: total messages handed to the transport
        self.messages_sent = 0
        #: messages actually delivered (sent - dropped - in flight)
        self.messages_delivered = 0
        #: messages dropped by loss injection
        self.messages_dropped = 0
        #: total payload units accepted for transmission
        self.payload_sent = 0.0
        #: per-kind traffic accounting: kind -> [messages, payload,
        #: link_payload, hops].  ``link_payload`` is payload × hop count
        #: — the volume the message actually pushed across links under
        #: store-and-forward — so it is the network-load axis of the
        #: attribution report (transit time is latency, not RMS cost,
        #: hence the network never charges the ledger).
        self._traffic: Dict[str, List[float]] = {}
        #: optional ``(kind, delay)`` observer over every routed send —
        #: the causal tracer's latency histograms; ``None`` (free) by
        #: default, same discipline as the ledger observer
        self.latency_tap = None

    def send(self, message: Message, src_node: int, recipient: Entity) -> float:
        """Send ``message`` from ``src_node`` to ``recipient``.

        Returns
        -------
        float
            The transit delay that was applied (even for dropped
            messages, for symmetry in tests).
        """
        message.created_at = self.sim.now
        self.messages_sent += 1
        self.payload_sent += message.size
        if src_node == recipient.node:
            # Co-located handoff: transit over a zero-length path is
            # exactly 0.0 (`Router.path_info` returns zeros for
            # src == dst), so skip the router call on this hot path.
            # Loss injection below still applies, as it always did.
            delay = 0.0
            hops = 0
        else:
            latency, hops, factor = self.router.path_info(src_node, recipient.node)
            delay = self.delay_scale * (latency + message.size * factor)
        cell = self._traffic.get(message.kind)
        if cell is None:
            cell = self._traffic[message.kind] = [0, 0.0, 0.0, 0]
        cell[0] += 1
        cell[1] += message.size
        cell[2] += message.size * hops
        cell[3] += hops
        if self.latency_tap is not None:
            self.latency_tap(message.kind, delay)
        if (
            self.loss_probability > 0.0
            and _effective_kind(message) not in RELIABLE_KINDS
            and self._rng.random() < self.loss_probability
        ):
            self.messages_dropped += 1
            return delay
        self.sim.schedule(delay, self._deliver, recipient, message)
        return delay

    def send_from(self, message: Message, sender: Entity, recipient: Entity) -> float:
        """Convenience wrapper: send using ``sender``'s node, stamping the
        sender on the message."""
        message.sender = sender
        return self.send(message, sender.node, recipient)

    def _deliver(self, recipient: Entity, message: Message) -> None:
        self.messages_delivered += 1
        recipient.deliver(message)

    def record_modeled(
        self, kind: str, messages: float, payload: float, hops: float = 0.0
    ) -> None:
        """Account traffic for a *modeled* (fluid-mode) flow.

        Fluid traffic never transits the routed fabric — no delivery is
        scheduled and ``messages_sent`` counts discrete messages only —
        but the per-kind traffic summary still reflects the flow so
        attribution reports stay comparable across modes.  Counts may
        be fractional (expectation-based keepalive flows); hop metrics
        default to 0 because modeled flows are not path-priced.
        """
        cell = self._traffic.get(kind)
        if cell is None:
            cell = self._traffic[kind] = [0, 0.0, 0.0, 0]
        cell[0] += messages
        cell[1] += payload
        cell[2] += payload * hops
        cell[3] += hops

    # ------------------------------------------------------------------
    # Degradation windows (fault injection)
    # ------------------------------------------------------------------
    def push_degradation(self, extra_loss: float = 0.0, delay_factor: float = 1.0) -> None:
        """Enter a degradation window: add ``extra_loss`` to the loss
        probability and multiply transit delays by ``delay_factor``.

        Windows stack (overlaps compose additively for loss and
        multiplicatively for delay) and are removed with a matching
        :meth:`pop_degradation`.
        """
        if not (0.0 <= extra_loss < 1.0):
            raise ValueError("extra_loss must be in [0, 1)")
        if delay_factor <= 0.0:
            raise ValueError("delay_factor must be positive")
        if extra_loss > 0.0 and self._rng is None:
            raise ValueError("loss injection requires an rng")
        self._degradations.append((extra_loss, delay_factor))
        self._recompute_degradation()

    def pop_degradation(self, extra_loss: float = 0.0, delay_factor: float = 1.0) -> None:
        """Leave a degradation window previously pushed with the same
        parameters."""
        try:
            self._degradations.remove((extra_loss, delay_factor))
        except ValueError:
            raise ValueError(
                f"no active degradation window ({extra_loss}, {delay_factor})"
            ) from None
        self._recompute_degradation()

    def _recompute_degradation(self) -> None:
        loss = self._base_loss
        scale = self._base_delay_scale
        for extra_loss, delay_factor in self._degradations:
            loss += extra_loss
            scale *= delay_factor
        self.loss_probability = min(0.99, loss)
        self.delay_scale = scale

    def traffic_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-message-kind traffic totals, sorted by kind.

        Keys per kind: ``messages`` (count), ``payload`` (size units
        accepted), ``link_payload`` (payload × hops — bytes pushed
        across links), ``hops`` (total link traversals).
        """
        return {
            kind: {
                "messages": cell[0],
                "payload": cell[1],
                "link_payload": cell[2],
                "hops": cell[3],
            }
            for kind, cell in sorted(self._traffic.items())
        }
