"""The paper's contribution: the isoefficiency scalability metric and
measurement procedure for resource management systems."""

from .annealing import AnnealingResult, AnnealingSchedule, anneal
from .efficiency import EfficiencyRecord, NormalizedCurves, normalize
from .isoefficiency import (
    IsoefficiencyConstants,
    check_eq1,
    check_eq2,
    isoefficiency_report,
)
from .ledger import Category, CostLedger
from .models import PredictedRates, predict_rates
from .procedure import ScalabilityProcedure, ScalabilityResult
from .scaling import (
    LINK_DELAY_SCALE,
    NEIGHBORHOOD_SIZE,
    UPDATE_INTERVAL,
    VOLUNTEER_INTERVAL,
    Enabler,
    EnablerSpace,
    ScalingPath,
    ScalingStrategy,
    ScalingVariable,
)
from .slope import SlopeAnalysis, analyze_slopes, slopes
from .tuner import EnablerTuner, Observation, TunedPoint

__all__ = [
    "AnnealingResult",
    "AnnealingSchedule",
    "Category",
    "CostLedger",
    "EfficiencyRecord",
    "Enabler",
    "EnablerSpace",
    "EnablerTuner",
    "IsoefficiencyConstants",
    "LINK_DELAY_SCALE",
    "NEIGHBORHOOD_SIZE",
    "NormalizedCurves",
    "Observation",
    "PredictedRates",
    "ScalabilityProcedure",
    "ScalabilityResult",
    "ScalingPath",
    "ScalingStrategy",
    "ScalingVariable",
    "SlopeAnalysis",
    "TunedPoint",
    "UPDATE_INTERVAL",
    "VOLUNTEER_INTERVAL",
    "analyze_slopes",
    "anneal",
    "check_eq1",
    "check_eq2",
    "isoefficiency_report",
    "normalize",
    "predict_rates",
    "slopes",
]
