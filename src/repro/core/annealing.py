"""Generic simulated annealing over a discrete neighborhood structure.

Paper §3.2: "Selecting the set of scaling enablers such that efficiency
remains constant for minimum cost is an optimization problem for which
we use a simulated annealing procedure."

This module is deliberately objective-agnostic: it minimizes any
``objective(x) -> float`` given a ``neighbor(x, rng) -> x`` move
generator, using the classic Metropolis acceptance rule with geometric
cooling.  The enabler tuner builds the objective (overhead + efficiency
penalties); the unit tests exercise the annealer on analytic functions
with known minima.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

import math

import numpy as np

__all__ = ["AnnealingSchedule", "AnnealingResult", "AnnealingStep", "anneal"]


@dataclass(frozen=True)
class AnnealingSchedule:
    """Cooling schedule and iteration budget.

    Attributes
    ----------
    iterations:
        Total moves attempted.
    t0:
        Initial temperature, in objective units.  A move that worsens
        the objective by ``t0`` is accepted with probability ``1/e`` at
        the start.
    cooling:
        Geometric factor per iteration (``0 < cooling < 1``).
    restarts:
        Independent annealing chains; the best point across chains
        wins.  Each chain starts from the provided initial point (the
        enabler defaults) but explores with its own random stream.
    """

    iterations: int = 40
    t0: float = 1.0
    cooling: float = 0.92
    restarts: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.t0 <= 0:
            raise ValueError("t0 must be positive")
        if not (0.0 < self.cooling < 1.0):
            raise ValueError("cooling must be in (0, 1)")
        if self.restarts < 1:
            raise ValueError("restarts must be >= 1")


@dataclass(frozen=True)
class AnnealingStep:
    """One annealing iteration, as reported to an observer.

    Attributes
    ----------
    restart:
        Zero-based chain index.
    iteration:
        Zero-based move index within the chain.
    temperature:
        Temperature at which the move was judged.
    candidate:
        The proposed point (never mutated afterwards by the annealer).
    value:
        Its objective value.
    accepted:
        Whether the Metropolis rule accepted the move.
    best_value:
        Best objective seen so far, *after* this move.
    """

    restart: int
    iteration: int
    temperature: float
    candidate: Any
    value: float
    accepted: bool
    best_value: float


@dataclass
class AnnealingResult:
    """Outcome of an annealing search.

    Attributes
    ----------
    best:
        The best point found.
    best_value:
        Its objective value.
    evaluations:
        Total objective evaluations performed (includes the initial
        point of each chain).
    trace:
        Best-so-far objective value after each evaluation (for
        convergence diagnostics and tests).
    """

    best: Any
    best_value: float
    evaluations: int
    trace: List[float] = field(default_factory=list)


def anneal(
    initial: Any,
    objective: Callable[[Any], float],
    neighbor: Callable[[Any, np.random.Generator], Any],
    rng: np.random.Generator,
    schedule: Optional[AnnealingSchedule] = None,
    observer: Optional[Callable[[AnnealingStep], None]] = None,
    width: int = 1,
    objective_many: Optional[Callable[[List[Any]], List[float]]] = None,
) -> AnnealingResult:
    """Minimize ``objective`` by simulated annealing.

    Parameters
    ----------
    initial:
        Starting point (hashability not required; points are treated as
        opaque values and never mutated by the annealer).
    objective:
        Function to minimize.  Expensive — every call is typically a
        full simulation run — so the iteration budget is the knob that
        trades tuning quality for wall-clock.
    neighbor:
        Move generator; must return a *new* point.
    rng:
        Randomness for moves and acceptance.
    schedule:
        Cooling schedule; defaults to :class:`AnnealingSchedule()`.
    observer:
        Optional callback receiving an :class:`AnnealingStep` after
        every move — the telemetry layer's convergence trace.  The
        observer sees the search, it must not steer it: it runs after
        the acceptance draw, so it cannot perturb the random stream.
    width:
        Speculation width ``W``.  ``1`` (the default) is the classic
        strictly serial walk.  With ``W > 1`` each round proposes ``W``
        independent neighbors of the current point up front, evaluates
        them all at once (through ``objective_many`` when provided, so
        a parallel backend can fan them out), then examines them one by
        one in proposal order under the ordinary Metropolis rule — the
        first acceptable proposal in that order is the one accepted,
        and proposals after an intra-round acceptance are still
        examined (against the updated current), so no evaluation is
        ever discarded: the walk spends exactly one evaluation, one
        iteration of the budget, and one cooling step per examined
        proposal, just like the serial walk.  The only semantic
        difference from ``W = 1`` is that late proposals in a round
        were generated from the point that was current at the *start*
        of the round.  All randomness is drawn on the calling thread in
        a fixed order, so the result is a pure function of ``(initial,
        seed, schedule, width)`` — in particular it does not depend on
        how ``objective_many`` schedules its evaluations.
    objective_many:
        Optional batch evaluator, ``objective_many(points) ->
        [value, ...]`` in input order; must agree with ``objective``
        point for point.  Only consulted when ``width > 1``.
    """
    sched = schedule or AnnealingSchedule()
    if width < 1:
        raise ValueError("width must be >= 1")
    best = initial
    best_value = objective(initial)
    evaluations = 1
    trace = [best_value]

    for restart in range(sched.restarts):
        current = initial if evaluations == 1 else best
        current_value = best_value if current is best else objective(current)
        temp = sched.t0
        iteration = 0
        while iteration < sched.iterations:
            if width == 1:
                candidates = [neighbor(current, rng)]
                values = [objective(candidates[0])]
            else:
                burst = min(width, sched.iterations - iteration)
                candidates = [neighbor(current, rng) for _ in range(burst)]
                if objective_many is not None:
                    values = list(objective_many(candidates))
                else:
                    values = [objective(c) for c in candidates]
            evaluations += len(candidates)
            for candidate, value in zip(candidates, values):
                delta = value - current_value
                accepted = delta <= 0.0 or rng.random() < math.exp(
                    -delta / max(temp, 1e-12)
                )
                if accepted:
                    current, current_value = candidate, value
                if current_value < best_value:
                    best, best_value = current, current_value
                trace.append(best_value)
                if observer is not None:
                    observer(
                        AnnealingStep(
                            restart=restart,
                            iteration=iteration,
                            temperature=temp,
                            candidate=candidate,
                            value=value,
                            accepted=accepted,
                            best_value=best_value,
                        )
                    )
                temp *= sched.cooling
                iteration += 1

    return AnnealingResult(
        best=best, best_value=best_value, evaluations=evaluations, trace=trace
    )
