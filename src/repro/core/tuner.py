"""Enabler tuning: minimum overhead at (approximately) constant efficiency.

This implements Step 3 of the paper's measurement procedure: "Tune the
RMS using the scaling enablers to keep the overall efficiency at the
selected value.  A simulated annealing search is used to determine the
set of scaling enablers such that overhead G(k) is minimum at scale
factor k."

The constrained problem (min G subject to ``E ≈ E0`` and a delivered-
workload floor) is solved as a penalized minimization:

.. math::

    J = G / G_{ref}
        + w_E   \\cdot \\max(0, |E - E_0| - tol) / tol
        + w_S   \\cdot \\max(0, floor - success) / floor

The success-rate floor makes the search non-degenerate: without it, an
RMS could "save" overhead by letting jobs miss their benefit bounds
(which lowers F as well as G and can leave E untouched).  The paper
implicitly assumes the scaled workload is delivered — its f(k) tracks
the workload scaling — and the floor encodes that assumption explicitly.
The default weights make the floor effectively lexicographic
(``w_S >> w_E``): a saturated configuration that happens to sit inside
the efficiency band must never beat a healthy one outside it.
See DESIGN.md §5 for the full rationale.

Simulation results are memoized per (scale, settings): annealing
revisits points frequently and each evaluation is a full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..telemetry import flightrec as _flightrec
from ..telemetry.spans import current as _telemetry
from .annealing import AnnealingSchedule, AnnealingStep, anneal
from .efficiency import EfficiencyRecord
from .scaling import EnablerSpace

__all__ = ["Observation", "TunedPoint", "EnablerTuner"]


class Observation(Protocol):
    """What the tuner needs back from one simulation run."""

    @property
    def record(self) -> EfficiencyRecord:  # pragma: no cover - protocol
        """The run's F/G/H totals."""
        ...

    @property
    def success_rate(self) -> float:  # pragma: no cover - protocol
        """Fraction of completed jobs that met their benefit bound."""
        ...


@dataclass(frozen=True)
class TunedPoint:
    """The tuner's output for one scale factor.

    Attributes
    ----------
    scale:
        The scale factor ``k``.
    settings:
        The winning enabler settings.
    record:
        F/G/H at those settings.
    success_rate:
        Delivered-workload quality at those settings.
    objective:
        The penalized objective value (diagnostics).
    feasible:
        Whether the efficiency tolerance *and* the success floor were
        both met — ``False`` marks the scales at which the RMS "is no
        longer scalable" in the paper's language.
    attribution:
        The winning run's exact F/G/H decomposition by
        ``category|component|entity|message class`` (see
        :meth:`repro.core.ledger.CostLedger.attribution`), when the
        observation carried one — ``math.fsum`` over a prefix's values
        reproduces the recorded F/G/H bit-for-bit.
    """

    scale: float
    settings: Dict[str, float]
    record: EfficiencyRecord
    success_rate: float
    objective: float
    feasible: bool
    attribution: Optional[Dict[str, float]] = None

    @property
    def efficiency(self) -> float:
        """``E`` at the tuned point."""
        return self.record.efficiency

    @property
    def G(self) -> float:
        """Minimum RMS overhead found at this scale."""
        return self.record.G


class EnablerTuner:
    """Simulated-annealing search over an :class:`EnablerSpace`.

    Parameters
    ----------
    simulate:
        ``simulate(k, settings) -> Observation`` — runs one simulation
        of the configured system at scale ``k`` with the given enabler
        settings.  Must be deterministic for caching to be sound (the
        experiment runner seeds every run identically).
    batch_simulate:
        Optional ``batch_simulate(pairs) -> [Observation, ...]`` over a
        list of ``(k, settings)`` pairs.  When provided, independent
        candidate evaluations (the pre-sweep scan, the procedure's
        per-scale reference runs) are submitted as one batch so an
        attached parallel engine can fan them out over worker
        processes.  Must agree with ``simulate`` point for point — both
        are views of the same deterministic run function.
    space:
        The enabler grid to search.
    schedule:
        Annealing budget; default is modest because each evaluation is
        a full simulation.
    e_tol:
        Half-width of the efficiency band around ``E0`` (paper keeps
        ``E(k0)`` within [0.38, 0.42], a ±0.02 band around 0.40).
    success_floor:
        Minimum acceptable success rate.
    seed:
        Seed for the annealer's move/acceptance randomness.
    speculation:
        Annealing speculation width ``W`` (default ``1`` = the classic
        strictly serial walk).  With ``W > 1`` each annealing round
        proposes ``W`` neighbors and evaluates the uncached ones as one
        ``batch_simulate`` batch, so an attached parallel engine keeps
        its workers busy inside the annealer's inner loop — not just
        during the presweep.  Acceptance stays deterministic
        (first-accepted-in-proposal-order; see
        :func:`~repro.core.annealing.anneal`), so tuned points are a
        pure function of ``(seed, schedule, width)`` and never of the
        engine's worker count.
    """

    def __init__(
        self,
        simulate: Callable[[float, Mapping[str, float]], Observation],
        space: EnablerSpace,
        schedule: Optional[AnnealingSchedule] = None,
        e_tol: float = 0.03,
        success_floor: float = 0.85,
        penalty_e: float = 10.0,
        penalty_s: float = 1000.0,
        presweep: bool = True,
        seed: int = 0,
        batch_simulate: Optional[
            Callable[[Sequence[Tuple[float, Mapping[str, float]]]], Sequence[Observation]]
        ] = None,
        speculation: int = 1,
    ) -> None:
        if e_tol <= 0:
            raise ValueError("e_tol must be positive")
        if not (0.0 < success_floor <= 1.0):
            raise ValueError("success_floor must be in (0, 1]")
        if speculation < 1:
            raise ValueError("speculation width must be >= 1")
        self._simulate = simulate
        self._batch_simulate = batch_simulate
        self.space = space
        self.schedule = schedule or AnnealingSchedule(iterations=30, t0=0.5)
        self.e_tol = e_tol
        self.success_floor = success_floor
        self.penalty_e = penalty_e
        self.penalty_s = penalty_s
        self.presweep = presweep
        self.speculation = int(speculation)
        self._rng = np.random.default_rng(seed)
        self._cache: Dict[Tuple[float, Tuple[Tuple[str, float], ...]], Observation] = {}

    # ------------------------------------------------------------------
    def _observe(self, k: float, settings: Mapping[str, float]) -> Observation:
        key = (k, tuple(sorted(settings.items())))
        obs = self._cache.get(key)
        if obs is None:
            obs = self._simulate(k, dict(settings))
            self._cache[key] = obs
        return obs

    def observe_many(
        self, pairs: Sequence[Tuple[float, Mapping[str, float]]]
    ) -> List[Observation]:
        """Observe a batch of independent ``(k, settings)`` candidates.

        Uncached candidates are evaluated through ``batch_simulate``
        when one was provided (letting a parallel engine run them
        concurrently) and serially otherwise; every result lands in the
        memo, so subsequent :meth:`tune` probes of the same points are
        cache hits.  Results are returned in input order and are
        identical to what repeated single observations would produce —
        batching is purely an execution-strategy choice.
        """
        keyed = [
            (k, settings, (k, tuple(sorted(settings.items()))))
            for k, settings in pairs
        ]
        todo: List[Tuple[float, Mapping[str, float]]] = []
        # Ordered list for result zipping; membership is answered by the
        # set (the list scan made large batches O(n^2)).
        todo_keys: List[Tuple[float, Tuple[Tuple[str, float], ...]]] = []
        seen = set()
        for k, settings, key in keyed:
            if key not in self._cache and key not in seen:
                todo.append((k, dict(settings)))
                todo_keys.append(key)
                seen.add(key)
        if todo:
            if self._batch_simulate is not None:
                observations = list(self._batch_simulate(todo))
                if len(observations) != len(todo):
                    raise ValueError(
                        "batch_simulate returned "
                        f"{len(observations)} results for {len(todo)} candidates"
                    )
            else:
                observations = [self._simulate(k, dict(s)) for k, s in todo]
            for key, obs in zip(todo_keys, observations):
                self._cache[key] = obs
        return [self._cache[key] for _, _, key in keyed]

    def _penalties(self, obs: Observation, e_target: float) -> float:
        e = obs.record.efficiency
        pen = self.penalty_e * max(0.0, abs(e - e_target) - self.e_tol) / self.e_tol
        pen += (
            self.penalty_s
            * max(0.0, self.success_floor - obs.success_rate)
            / self.success_floor
        )
        return pen

    def _is_feasible(self, obs: Observation, e_target: float) -> bool:
        return (
            abs(obs.record.efficiency - e_target) <= self.e_tol + 1e-12
            and obs.success_rate >= self.success_floor - 1e-12
        )

    def _observer_for(self, k: float):
        """An annealing observer feeding the telemetry convergence trace
        and the flight recorder's tuner-move ring.

        Every iteration's candidate was just evaluated through the memo,
        so the achieved efficiency/overhead are read back without any
        extra simulation.  Returns ``None`` when both sinks are off —
        the annealer then skips observer calls entirely.
        """
        tel = _telemetry()
        rec = _flightrec.current()
        if not tel.enabled and rec is None:
            return None

        def observer(step: AnnealingStep) -> None:
            attrs = {
                "scale": k,
                "restart": step.restart,
                "iteration": step.iteration,
                "temperature": step.temperature,
                "settings": dict(step.candidate),
                "objective": step.value,
                "accepted": step.accepted,
                "best": step.best_value,
            }
            obs = self._cache.get((k, tuple(sorted(step.candidate.items()))))
            if obs is not None:
                attrs["efficiency"] = obs.record.efficiency
                attrs["G"] = obs.record.G
                attrs["success"] = obs.success_rate
            if tel.enabled:
                tel.event("tuner.iteration", **attrs)
            if rec is not None:
                rec.tuner_move("iteration", **attrs)

        return observer

    def _presweep(
        self,
        k: float,
        e_target: float,
        anchor: Dict[str, float],
        defaults: Dict[str, float],
        objective: Callable[[Dict[str, float]], float],
        tel,
    ) -> Dict[str, float]:
        """Scan the primary enabler and return the annealer's start point.

        The first enabler (the status-update interval in both of the
        paper's enabler sets) moves the operating point across orders of
        magnitude; single-step annealing moves cannot traverse its grid
        within the budget, so it is scanned outright and the anneal
        starts from the best scan point.  The scan points are mutually
        independent, so they are submitted as one batch (a parallel
        engine evaluates them concurrently).

        Cold starts (``anchor is defaults``) scan the full grid.  Warm
        starts scan a one-step window around the previous scale's tuned
        value and expand it outward only while the minimum keeps landing
        on the window's edge — the enabler path moves smoothly with
        scale, so this usually resolves in three or four evaluations
        instead of the full grid — with the defaults seeded alongside as
        a safety candidate.
        """
        warm = anchor is not defaults
        primary = self.space.enablers[0]
        values = primary.values

        def candidate_at(i: int) -> Dict[str, float]:
            candidate = dict(anchor)
            candidate[primary.name] = values[i]
            return candidate

        if warm:
            try:
                wi = values.index(anchor[primary.name])
            except (KeyError, ValueError):
                wi = primary.default_index
            lo, hi = max(0, wi - 1), min(len(values) - 1, wi + 1)
        else:
            lo, hi = 0, len(values) - 1
        candidates = [candidate_at(i) for i in range(lo, hi + 1)]
        extras = [dict(defaults)] if warm else []
        self.observe_many([(k, c) for c in candidates + extras])
        evaluated = len(candidates) + len(extras)

        initial = anchor
        best_val = objective(initial)
        best_idx = None
        for i, candidate in enumerate(candidates, start=lo):
            val = objective(candidate)
            if val < best_val:
                best_val, initial, best_idx = val, candidate, i
        if warm:
            # Expand the window one grid step at a time while the
            # minimum sits on its edge (stopping at the first probe
            # that fails to improve).
            while best_idx is not None and best_idx == lo and lo > 0:
                lo -= 1
                candidate = candidate_at(lo)
                evaluated += 1
                val = objective(candidate)
                if val >= best_val:
                    break
                best_val, initial, best_idx = val, candidate, lo
            while best_idx is not None and best_idx == hi and hi < len(values) - 1:
                hi += 1
                candidate = candidate_at(hi)
                evaluated += 1
                val = objective(candidate)
                if val >= best_val:
                    break
                best_val, initial, best_idx = val, candidate, hi
            for extra in extras:
                val = objective(extra)
                if val < best_val:
                    best_val, initial = val, extra
        tel.event(
            "tuner.presweep",
            scale=k,
            enabler=primary.name,
            candidates=evaluated,
            initial=dict(initial),
            mode="warm" if warm else "full",
        )
        return initial

    def _search(
        self,
        k: float,
        e_target: float,
        warm_start: Optional[Mapping[str, float]] = None,
    ) -> TunedPoint:
        tel = _telemetry()
        with tel.span(
            "tuner.search", scale=k, e_target=e_target, warm=warm_start is not None
        ) as span:
            defaults = self.space.default_settings()
            # The reference point that normalizes the objective: the
            # previous scale's tuned settings when warm-starting (the
            # paper's enabler path moves smoothly with k, so they are a
            # far better anchor than the defaults), else the defaults.
            anchor = dict(warm_start) if warm_start is not None else defaults
            ref = self._observe(k, anchor)
            g_ref = max(ref.record.G, 1e-9)

            def value_of(obs: Observation) -> float:
                return obs.record.G / g_ref + self._penalties(obs, e_target)

            def objective(settings: Dict[str, float]) -> float:
                return value_of(self._observe(k, settings))

            objective_many = None
            if self.speculation > 1:
                def objective_many(batch: List[Dict[str, float]]) -> List[float]:
                    return [
                        value_of(obs)
                        for obs in self.observe_many([(k, s) for s in batch])
                    ]

            initial = anchor
            if self.presweep:
                initial = self._presweep(k, e_target, anchor, defaults, objective, tel)

            result = anneal(
                initial=initial,
                objective=objective,
                neighbor=self.space.neighbor,
                rng=self._rng,
                schedule=self.schedule,
                observer=self._observer_for(k),
                width=self.speculation,
                objective_many=objective_many,
            )
            best_obs = self._observe(k, result.best)
            point = TunedPoint(
                scale=k,
                settings=dict(result.best),
                record=best_obs.record,
                success_rate=best_obs.success_rate,
                objective=result.best_value,
                feasible=self._is_feasible(best_obs, e_target),
                attribution=getattr(best_obs, "attribution", None),
            )
            span.set(
                evaluations=result.evaluations,
                objective=result.best_value,
                feasible=point.feasible,
            )
            tel.event(
                "tuner.result",
                scale=k,
                settings=point.settings,
                efficiency=point.efficiency,
                G=point.G,
                success=point.success_rate,
                objective=point.objective,
                feasible=point.feasible,
            )
            rec = _flightrec.current()
            if rec is not None:
                rec.tuner_move(
                    "result",
                    scale=k,
                    settings=point.settings,
                    objective=point.objective,
                    feasible=point.feasible,
                )
            return point

    # ------------------------------------------------------------------
    def tune_base(
        self, k0: float, band: Tuple[float, float] = (0.38, 0.42)
    ) -> TunedPoint:
        """Step 1: establish the base configuration and its ``E0``.

        Tunes the base scale toward the center of ``band`` and returns
        the achieved point; the achieved efficiency becomes the target
        the rest of the path must hold.
        """
        lo, hi = band
        if not (0.0 < lo < hi < 1.0):
            raise ValueError("band must satisfy 0 < lo < hi < 1")
        center = 0.5 * (lo + hi)
        point = self._search(k0, center)
        return point

    def tune(
        self,
        k: float,
        e0: float,
        warm_start: Optional[Mapping[str, float]] = None,
    ) -> TunedPoint:
        """Step 3 at scale ``k``: minimum-G settings holding ``E ≈ e0``.

        ``warm_start`` (usually the previous scale's tuned settings)
        anchors the search there instead of at the enabler defaults:
        the presweep shrinks to a window around it and the anneal walks
        from its neighborhood.  The tuned result is still a function of
        the anchor, the seed, and the schedule only.
        """
        if not (0.0 < e0 < 1.0):
            raise ValueError("e0 must be in (0, 1)")
        return self._search(k, e0, warm_start=warm_start)

    @property
    def evaluations(self) -> int:
        """Distinct simulations performed so far (cache size)."""
        return len(self._cache)

    def evaluations_by_scale(self) -> Dict[float, int]:
        """Distinct simulations performed so far, per scale factor.

        The per-scale search cost the perf benchmark tracks: warm
        starts and speculation change *these* counts, never the tuned
        points' values.
        """
        counts: Dict[float, int] = {}
        for k, _ in self._cache:
            counts[k] = counts.get(k, 0) + 1
        return counts
