"""Scaling strategies: variables, enablers, and paths (paper §2.2).

The paper's scaling model has three pieces:

* **Scaling variables** ``x(k)`` — what grows with the scale factor
  ``k`` (network size, workload rate, service rate, estimator count,
  ``L_p``).  Each experimental case (Tables 2–5) fixes a set of them.
* **Scaling enablers** ``y(k)`` — the tuning knobs adjusted *after*
  scaling so the configuration operates optimally (status update
  interval, neighborhood set size, network link delay, volunteering
  interval).  The isoefficiency procedure searches this space.
* **Scaling path** — the sequence of scale factors along which the
  system evolves (``k = 1..6`` in the paper's figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "Enabler",
    "EnablerSpace",
    "ScalingPath",
    "ScalingStrategy",
    "ScalingVariable",
    "UPDATE_INTERVAL",
    "NEIGHBORHOOD_SIZE",
    "LINK_DELAY_SCALE",
    "VOLUNTEER_INTERVAL",
]

#: canonical enabler names (Tables 2–5)
UPDATE_INTERVAL = "update_interval"
NEIGHBORHOOD_SIZE = "neighborhood_size"
LINK_DELAY_SCALE = "link_delay_scale"
VOLUNTEER_INTERVAL = "volunteer_interval"


@dataclass(frozen=True)
class ScalingVariable:
    """One scaling variable ``x_i(k)``.

    Attributes
    ----------
    name:
        Identifier (consumed by the experiment runner).
    base:
        Value at the base scale ``k = 1``.
    growth:
        ``"linear"`` (``base * k``, the paper's default: "the workload
        was scaled in the same proportion as the scaling variable") or
        ``"constant"`` (unscaled).
    """

    name: str
    base: float
    growth: str = "linear"

    def __post_init__(self) -> None:
        if self.growth not in ("linear", "constant"):
            raise ValueError(f"unknown growth mode {self.growth!r}")

    def at(self, k: float) -> float:
        """Value of this variable at scale factor ``k``."""
        if k <= 0:
            raise ValueError("scale factor must be positive")
        return self.base * k if self.growth == "linear" else self.base


@dataclass(frozen=True)
class Enabler:
    """One scaling enabler: a named, ordered grid of candidate values.

    The simulated-annealing tuner moves between *adjacent* grid values,
    so the ordering of ``values`` defines the search topology.
    """

    name: str
    values: Tuple[float, ...]
    default_index: int = 0

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"enabler {self.name!r} needs at least one value")
        if not (0 <= self.default_index < len(self.values)):
            raise ValueError(f"enabler {self.name!r}: default_index out of range")

    @property
    def default(self) -> float:
        """The default (pre-tuning) value."""
        return self.values[self.default_index]


class EnablerSpace:
    """The discrete search space spanned by a set of enablers.

    Settings are plain ``{name: value}`` dictionaries; the space knows
    how to produce defaults, random points, and single-step neighbors
    (one enabler nudged to an adjacent grid value) for the annealer.
    """

    def __init__(self, enablers: Sequence[Enabler]) -> None:
        if not enablers:
            raise ValueError("an EnablerSpace needs at least one enabler")
        names = [e.name for e in enablers]
        if len(set(names)) != len(names):
            raise ValueError("duplicate enabler names")
        self.enablers: List[Enabler] = list(enablers)
        self._by_name = {e.name: e for e in enablers}

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Enabler:
        return self._by_name[name]

    def default_settings(self) -> Dict[str, float]:
        """The all-defaults point."""
        return {e.name: e.default for e in self.enablers}

    def random_settings(self, rng: np.random.Generator) -> Dict[str, float]:
        """A uniformly random point in the grid."""
        return {
            e.name: e.values[int(rng.integers(len(e.values)))] for e in self.enablers
        }

    def neighbor(
        self, settings: Mapping[str, float], rng: np.random.Generator
    ) -> Dict[str, float]:
        """One annealing move: nudge one random enabler to an adjacent
        grid value (clamped at the ends).  Single-valued enablers are
        skipped; if every enabler is single-valued the point is returned
        unchanged."""
        movable = [e for e in self.enablers if len(e.values) > 1]
        out = dict(settings)
        if not movable:
            return out
        e = movable[int(rng.integers(len(movable)))]
        idx = e.values.index(out[e.name])
        step = 1 if rng.random() < 0.5 else -1
        idx = min(len(e.values) - 1, max(0, idx + step))
        out[e.name] = e.values[idx]
        return out

    @property
    def size(self) -> int:
        """Number of points in the grid (product of value counts)."""
        n = 1
        for e in self.enablers:
            n *= len(e.values)
        return n


@dataclass(frozen=True)
class ScalingPath:
    """The sequence of scale factors an experiment walks (paper: 1..6)."""

    scales: Tuple[float, ...] = (1, 2, 3, 4, 5, 6)

    def __post_init__(self) -> None:
        if not self.scales:
            raise ValueError("a scaling path needs at least one scale")
        if any(k <= 0 for k in self.scales):
            raise ValueError("scale factors must be positive")
        if list(self.scales) != sorted(self.scales):
            raise ValueError("scale factors must be nondecreasing")

    @property
    def base(self) -> float:
        """The base scale ``k0`` (the first point of the path)."""
        return self.scales[0]

    def __iter__(self):
        return iter(self.scales)

    def __len__(self) -> int:
        return len(self.scales)


@dataclass
class ScalingStrategy:
    """A complete scaling strategy: variables + enablers + path.

    This is the object an experimental *case* (Tables 2–5) constructs
    and the measurement procedure consumes.
    """

    name: str
    variables: List[ScalingVariable]
    enabler_space: EnablerSpace
    path: ScalingPath = field(default_factory=ScalingPath)

    def variables_at(self, k: float) -> Dict[str, float]:
        """All scaling-variable values at scale ``k``."""
        return {v.name: v.at(k) for v in self.variables}
