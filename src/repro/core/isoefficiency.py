"""The isoefficiency algebra (paper §2.3, Equations 1–2).

Starting from the constant-efficiency requirement
``E(k) = E(k0) = 1/alpha`` the paper derives

.. math::

    f(k) = c \\cdot g(k) + c' \\cdot h(k)            \\qquad (1)

with *constants* ``c = O_RMS / ((alpha - 1) W)`` and
``c' = O_RP / ((alpha - 1) W)`` built from the base-scale quantities
``W = F(k0)``, ``O_RMS = G(k0)``, ``O_RP = H(k0)``.  Because the RP
always incurs some cost (``h > 0``), Eq. (1) implies

.. math::

    f(k) > c \\cdot g(k)                              \\qquad (2)

i.e. *useful work must grow at least as fast as RMS overhead* for the
efficiency to hold.  This module computes the constants and checks both
conditions along a measured scaling path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .efficiency import EfficiencyRecord, NormalizedCurves

__all__ = ["IsoefficiencyConstants", "check_eq1", "check_eq2", "isoefficiency_report"]


@dataclass(frozen=True)
class IsoefficiencyConstants:
    """The constants of Eq. (1), derived from the base configuration."""

    alpha: float
    c: float
    c_prime: float

    @classmethod
    def from_base(cls, base: EfficiencyRecord) -> "IsoefficiencyConstants":
        """Derive ``alpha``, ``c``, ``c'`` from the base-scale record.

        ``alpha = 1/E(k0)``; the derivation requires ``0 < E(k0) < 1``
        (paper: "0 < E(k0) < 1"), i.e. positive useful work *and*
        positive overhead at base scale.
        """
        e0 = base.efficiency
        if not (0.0 < e0 < 1.0):
            raise ValueError(f"base efficiency must be in (0, 1); got {e0}")
        if base.G <= 0 or base.H <= 0:
            raise ValueError("base record needs positive G and H")
        alpha = 1.0 / e0
        denom = (alpha - 1.0) * base.F
        return cls(alpha=alpha, c=base.G / denom, c_prime=base.H / denom)

    @property
    def e0(self) -> float:
        """The target efficiency ``1/alpha``."""
        return 1.0 / self.alpha


def check_eq1(
    constants: IsoefficiencyConstants,
    curves: NormalizedCurves,
    rtol: float = 1e-9,
) -> List[bool]:
    """Check Eq. (1) pointwise: ``f(k) == c*g(k) + c'*h(k)``.

    Exact equality holds only when efficiency is *exactly* constant; a
    measured path holds it within the efficiency band the tuner
    enforced, so callers pass a correspondingly loose ``rtol``.
    """
    out = []
    for f, g, h in zip(curves.f, curves.g, curves.h):
        rhs = constants.c * g + constants.c_prime * h
        out.append(abs(f - rhs) <= rtol * max(1.0, abs(f)))
    return out


def check_eq2(
    constants: IsoefficiencyConstants, curves: NormalizedCurves
) -> List[bool]:
    """Check Eq. (2) pointwise: ``f(k) > c * g(k)``.

    A ``False`` at scale ``k`` means RMS overhead outgrew useful work —
    the system is *not* scalable at that point under the isoefficiency
    requirement.
    """
    return [f > constants.c * g for f, g in zip(curves.f, curves.g)]


def isoefficiency_report(
    scales: Sequence[float], records: Sequence[EfficiencyRecord], band: float = 0.05
) -> dict:
    """Summarize an isoefficiency run: constants, conditions, residuals.

    Parameters
    ----------
    scales, records:
        The measured path (base first).
    band:
        Relative tolerance for the Eq. (1) check, matching the
        efficiency band the tuner enforced.

    Returns
    -------
    dict with keys ``constants``, ``eq1_ok``, ``eq2_ok``,
    ``eq1_residuals`` (signed ``f - (c g + c' h)``), and
    ``efficiencies``.
    """
    from .efficiency import normalize

    constants = IsoefficiencyConstants.from_base(records[0])
    curves = normalize(scales, records)
    residuals = [
        f - (constants.c * g + constants.c_prime * h)
        for f, g, h in zip(curves.f, curves.g, curves.h)
    ]
    return {
        "constants": constants,
        "eq1_ok": check_eq1(constants, curves, rtol=band),
        "eq2_ok": check_eq2(constants, curves),
        "eq1_residuals": residuals,
        "efficiencies": [r.efficiency for r in records],
    }
