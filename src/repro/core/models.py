"""Closed-form overhead-rate models (simulator validation + intuition).

The simulation measures ``G(k)``; these models *predict* it from first
principles for the analytically tractable designs, giving (a) a
validation oracle for the simulator — the integration tests require
simulation and prediction to agree within tolerance — and (b) the
back-of-envelope scaling laws that explain every figure:

* **update plane**: resources emit ~``1/(m·tau)`` keepalives per time
  unit each (suppression removes change-free reports; ``m`` is the
  keepalive budget) plus up to two change-driven reports per job,
  rate-limited to one per ``tau``;
* **estimator plane**: every update costs ``estimator_proc``; batched
  forwarding emits at most one forward per covered cluster per
  ``tau/2`` window per estimator, each costing the owning scheduler
  ``update_proc``;
* **decision plane**: each job costs ``decision_base +
  scan_per_entry * table_size`` — with ``table_size = N`` for CENTRAL
  (the quadratic term behind Figure 2) and the cluster size for the
  distributed designs;
* **pull plane** (LOWEST-style): each REMOTE job triggers ``L_p``
  request/reply pairs.

Rates are in busy-time units per simulated time unit; multiply by the
measured span to compare with a ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.config import SimulationConfig

__all__ = ["PredictedRates", "predict_rates"]


@dataclass(frozen=True)
class PredictedRates:
    """Predicted steady-state work rates for one configuration.

    All attributes are time-units of work per simulated time unit.
    """

    update_rate: float          # status updates emitted per time unit
    estimator_busy: float       # total estimator processing rate (-> G)
    scheduler_update_busy: float  # schedulers' update processing rate (-> G)
    decision_busy: float        # scheduling decisions rate (-> G)
    poll_busy: float            # pull-protocol processing rate (-> G)
    completion_busy: float      # completion notifications rate (-> G)
    useful_rate: float          # demand delivered per time unit (-> F)
    rp_rate: float              # RP control overhead rate (-> H)

    @property
    def g_rate(self) -> float:
        """Total predicted RMS overhead rate."""
        return (
            self.estimator_busy
            + self.scheduler_update_busy
            + self.decision_busy
            + self.poll_busy
            + self.completion_busy
        )

    @property
    def efficiency(self) -> float:
        """Predicted ``E = F/(F+G+H)``."""
        total = self.useful_rate + self.g_rate + self.rp_rate
        return self.useful_rate / total if total > 0 else 0.0

    @property
    def central_scheduler_busy(self) -> float:
        """Busy fraction a single (CENTRAL) scheduler would carry —
        above ~1.0 the design is saturated at this configuration."""
        return self.scheduler_update_busy + self.decision_busy + self.poll_busy


def predict_rates(
    config: "SimulationConfig",
    remote_fraction: float | None = None,
    success: float = 1.0,
    keepalive_budget: int = 3,
) -> PredictedRates:
    """Predict work rates for a CENTRAL or LOWEST-style configuration.

    Parameters
    ----------
    config:
        The simulation configuration (designs other than CENTRAL are
        treated as LOWEST-style pull systems: cluster-scoped tables and
        ``L_p``-wide polls per REMOTE job — exact for LOWEST, a lower
        bound for the designs that add push traffic on top).
    remote_fraction:
        Fraction of REMOTE-class jobs; defaults to the runtime model's
        analytic value at ``T_CPU``.
    success:
        Expected success rate (scales the useful-work prediction).
    keepalive_budget:
        The resources' ``max_silence`` (default 3, as in the runner).
    """
    from ..rms.registry import get_rms
    from ..workload.runtimes import RuntimeModel

    runtime_model = RuntimeModel()
    if remote_fraction is None:
        remote_fraction = runtime_model.remote_fraction(config.common.t_cpu)

    info = get_rms(config.rms)
    n = config.n_resources
    n_sched = 1 if info.centralized else config.n_schedulers
    lam = config.workload_rate
    tau = config.update_interval
    costs = config.costs

    # --- update plane ---------------------------------------------------
    keepalives = n / (keepalive_budget * tau)
    # each job causes about two load transitions, each reportable at
    # most once per tau per resource; at grid utilizations the per-tau
    # limit never binds, so 2*lambda is the change-driven component.
    change_driven = min(2.0 * lam, n / tau)
    update_rate = keepalives + change_driven
    estimator_busy = update_rate * costs.estimator_proc

    # Batched forwarding: each estimator emits at most one forward per
    # covered cluster per window (= tau/2); forwards cannot exceed the
    # update rate itself.
    n_est = config.n_estimators if config.n_estimators is not None else n_sched
    window = config.effective_batch_window or (tau / 2.0)
    coverage_pairs = max(n_est, n_sched)  # estimator->cluster coverage edges
    forward_rate = min(update_rate, coverage_pairs / window)
    scheduler_update_busy = forward_rate * costs.update_proc

    # --- decision plane ----------------------------------------------------
    table_size = n if info.centralized else n / n_sched
    decision_busy = lam * (costs.decision_base + costs.scan_per_entry * table_size)
    transfers = 0.0 if info.centralized else remote_fraction * lam
    decision_busy += transfers * costs.transfer_proc

    # --- pull plane ------------------------------------------------------
    if info.centralized:
        poll_busy = 0.0
    else:
        pairs = min(config.l_p, max(0, n_sched - 1))
        poll_busy = remote_fraction * lam * pairs * 2.0 * costs.poll_proc

    completion_busy = lam * costs.completion_proc

    useful_rate = lam * runtime_model.mean * success
    rp_rate = lam * costs.job_control + transfers * costs.data_mgmt

    return PredictedRates(
        update_rate=update_rate,
        estimator_busy=estimator_busy,
        scheduler_update_busy=scheduler_update_busy,
        decision_busy=decision_busy,
        poll_busy=poll_busy,
        completion_busy=completion_busy,
        useful_rate=useful_rate,
        rp_rate=rp_rate,
    )
