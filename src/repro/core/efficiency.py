"""The efficiency model (paper §2.3).

``E(k) = F(k) / (F(k) + G(k) + H(k))`` — useful work over total work.

:class:`EfficiencyRecord` freezes one simulation run's F/G/H totals;
:func:`normalize` produces the paper's normalized curves
``f(k) = F(k)/F(k0)`` (and g, h alike), which are what the
isoefficiency algebra (Eq. 1/2) and the slope metric operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .ledger import CostLedger

__all__ = ["EfficiencyRecord", "NormalizedCurves", "normalize"]


@dataclass(frozen=True)
class EfficiencyRecord:
    """F/G/H totals of one configuration at one scale.

    Attributes
    ----------
    F, G, H:
        Useful work, RMS overhead, RP overhead (time units).
    """

    F: float
    G: float
    H: float

    def __post_init__(self) -> None:
        if self.F < 0 or self.G < 0 or self.H < 0:
            raise ValueError("F, G, H must be nonnegative")

    @classmethod
    def from_ledger(cls, ledger: CostLedger) -> "EfficiencyRecord":
        """Snapshot a run's ledger."""
        return cls(F=ledger.F, G=ledger.G, H=ledger.H)

    @property
    def total(self) -> float:
        """Total work ``F + G + H``."""
        return self.F + self.G + self.H

    @property
    def efficiency(self) -> float:
        """``E = F / (F + G + H)``; 0.0 for an all-zero record."""
        t = self.total
        return self.F / t if t > 0 else 0.0


@dataclass(frozen=True)
class NormalizedCurves:
    """The paper's normalized work curves along a scaling path.

    ``f[i] = F(k_i)/F(k_0)`` etc.; by construction
    ``f[0] = g[0] = h[0] = 1``.
    """

    scales: tuple
    f: tuple
    g: tuple
    h: tuple

    def __len__(self) -> int:
        return len(self.scales)


def normalize(
    scales: Sequence[float], records: Sequence[EfficiencyRecord]
) -> NormalizedCurves:
    """Normalize F/G/H records against the base-scale record.

    Parameters
    ----------
    scales:
        Scale factors, base first.
    records:
        One record per scale, aligned with ``scales``.

    Raises
    ------
    ValueError
        If lengths differ or any base quantity is zero (the paper's
        normalization divides by ``W``, ``O_RMS``, ``O_RP`` — all must
        be non-zero, which the model guarantees: every run has useful
        work, RMS cost, and non-zero RP cost).
    """
    if len(scales) != len(records):
        raise ValueError("scales and records must align")
    if not records:
        raise ValueError("need at least the base record")
    base = records[0]
    if base.F <= 0 or base.G <= 0 or base.H <= 0:
        raise ValueError(
            f"base record must have positive F, G, H (got {base.F}, {base.G}, {base.H})"
        )
    return NormalizedCurves(
        scales=tuple(scales),
        f=tuple(r.F / base.F for r in records),
        g=tuple(r.G / base.G for r in records),
        h=tuple(r.H / base.H for r in records),
    )
