"""Cost accounting: the F / G / H decomposition of system work.

The paper's performance model splits everything the managed system does
into three buckets (§2.2–2.3):

* ``F(k)`` — **useful work**: service demand of jobs that completed
  successfully (within their user-benefit bound ``U_b``).
* ``G(k)`` — **RMS overhead**: "the overall time spent by the schedulers
  for scheduling, receiving, and processing updates".  We include every
  RMS node (schedulers, status estimators, the Grid middleware), since
  the paper's Case 3 varies estimator count and reads the result off
  ``G(k)``.
* ``H(k)`` — **RP overhead**: job control and data management overheads
  at the resources; the paper treats it as small but non-zero.

:class:`CostLedger` is a category → amount accumulator.  Category names
are namespaced with ``f.``/``g.``/``h.`` prefixes so the three aggregate
totals are recoverable while subcategory detail (how much of G was
polling vs. update processing) remains available for the ablation
benches and for debugging protocol behaviour.
"""

from __future__ import annotations

import math
from typing import Dict

__all__ = ["Category", "CostLedger"]


class Category:
    """Canonical ledger category names.

    The prefix determines the aggregate the charge rolls up into:
    ``f.*`` → F (useful work), ``g.*`` → G (RMS overhead), ``h.*`` → H
    (RP overhead).
    """

    # F — useful work
    USEFUL = "f.useful"

    # G — RMS overhead, by activity
    SCHEDULE = "g.schedule"          # scheduling decision processing
    UPDATE_RX = "g.update_rx"        # receiving/processing status updates at schedulers
    ESTIMATOR = "g.estimator"        # estimator processing (RMS nodes)
    POLL = "g.poll"                  # poll requests/replies (pull protocols)
    ADVERT = "g.advert"              # reservations/volunteering (push protocols)
    AUCTION = "g.auction"            # auction invitations/bids/awards
    MIDDLEWARE = "g.middleware"      # Grid middleware relay service
    COMPLETION = "g.completion"      # processing job-completion notifications

    # H — RP overhead
    JOB_CONTROL = "h.job_control"    # per-job dispatch/teardown at resources
    DATA_MGMT = "h.data_mgmt"        # data staging (small; no data deps modeled)


class CostLedger:
    """Accumulates time-unit charges by category.

    Implements the ``ChargeSink`` protocol expected by
    :class:`repro.sim.entity.MessageServer`.
    """

    __slots__ = ("_totals", "_f", "_g", "_h")

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        # Running per-prefix aggregates, maintained charge by charge so
        # the F/G/H reads the efficiency layer performs after every run
        # are O(1) instead of a scan over all categories.
        self._f = 0.0
        self._g = 0.0
        self._h = 0.0

    def charge(self, category: str, amount: float) -> None:
        """Add ``amount`` (finite, >= 0) time units under ``category``.

        Categories must carry one of the ``f.``/``g.``/``h.`` prefixes so
        every charge rolls up into exactly one of F, G, H.  Non-finite
        amounts (NaN, ±inf) are rejected: a NaN would silently poison
        every aggregate downstream (NaN fails every comparison, so it
        sails through a plain ``amount < 0`` guard).
        """
        if not (amount >= 0.0) or amount == math.inf:
            if math.isnan(amount) or amount in (math.inf, -math.inf):
                raise ValueError(f"non-finite charge {amount!r} for {category!r}")
            raise ValueError(f"negative charge {amount} for {category!r}")
        prefix = category[:2]
        if prefix == "f.":
            self._f += amount
        elif prefix == "g.":
            self._g += amount
        elif prefix == "h.":
            self._h += amount
        else:
            raise ValueError(f"category {category!r} lacks an f./g./h. prefix")
        self._totals[category] = self._totals.get(category, 0.0) + amount

    def total(self, category: str) -> float:
        """Total charged under one exact category."""
        return self._totals.get(category, 0.0)

    @property
    def F(self) -> float:
        """Useful work delivered (sum of ``f.*``)."""
        return self._f

    @property
    def G(self) -> float:
        """RMS overhead (sum of ``g.*``)."""
        return self._g

    @property
    def H(self) -> float:
        """RP overhead (sum of ``h.*``)."""
        return self._h

    @property
    def grand_total(self) -> float:
        """All work: ``F + G + H``."""
        return self._f + self._g + self._h

    def breakdown(self) -> Dict[str, float]:
        """Copy of the per-category totals (for reports and tests)."""
        return dict(self._totals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostLedger(F={self.F:.4g}, G={self.G:.4g}, H={self.H:.4g})"
