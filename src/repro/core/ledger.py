"""Cost accounting: the F / G / H decomposition of system work.

The paper's performance model splits everything the managed system does
into three buckets (§2.2–2.3):

* ``F(k)`` — **useful work**: service demand of jobs that completed
  successfully (within their user-benefit bound ``U_b``).
* ``G(k)`` — **RMS overhead**: "the overall time spent by the schedulers
  for scheduling, receiving, and processing updates".  We include every
  RMS node (schedulers, status estimators, the Grid middleware), since
  the paper's Case 3 varies estimator count and reads the result off
  ``G(k)``.
* ``H(k)`` — **RP overhead**: job control and data management overheads
  at the resources; the paper treats it as small but non-zero.

:class:`CostLedger` accumulates charges in cells keyed by
``(category, source)``.  Category names are namespaced with
``f.``/``g.``/``h.`` prefixes so the three aggregate totals are
recoverable while subcategory detail (how much of G was polling vs.
update processing) remains available for the ablation benches and for
debugging protocol behaviour.  The optional *source* tag
``(component kind, entity id, message class)`` attributes each charge to
the system component that incurred it, which is what lets a study
decompose the growth of G(k) by component.

Conservation contract: the cells are the *only* store — F, G, H and the
per-category totals are all derived from the same cells with
:func:`math.fsum`, which returns the correctly-rounded sum of its inputs
and is therefore independent of summation order.  Any grouping of the
cells (by prefix, by category, by component) re-summed with ``fsum``
reproduces the ledger totals bit-for-bit, so the attribution export can
be checked against F/G/H with exact ``==`` — floating point
non-associativity never drives the decomposition out of sync with the
totals.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

__all__ = ["Category", "CostLedger", "Source", "flatten_source", "SOURCE_SEP"]

#: A structured charge origin: (component kind, entity id, message class).
Source = Tuple[str, str, str]

#: Separator used in flattened attribution keys; never appears in
#: category names, component kinds, entity ids, or message kinds.
SOURCE_SEP = "|"

_PREFIXES = ("f.", "g.", "h.")


def flatten_source(category: str, source: Optional[Source]) -> str:
    """Flat string key for one attribution cell.

    Tagged cells render as ``category|component|entity|message_class``;
    untagged cells (source ``None``) render as the bare category.
    """
    if source is None:
        return category
    return SOURCE_SEP.join((category,) + source)


class Category:
    """Canonical ledger category names.

    The prefix determines the aggregate the charge rolls up into:
    ``f.*`` → F (useful work), ``g.*`` → G (RMS overhead), ``h.*`` → H
    (RP overhead).
    """

    # F — useful work
    USEFUL = "f.useful"

    # G — RMS overhead, by activity
    SCHEDULE = "g.schedule"          # scheduling decision processing
    UPDATE_RX = "g.update_rx"        # receiving/processing status updates at schedulers
    ESTIMATOR = "g.estimator"        # estimator processing (RMS nodes)
    POLL = "g.poll"                  # poll requests/replies (pull protocols)
    ADVERT = "g.advert"              # reservations/volunteering (push protocols)
    AUCTION = "g.auction"            # auction invitations/bids/awards
    MIDDLEWARE = "g.middleware"      # Grid middleware relay service
    COMPLETION = "g.completion"      # processing job-completion notifications
    FAULTS = "g.faults"              # failure detection + recovery (heartbeat
                                     # sweeps, dead-resource processing,
                                     # job re-dispatch)
    MONITOR = "g.monitor"            # in-sim observability probes (charged
                                     # only at a nonzero probe cost rate)
    TRACE = "g.trace"                # causal-tracing span recording (charged
                                     # only when a plan samples at a nonzero
                                     # charge rate)

    # H — RP overhead
    JOB_CONTROL = "h.job_control"    # per-job dispatch/teardown at resources
    DATA_MGMT = "h.data_mgmt"        # data staging (small; no data deps modeled)


class CostLedger:
    """Accumulates time-unit charges by category and source.

    Implements the ``ChargeSink`` protocol expected by
    :class:`repro.sim.entity.MessageServer`.  The optional ``observer``
    attribute (a callable ``(category, amount, source)``) sees every
    accepted charge; the flight recorder uses it to keep a rolling
    window of recent ledger activity.
    """

    __slots__ = ("_cells", "observer")

    def __init__(self) -> None:
        self._cells: Dict[Tuple[str, Optional[Source]], float] = {}
        self.observer: Optional[Callable[[str, float, Optional[Source]], None]] = None

    def charge(self, category: str, amount: float, source: Optional[Source] = None) -> None:
        """Add ``amount`` (finite, >= 0) time units under ``category``.

        Categories must carry one of the ``f.``/``g.``/``h.`` prefixes so
        every charge rolls up into exactly one of F, G, H.  Non-finite
        amounts (NaN, ±inf) are rejected: a NaN would silently poison
        every aggregate downstream (NaN fails every comparison, so it
        sails through a plain ``amount < 0`` guard).

        ``source``, when given, is a ``(component kind, entity id,
        message class)`` tuple attributing the charge; callers on hot
        paths should pass a cached tuple rather than rebuilding it per
        charge.
        """
        if not (amount >= 0.0) or amount == math.inf:
            if math.isnan(amount) or amount in (math.inf, -math.inf):
                raise ValueError(f"non-finite charge {amount!r} for {category!r}")
            raise ValueError(f"negative charge {amount} for {category!r}")
        if category[:2] not in _PREFIXES:
            raise ValueError(f"category {category!r} lacks an f./g./h. prefix")
        cells = self._cells
        key = (category, source)
        cells[key] = cells.get(key, 0.0) + amount
        if self.observer is not None:
            self.observer(category, amount, source)

    def total(self, category: str) -> float:
        """Total charged under one exact category (all sources)."""
        return math.fsum(v for (cat, _), v in self._cells.items() if cat == category)

    def _prefix_total(self, prefix: str) -> float:
        return math.fsum(v for (cat, _), v in self._cells.items() if cat[:2] == prefix)

    @property
    def F(self) -> float:
        """Useful work delivered (sum of ``f.*``)."""
        return self._prefix_total("f.")

    @property
    def G(self) -> float:
        """RMS overhead (sum of ``g.*``)."""
        return self._prefix_total("g.")

    @property
    def H(self) -> float:
        """RP overhead (sum of ``h.*``)."""
        return self._prefix_total("h.")

    @property
    def grand_total(self) -> float:
        """All work: ``F + G + H``."""
        return math.fsum(self._cells.values())

    def breakdown(self) -> Dict[str, float]:
        """Per-category totals rolled up across sources (reports, tests)."""
        out: Dict[str, float] = {}
        for category in sorted({cat for cat, _ in self._cells}):
            out[category] = self.total(category)
        return out

    def attribution(self) -> Dict[str, float]:
        """The full decomposition as a flat, sorted ``{key: amount}`` dict.

        Keys are ``category|component|entity|message_class`` (or the
        bare category for untagged charges).  Because every cell appears
        exactly once and ``fsum`` is order-independent, re-summing any
        prefix's values with ``math.fsum`` reproduces F, G, or H
        *exactly* — the conservation invariant the attribution reports
        and tests rely on.  JSON round-trips Python floats losslessly,
        so the invariant survives caches, manifests, and telemetry.
        """
        items = [
            (flatten_source(cat, src), value)
            for (cat, src), value in self._cells.items()
        ]
        items.sort()
        return dict(items)

    def check_conservation(self) -> None:
        """Raise ``RuntimeError`` if the attribution export disagrees
        with the ledger's F/G/H totals under exact comparison.

        By construction (single cell store + order-independent ``fsum``)
        this cannot trip; it runs after every simulation as cheap
        insurance that no future change quietly breaks the contract.
        """
        parts: Dict[str, list] = {"f.": [], "g.": [], "h.": []}
        for key, value in self.attribution().items():
            parts[key[:2]].append(value)
        for prefix, total in (("f.", self.F), ("g.", self.G), ("h.", self.H)):
            attributed = math.fsum(parts[prefix])
            if attributed != total:
                raise RuntimeError(
                    f"attribution conservation violated for {prefix}*: "
                    f"attributed {attributed!r} != ledger {total!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostLedger(F={self.F:.4g}, G={self.G:.4g}, H={self.H:.4g})"
