"""The four-step scalability measurement procedure (paper §3.2, Fig. 1).

* **Step 1** — choose a feasible constant-efficiency target ``E0``
  (the paper keeps ``E(k0)`` in [0.38, 0.42]): tune the base scale and
  adopt its achieved efficiency.
* **Step 2** — scale the RMS or the RP along the scaling path (the
  experiment's scaling variables; the runner applies them).
* **Step 3** — at every scale, tune the enablers by simulated annealing
  for minimum ``G(k)`` at ``E(k) ≈ E0``.
* **Step 4** — compute the scalability of the RMS from the slope of
  ``G(k)``.

:class:`ScalabilityProcedure` wires the tuner, normalization,
isoefficiency checks, and slope analysis into one call.  If the base
configuration cannot reach the efficiency band at all, the system is
reported unscalable at base (``base_feasible = False``) — the
flowchart's "base system is considered unscalable" exit — but the
measured path is still returned for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..telemetry.spans import current as _telemetry
from .efficiency import EfficiencyRecord, NormalizedCurves, normalize
from .isoefficiency import IsoefficiencyConstants, check_eq2
from .scaling import EnablerSpace, ScalingPath
from .slope import SlopeAnalysis, analyze_slopes
from .tuner import EnablerTuner, TunedPoint

__all__ = ["ScalabilityResult", "ScalabilityProcedure"]


@dataclass
class ScalabilityResult:
    """Everything the measurement produced for one RMS on one case.

    Attributes
    ----------
    name:
        Label (usually the RMS name).
    e0:
        The constant-efficiency target adopted at Step 1.
    points:
        One :class:`TunedPoint` per scale, base first.
    curves:
        Normalized f/g/h curves over the path.
    slopes:
        The Step-4 slope analysis.
    constants:
        Eq.-(1) constants derived from the base point.
    eq2_ok:
        Eq.-(2) check per scale.
    base_feasible:
        Whether the base configuration reached the efficiency band.
    """

    name: str
    e0: float
    points: List[TunedPoint]
    curves: NormalizedCurves
    slopes: SlopeAnalysis
    constants: IsoefficiencyConstants
    eq2_ok: List[bool]
    base_feasible: bool

    @property
    def scales(self) -> Tuple[float, ...]:
        """The measured scale factors."""
        return tuple(p.scale for p in self.points)

    @property
    def G(self) -> Tuple[float, ...]:
        """Minimum overhead ``G(k)`` per scale (the figures' y-axis)."""
        return tuple(p.G for p in self.points)

    @property
    def efficiencies(self) -> Tuple[float, ...]:
        """Achieved efficiency per scale."""
        return tuple(p.efficiency for p in self.points)

    @property
    def feasible_through(self) -> float:
        """Largest scale with an unbroken feasible prefix."""
        k_ok = self.points[0].scale if self.points[0].feasible else 0.0
        for p in self.points:
            if not p.feasible:
                break
            k_ok = p.scale
        return k_ok


class ScalabilityProcedure:
    """Runs Steps 1–4 for one system under one scaling strategy.

    Parameters
    ----------
    simulate:
        ``simulate(k, settings) -> Observation`` (see
        :class:`~repro.core.tuner.EnablerTuner`); the closure embeds the
        RMS design and the case's scaling variables.
    space:
        The case's enabler space.
    path:
        The scaling path (defaults to the paper's ``k = 1..6``).
    band:
        The Step-1 efficiency band (paper: [0.38, 0.42]).
    warm_start:
        When ``True`` (the default) each scale ``k_i`` of the walk is
        tuned starting from the tuned settings of ``k_{i-1}`` instead
        of from the enabler defaults.  The paper's enabler path moves
        smoothly with scale, so the warm anchor's presweep shrinks to a
        small window (see :meth:`EnablerTuner.tune`) and the per-scale
        evaluation count drops sharply.  ``False`` restores the
        historical cold-start walk (every scale tuned independently
        from the defaults).
    tuner_kwargs:
        Passed through to :class:`EnablerTuner` (annealing schedule,
        success floor, seed, ...).  In particular ``batch_simulate``
        attaches a batch evaluator (usually backed by a parallel
        :class:`~repro.experiments.parallel.ExperimentEngine`): the
        procedure then submits its independent candidate evaluations —
        reference runs, pre-sweep scans, and (with ``speculation > 1``)
        the annealer's speculative proposal bursts — as batches instead
        of one run at a time.
    """

    def __init__(
        self,
        simulate: Callable[[float, Mapping[str, float]], object],
        space: EnablerSpace,
        path: Optional[ScalingPath] = None,
        band: Tuple[float, float] = (0.38, 0.42),
        warm_start: bool = True,
        **tuner_kwargs,
    ) -> None:
        self.path = path or ScalingPath()
        self.band = band
        self.warm_start = bool(warm_start)
        self.tuner = EnablerTuner(simulate, space, **tuner_kwargs)

    def run(self, name: str = "RMS") -> ScalabilityResult:
        """Execute the full procedure and return the measurement."""
        tel = _telemetry()
        with tel.span(
            "procedure", name=name, scales=list(self.path), warm_start=self.warm_start
        ) as span:
            if not self.warm_start:
                # Every cold-started scale's search begins from the same
                # default enabler settings; those reference runs are
                # mutually independent, so warm the tuner's memo with all
                # of them in a single batch (a parallel engine executes
                # them concurrently; without one this is the same serial
                # work the searches would do lazily).  Warm-started walks
                # skip this: only the base anchors at the defaults, and
                # prepaying the other scales' default runs would be pure
                # waste.
                defaults = self.tuner.space.default_settings()
                self.tuner.observe_many([(k, defaults) for k in self.path])

            # Step 1: base configuration and E0.
            base_point = self.tuner.tune_base(self.path.base, band=self.band)
            lo, hi = self.band
            base_feasible = (
                lo - self.tuner.e_tol <= base_point.efficiency <= hi + self.tuner.e_tol
                and base_point.success_rate >= self.tuner.success_floor - 1e-12
            )
            # Isoefficiency holds E(k) at E(k0) — the *achieved* base
            # efficiency, even when it missed the requested band (the miss
            # is recorded in base_feasible).  A design whose healthy base
            # operating point sits above the band (CENTRAL's single
            # scheduler cannot burn band-level overhead without saturating)
            # is still measured against its own base.
            e0 = base_point.efficiency
            if not (0.0 < e0 < 1.0):  # degenerate run; fall back to the band center
                e0 = 0.5 * (lo + hi)
            self._emit_scale(tel, name, base_point)

            # Steps 2–3: walk the path, tuning at each scale — each from
            # its predecessor's tuned settings when warm-starting.
            points: List[TunedPoint] = [base_point]
            for k in list(self.path)[1:]:
                warm = points[-1].settings if self.warm_start else None
                point = self.tuner.tune(k, e0, warm_start=warm)
                points.append(point)
                self._emit_scale(tel, name, point)

            # Step 4: slope of G(k) + isoefficiency conditions.
            records = [p.record for p in points]
            curves = normalize([p.scale for p in points], records)
            constants = IsoefficiencyConstants.from_base(records[0])
            span.set(e0=e0, base_feasible=base_feasible)
            return ScalabilityResult(
                name=name,
                e0=e0,
                points=points,
                curves=curves,
                slopes=analyze_slopes(curves),
                constants=constants,
                eq2_ok=check_eq2(constants, curves),
                base_feasible=base_feasible,
            )

    @staticmethod
    def _emit_scale(tel, name: str, point: TunedPoint) -> None:
        """One scale's F/G/H ledger snapshot, as a telemetry event.

        Carries the tuned run's full attribution decomposition when the
        observation recorded one, so ``repro attrib`` can rebuild the
        per-component G(k) curves from the telemetry JSONL alone.
        """
        attrs = dict(
            name=name,
            scale=point.scale,
            F=point.record.F,
            G=point.record.G,
            H=point.record.H,
            efficiency=point.efficiency,
            success=point.success_rate,
            feasible=point.feasible,
        )
        if point.attribution is not None:
            attrs["attribution"] = point.attribution
        tel.event("procedure.scale", **attrs)
