"""The scalability metric: the slope of G(k) (paper §2.2 Definition).

"Assume that the function G(k) gives the minimum cost of maintaining
[the] RMS to manage the resource pool at scale k.  Then, the
scalability of the RMS at scale k is measured by the slope of G(k)."

We report slopes over the *normalized* overhead curve
``g(k) = G(k)/G(k0)``, which is what makes RMSs with different base
overheads comparable, plus a per-interval classification that matches
the paper's reading: a design "scales well" over an interval when its
overhead grows no faster than the useful work does (Eq. 2's marginal
form), and its slope *decreasing* with ``k`` means it needs relatively
less work at each new scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .efficiency import NormalizedCurves

__all__ = ["SlopeAnalysis", "slopes", "analyze_slopes"]


def slopes(xs: Sequence[float], ys: Sequence[float]) -> List[float]:
    """Finite-difference slopes ``(y[i+1]-y[i]) / (x[i+1]-x[i])``.

    Raises
    ------
    ValueError
        On length mismatch, fewer than two points, or repeated x.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must align")
    if len(xs) < 2:
        raise ValueError("need at least two points for a slope")
    out = []
    for i in range(len(xs) - 1):
        dx = xs[i + 1] - xs[i]
        if dx <= 0:
            raise ValueError("x values must be strictly increasing")
        out.append((ys[i + 1] - ys[i]) / dx)
    return out


@dataclass(frozen=True)
class SlopeAnalysis:
    """Scalability read-out along one measured path.

    Attributes
    ----------
    scales:
        Scale factors ``k_1..k_n``.
    g_slopes:
        Slope of the normalized overhead ``g(k)`` per interval
        (``n - 1`` values) — the paper's metric.
    f_slopes:
        Slope of the normalized useful work per interval.
    scalable:
        Per interval: ``True`` iff overhead grew no faster than useful
        work there (``Δg <= Δf``, the marginal Eq.-2 condition).
    improving:
        Per *interior* point: ``True`` where the g-slope decreased
        relative to the previous interval ("the RMS needs to do less
        work to sustain the system ... at the new scale k, compared to
        the last scale k-1").
    """

    scales: Tuple[float, ...]
    g_slopes: Tuple[float, ...]
    f_slopes: Tuple[float, ...]
    scalable: Tuple[bool, ...]
    improving: Tuple[bool, ...]

    @property
    def mean_g_slope(self) -> float:
        """Average normalized-overhead slope — a single-number summary
        used to rank designs (lower = more scalable)."""
        return sum(self.g_slopes) / len(self.g_slopes)

    @property
    def scalable_through(self) -> float:
        """The largest scale up to which every interval was scalable
        (the paper's "scalable for 1 < k <= K" statements)."""
        k_ok = self.scales[0]
        for i, ok in enumerate(self.scalable):
            if not ok:
                break
            k_ok = self.scales[i + 1]
        return k_ok


def analyze_slopes(curves: NormalizedCurves) -> SlopeAnalysis:
    """Compute the slope metric over normalized curves."""
    g_slopes = slopes(curves.scales, curves.g)
    f_slopes = slopes(curves.scales, curves.f)
    scalable = tuple(dg <= df + 1e-12 for dg, df in zip(g_slopes, f_slopes))
    improving = tuple(
        g_slopes[i + 1] < g_slopes[i] - 1e-12 for i in range(len(g_slopes) - 1)
    )
    return SlopeAnalysis(
        scales=tuple(curves.scales),
        g_slopes=tuple(g_slopes),
        f_slopes=tuple(f_slopes),
        scalable=scalable,
        improving=improving,
    )
