"""Hierarchical status-estimator aggregation (fluid traffic mode).

At k = 1e5–1e6 a flat estimator plane forwards each leaf's batch to the
schedulers directly: scheduler-side update work grows with the number
of estimators (the very mechanism Case 3 measures), and at extreme
estimator counts it swamps the decision plane.  The classic fix is a
**fan-in tree**: leaf estimators feed intermediate aggregators, each
merging at most ``fanout`` child batches per window, and only the root
forwards consolidated per-cluster state to the schedulers.  Merge work
is charged to ``G`` against per-aggregator entities (component
``estimator``), so the hierarchy's own overhead stays visible in the
attribution breakdown instead of disappearing into modeling.

:class:`AggregatorTree` is pure structure + arithmetic — the
:class:`~repro.fluid.plane.FluidStatusPlane` drives it once per flush.
Probe taps (:attr:`depth`, :attr:`widths`, last-flush occupancy) are
O(levels), never O(leaves), which is what lets ``repro series`` sample
the hierarchy at extreme scale without per-leaf sweeps.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["AggregatorTree"]


class AggregatorTree:
    """A balanced fan-in tree over ``n_leaves`` leaf estimators.

    Level 0 holds the leaves; level ``l`` has
    ``ceil(n_leaves / fanout**l)`` aggregators, the parent of index
    ``i`` being ``i // fanout`` one level up, until a single root
    remains.  ``depth`` counts aggregation levels above the leaves (0
    when the tree is degenerate: one leaf).
    """

    def __init__(self, n_leaves: int, fanout: int) -> None:
        if n_leaves < 1:
            raise ValueError("n_leaves must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.n_leaves = n_leaves
        self.fanout = fanout
        widths: List[int] = []
        width = n_leaves
        while width > 1:
            width = math.ceil(width / fanout)
            widths.append(width)
        #: aggregators per level, leaf-adjacent level first (root last)
        self.widths: Tuple[int, ...] = tuple(widths)
        #: aggregation levels above the leaves
        self.depth = len(widths)
        #: occupied aggregators per level at the last merge (probe tap)
        self.last_occupancy: Tuple[int, ...] = tuple(0 for _ in widths)
        #: occupied leaves at the last merge (probe tap)
        self.last_occupied_leaves = 0

    def merge_plan(
        self, occupied_leaves: Sequence[int]
    ) -> List[Tuple[int, Dict[int, int]]]:
        """Batch flow for one flush: which aggregators merge how much.

        Given the leaf indices that emitted a batch this window,
        returns ``[(level, {aggregator_index: child_batches}), ...]``
        for every aggregation level, bottom-up.  Each occupied
        aggregator merges its occupied children's batches and emits
        exactly one batch upward, so level ``l+1`` sees one batch per
        occupied level-``l`` node.  Also refreshes the occupancy taps.
        """
        plan: List[Tuple[int, Dict[int, int]]] = []
        self.last_occupied_leaves = len(occupied_leaves)
        current = set(occupied_leaves)
        occupancy: List[int] = []
        for level in range(1, self.depth + 1):
            counts: Dict[int, int] = {}
            for idx in current:
                parent = idx // self.fanout
                counts[parent] = counts.get(parent, 0) + 1
            plan.append((level, counts))
            occupancy.append(len(counts))
            current = set(counts)
        self.last_occupancy = tuple(occupancy)
        return plan

    def occupancy_fraction(self) -> float:
        """Occupied-leaf fraction at the last merge (probe tap)."""
        return self.last_occupied_leaves / self.n_leaves
