"""The fluid status plane: bulk periodic traffic as closed-form rates.

Discrete mode simulates every status report, keepalive, and heartbeat
sweep as kernel events: O(k) events per update interval, which is what
caps the measurable scale at a few thousand resources.  In fluid mode
the :class:`FluidStatusPlane` owns the whole status/keepalive/heartbeat
plane with **one** periodic flush event, and charges the
:class:`~repro.core.ledger.CostLedger` the same cells a discrete run
would — per ``(component, entity, message-class)``:

* **change-driven status updates** are *exact*: resources call
  :meth:`on_load_change` (O(1), no event) on every load transition; at
  each flush the plane resolves the dirty set against the discrete
  suppression model (at most one update per resource per
  ``update_interval``, suppressed while the load is unchanged) and
  charges ``estimator_proc`` per modeled update against the covering
  estimator under the ``status_update`` message class;
* **keepalives** are *exact, without events*: the discrete keepalive
  chain is deterministic (fire at ``last_sent + 3 tau``, re-anchoring
  on every real send), so the plane keeps a flush-indexed bucket queue
  of due times — O(1) amortized per keepalive occurrence, zero kernel
  events — and replays the same send instants quantized to the flush
  grid;
* **status forwards** (change-driven and keepalive alike) are applied
  to the schedulers *synchronously* via
  :meth:`~repro.grid.scheduler.SchedulerBase.fluid_status` — identical
  table refresh, identical ``update_proc`` charge, identical
  push-trigger hook (``after_status_update``), so Case 3's
  G-inflation mechanism survives the modeling;
* **heartbeat sweeps** become a rate (``heartbeat_proc x watched x
  W / interval`` per flush) and dead declarations become *scheduled
  discrete events* at crash + timeout — fault transitions stay
  event-driven (real reliable ``RESOURCE_DEAD`` messages), exactly
  like job dispatch and completion.

Crash/recovery re-derives every rate: a failed resource leaves the
alive/quiet populations (its keepalive and heartbeat-silence flow
stops), and a repaired one re-enters with a forced unconditional
report at the next flush, reviving its status-table entries the way
the discrete first post-repair report does.

With an aggregator tree (``FluidPlan.aggregator_fanout >= 2``), leaf
batches merge up a fan-in hierarchy (``estimator_proc`` per child
batch, charged to per-aggregator entities) and only the root forwards
consolidated per-cluster state — bounding scheduler-side update work
at extreme estimator counts.

Everything here is deterministic and consumes no RNG.  Send,
arrival, and handle instants are reconstructed exactly (keepalive
chains, per-pair transit, estimator-server serialization); the
residual fluid-vs-discrete tolerance comes from *delivery* timing —
forwards reach scheduler tables at flush boundaries instead of their
exact discrete instants, so a dispatch decision near a boundary can
see slightly fresher state.  The per-resource report *phases* drawn
by the builder (identically in both modes) anchor each resource's
keepalive chain, so the fluid keepalive instants stagger exactly like
the discrete ones instead of synchronizing on the flush grid.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple

from ..core.ledger import Category
from ..network.messages import DEFAULT_SIZES, Message, MessageKind
from .plan import FluidPlan
from .tree import AggregatorTree

__all__ = ["FluidStatusPlane"]


class FluidStatusPlane:
    """Rate-based model of the status/keepalive/heartbeat plane.

    Built by the system builder when ``config.fluid.is_fluid``; wired
    as every resource's ``fluid_sink`` in place of discrete reporting.
    """

    def __init__(
        self,
        sim,
        config,
        ledger,
        network,
        resources,
        estimators,
        grid_map,
        phases=None,
    ) -> None:
        plan: FluidPlan = config.fluid
        if not plan.is_fluid:
            raise ValueError("FluidStatusPlane requires a fluid-mode plan")
        self.sim = sim
        self.ledger = ledger
        self.network = network
        self.costs = config.costs
        self.plan = plan
        self.resources = resources
        self.estimators = estimators
        self.update_interval = float(config.update_interval)
        window = plan.effective_flush_interval(config.effective_batch_window)
        if window <= 0.0:
            window = 0.5 * self.update_interval
        self.flush_interval = window
        #: resources' soft-state refresh span (max_silence=3 intervals)
        self.keepalive_span = 3.0 * self.update_interval

        n = len(resources)
        m = len(estimators)
        self._est_of = [grid_map.estimator_of_resource[r] for r in range(n)]
        self._cluster_of = [grid_map.cluster_of_resource[r] for r in range(n)]
        self._cur_load = [0] * n
        self._last_load: List[Optional[int]] = [None] * n
        self._last_sent = [-math.inf] * n
        self._failed = [False] * n
        #: per-resource first-report instants — the same phase draws the
        #: discrete builder staggers reports with, so the keepalive
        #: chains anchor at identical times in both modes
        self._phase = (
            [float(p) for p in phases] if phases is not None else [0.0] * n
        )
        self._reported_once = [False] * n
        # Every resource starts dirty with no baseline, so the first
        # flush emits the same initial load-0 report wave a discrete
        # run sends during its first update interval.
        self._dirty: List[Set[int]] = [set() for _ in range(m)]
        for rid in range(n):
            self._dirty[self._est_of[rid]].add(rid)
        #: live total of all resource loads (O(1) probe tap)
        self.total_load = 0
        # Keepalive bucket queue: flush-index -> [(rid, anchor)].  The
        # discrete chain fires at last_send + 3*tau, re-anchoring on
        # every send; entries whose anchor no longer matches the
        # resource's last send are stale and dropped at pop time, so
        # each occurrence costs O(1) with no kernel event.
        self._ka_buckets: Dict[int, List[Tuple[int, float]]] = {}
        self._ka_keys: List[int] = []  # min-heap of bucket indices
        self._flush_index = 0
        # Discrete-batcher emulation (flat routing): per-estimator open
        # batch — pending entries per cluster and the arrival-aligned
        # flush due time.
        self._batch_pending: List[Dict[int, Dict[int, float]]] = [
            {} for _ in range(m)
        ]
        self._batch_due: List[Optional[float]] = [None] * m
        # The discrete batch timer starts at the first *handle* instant,
        # not the send instant: an update spends a fixed per-pair
        # transit delay in the network and then serializes through the
        # estimator's message server (constant ``estimator_proc``
        # service each).  Both are deterministic, so the batcher replay
        # reconstructs handle instants exactly: per-resource transit is
        # precomputed here, and ``_busy_until`` carries the server's
        # occupancy across flushes.
        size = DEFAULT_SIZES.get(MessageKind.STATUS_UPDATE, 1.0)
        router = network.router
        scale = network.delay_scale
        self._transit = [0.0] * n
        for rid in range(n):
            src = resources[rid].node
            dst = estimators[self._est_of[rid]].node
            if src != dst:
                # Query estimator -> resource: transit is symmetric on
                # the undirected topology, and estimator sites are
                # scheduler sites whose routing tables the builder
                # primes from the grid mapper — so this precompute is
                # pure cache hits instead of O(k) Dijkstra passes.
                latency, _, factor = router.path_info(dst, src)
                self._transit[rid] = scale * (latency + size * factor)
        self._busy_until = [-math.inf] * m
        self._src_update = [
            ("estimator", est.name, str(MessageKind.STATUS_UPDATE))
            for est in estimators
        ]
        self._src_heartbeat = [
            ("faults", est.name, "heartbeat") for est in estimators
        ]
        self._agg_src: Dict[Tuple[int, int], Tuple[str, str, str]] = {}
        self.tree: Optional[AggregatorTree] = (
            AggregatorTree(m, plan.aggregator_fanout)
            if plan.has_tree and m > 1
            else None
        )
        # cluster -> scheduler (tree-mode root forwards)
        self._sched_of: Dict[int, object] = {}
        for est in estimators:
            for c, s in est.schedulers.items():
                self._sched_of.setdefault(c, s)

        # Liveness watch (armed only under a fault plan with crashes)
        self._watch_timeout: Optional[float] = None
        self._hb_interval: Optional[float] = None
        self._watched = [0] * m
        self._watch_cluster: Dict[int, int] = {}
        self._crash_seq: Dict[int, int] = {}
        self._pending_crash: Dict[int, float] = {}

        #: diagnostics / bench counters
        self.flushes = 0
        self.modeled_updates = 0
        self.modeled_keepalives = 0
        self.modeled_forwards = 0
        self.declared_dead = 0
        self._occupied_last = 0
        self._flush_event = None

    # ------------------------------------------------------------------
    # Hooks (called synchronously by resources — no kernel events)
    # ------------------------------------------------------------------
    def on_load_change(self, resource) -> None:
        """A resource's load transitioned: O(1) dirty-set bookkeeping."""
        rid = resource.resource_id
        load = resource.load
        self.total_load += load - self._cur_load[rid]
        self._cur_load[rid] = load
        self._dirty[self._est_of[rid]].add(rid)

    def on_fail(self, resource) -> None:
        """A resource crashed: it goes silent and leaves every rate.

        Keepalive/heartbeat flows shrink immediately; if a liveness
        watch is armed, the dead declaration is scheduled as a discrete
        event at crash + timeout (the silence the discrete sweep would
        take to notice).
        """
        rid = resource.resource_id
        self.total_load -= self._cur_load[rid]
        self._cur_load[rid] = 0
        self._failed[rid] = True
        if self._watch_timeout is not None and rid in self._watch_cluster:
            seq = self._crash_seq.get(rid, 0) + 1
            self._crash_seq[rid] = seq
            self._pending_crash[rid] = self.sim.now
            self.sim.schedule(self._watch_timeout, self._declare_dead, rid, seq)

    def on_repair(self, resource) -> None:
        """A resource recovered: rates re-derive and it re-announces.

        The forced (baseline-free) entry in the dirty set makes the
        next flush emit an unconditional report — the fluid analogue of
        the discrete first post-repair report that revives aged-out
        status-table entries.
        """
        rid = resource.resource_id
        self._failed[rid] = False
        self.total_load += resource.load - self._cur_load[rid]
        self._cur_load[rid] = resource.load
        self._last_load[rid] = None
        self._last_sent[rid] = -math.inf
        self._dirty[self._est_of[rid]].add(rid)

    # ------------------------------------------------------------------
    # Liveness watch
    # ------------------------------------------------------------------
    def start_watch(
        self, watched: Dict[int, Dict[int, int]], timeout: float, interval: float
    ) -> None:
        """Arm failure detection over ``{est_index: {rid: cluster}}``.

        Detection *work* becomes a rate charge per flush; detection
        *decisions* (dead declarations) stay discrete events.
        """
        if timeout <= 0.0 or interval <= 0.0:
            raise ValueError("watch timeout and interval must be positive")
        self._watch_timeout = timeout
        self._hb_interval = interval
        for e, rids in watched.items():
            self._watched[e] = len(rids)
            self._watch_cluster.update(rids)

    def _declare_dead(self, rid: int, seq: int) -> None:
        if self._crash_seq.get(rid) != seq:
            return  # superseded by a newer crash/repair cycle
        self._pending_crash.pop(rid, None)
        e = self._est_of[rid]
        est = self.estimators[e]
        cluster = self._watch_cluster[rid]
        est.dead_reported += 1
        self.declared_dead += 1
        scheduler = est.schedulers.get(cluster)
        if scheduler is not None and est.network is not None:
            est.network.send_from(
                Message(
                    MessageKind.RESOURCE_DEAD,
                    payload={"resource_id": rid, "cluster_id": cluster},
                ),
                est,
                scheduler,
            )
        if not self._failed[rid]:
            # Rebooted inside the timeout window — the discrete
            # detector's incarnation jump: the declaration still lands
            # (the jobs are gone) and the next flush re-announces
            # liveness, reviving the table entry.
            self._last_load[rid] = None
            self._last_sent[rid] = -math.inf
            self._dirty[e].add(rid)

    # ------------------------------------------------------------------
    # The flush: one event for the whole plane
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule the periodic flush (self-rescheduling)."""
        self._flush_event = self.sim.schedule(self.flush_interval, self._flush)

    def _push_keepalive(self, rid: int, anchor: float) -> None:
        """Arm the keepalive chain: due at ``anchor + 3 tau``.

        ``anchor`` is the exact send instant (discrete semantics), not
        the quantized flush time, so chains never drift off the
        discrete stagger.  Stale entries (a newer send re-anchored the
        chain) are dropped lazily at pop time.
        """
        due = anchor + self.keepalive_span
        idx = int(math.ceil(due / self.flush_interval - 1e-9))
        bucket = self._ka_buckets.get(idx)
        if bucket is None:
            bucket = self._ka_buckets[idx] = []
            heapq.heappush(self._ka_keys, idx)
        bucket.append((rid, anchor))

    def _flush(self) -> None:
        self.flushes += 1
        self._flush_index += 1
        now = self.sim.now
        tau = self.update_interval
        window = self.flush_interval
        n_est = len(self.estimators)
        # Per-estimator modeled update emissions this flush, with the
        # *exact* send instant each one would carry in discrete mode —
        # keepalive fire times and rate-limit clearances are known
        # exactly; fresh load changes are only known to lie inside the
        # elapsed flush window and anchor at its start.
        emissions: List[List[Tuple[float, int, int]]] = [[] for _ in range(n_est)]

        # 1. Keepalives due by now: exact replay of the discrete chain.
        # A keepalive is an unconditional refresh (it re-baselines the
        # load), so it also satisfies any pending dirty mark.
        while self._ka_keys and self._ka_keys[0] <= self._flush_index:
            idx = heapq.heappop(self._ka_keys)
            for rid, anchor in self._ka_buckets.pop(idx, ()):
                if self._last_sent[rid] != anchor:
                    continue  # re-anchored by a newer send
                if self._failed[rid]:
                    continue  # crashed mid-silence: chain dies until repair
                load = self._cur_load[rid]
                fire = anchor + self.keepalive_span
                self._last_load[rid] = load
                self._last_sent[rid] = fire
                self._push_keepalive(rid, fire)
                e = self._est_of[rid]
                self._dirty[e].discard(rid)
                emissions[e].append((fire, rid, load))
                self.modeled_keepalives += 1

        # 2. Change-driven updates: the dirty sets resolved against the
        # suppression model (exact counts — suppression and the one-per-
        # tau rate limit mirror Resource.start_reporting).
        for e, dirty in enumerate(self._dirty):
            if not dirty:
                continue
            deferred: List[int] = []
            for rid in sorted(dirty):
                if self._failed[rid]:
                    continue  # crashed: silent, drops out entirely
                load = self._cur_load[rid]
                last = self._last_load[rid]
                if last is not None and load == last:
                    continue  # suppressed: no significant change
                if now - self._last_sent[rid] < tau - 1e-9:
                    deferred.append(rid)  # rate-limited, stays pending
                    continue
                if not self._reported_once[rid]:
                    # First report ever: anchor at the drawn phase, the
                    # instant the discrete initial report goes out.
                    # (Post-repair re-announcements anchor at the flush:
                    # discrete restarts reporting with zero phase.)
                    self._reported_once[rid] = True
                    sent = self._phase[rid]
                else:
                    # A rid deferred by the rate limit sends the moment
                    # the limit clears (last_sent + tau, exact); a fresh
                    # change sent somewhere inside the elapsed window.
                    # Fresh sends are dithered by the resource's report
                    # phase instead of snapping to the flush grid:
                    # grid-aligned anchors would synchronize every
                    # keepalive chain they re-anchor, over-merging
                    # later bursts into too few forwards.
                    lim = self._last_sent[rid] + tau
                    if lim > now - window:
                        sent = lim
                    else:
                        sent = now - window + (self._phase[rid] % window)
                self._last_load[rid] = load
                self._last_sent[rid] = sent
                self._push_keepalive(rid, sent)
                emissions[e].append((sent, rid, load))
            dirty.clear()
            dirty.update(deferred)

        # 3. Estimator-side charges (one modeled STATUS_UPDATE service
        # per emission) and the heartbeat-sweep rate.
        occupied: List[int] = []
        for e, est in enumerate(self.estimators):
            n_msgs = len(emissions[e])
            if n_msgs:
                occupied.append(e)
                charge = self.costs.estimator_proc * n_msgs
                if charge > 0.0:
                    self.ledger.charge(Category.ESTIMATOR, charge, self._src_update[e])
                est.busy_time += charge
                self.network.record_modeled(
                    MessageKind.STATUS_UPDATE, float(n_msgs), float(n_msgs)
                )
                self.modeled_updates += n_msgs
            if self._watch_timeout is not None and self._watched[e]:
                hb = (
                    self.costs.heartbeat_proc
                    * self._watched[e]
                    * (self.flush_interval / self._hb_interval)
                )
                if hb > 0.0:
                    self.ledger.charge(Category.FAULTS, hb, self._src_heartbeat[e])

        # 4. Forward routing.  Flat mode replays the discrete batcher
        # exactly: an estimator's batch opens at its first buffered
        # update and flushes one window later (arrival-aligned, NOT
        # flush-grid-aligned — grid alignment splits update bursts that
        # straddle a grid boundary and overcounts forwards).  Tree mode
        # (fluid-only, no discrete counterpart) merges per flush.
        if self.tree is None:
            for e in occupied:
                # Reconstruct the *handle* instant of each update — send
                # plus fixed per-pair transit, serialized through the
                # estimator's message server — because that is what the
                # discrete batch timer aligns to.  Bursts spread by one
                # service time per message, which is what splits batches
                # across window boundaries; batching on raw send
                # instants over-merges and undercounts forwards.
                arrivals = sorted(
                    (t + self._transit[rid], rid, load)
                    for t, rid, load in emissions[e]
                )
                st = self.costs.estimator_proc
                busy = self._busy_until[e]
                due = self._batch_due[e]
                pend = self._batch_pending[e]
                for arr, rid, load in arrivals:
                    busy = (arr if arr > busy else busy) + st
                    if due is not None and busy >= due - 1e-9:
                        self._close_batch(e)
                        pend = self._batch_pending[e]  # closed batch swaps the dict
                        due = None
                    if due is None:
                        due = busy + window
                    pend.setdefault(self._cluster_of[rid], {})[rid] = float(load)
                self._busy_until[e] = busy
                self._batch_due[e] = due
            for e in range(n_est):
                due = self._batch_due[e]
                if due is not None and due <= now + 1e-9:
                    self._close_batch(e)
                    self._batch_due[e] = None
        else:
            emitted_by_est: List[Optional[Dict[int, Dict[int, float]]]] = [
                None
            ] * n_est
            for e in occupied:
                emitted: Dict[int, Dict[int, float]] = {}
                for _, rid, load in sorted(emissions[e]):
                    emitted.setdefault(self._cluster_of[rid], {})[rid] = float(load)
                emitted_by_est[e] = emitted
            self._route_tree(occupied, emitted_by_est)
        self._occupied_last = len(occupied)
        self._flush_event = self.sim.schedule(self.flush_interval, self._flush)

    def _close_batch(self, e: int) -> None:
        """Emit the estimator's open batch: one forward per cluster."""
        pend = self._batch_pending[e]
        if not pend:
            return
        self._batch_pending[e] = {}
        est = self.estimators[e]
        for c in sorted(pend):
            scheduler = est.schedulers.get(c)
            if scheduler is None:
                continue  # estimator covers no resources of that cluster
            entries = pend[c]
            est.forwarded += 1
            self.modeled_forwards += 1
            scheduler.fluid_status(c, entries)
            if scheduler.node != est.node:
                self.network.record_modeled(
                    MessageKind.STATUS_FORWARD,
                    1.0,
                    max(1.0, float(len(entries))),
                )

    def _route_tree(
        self,
        occupied: List[int],
        emitted_by_est: List[Optional[Dict[int, Dict[int, float]]]],
    ) -> None:
        """Merge leaf batches up the fan-in tree, forward from the root."""
        merged: Dict[int, Dict[int, float]] = {}
        for e in occupied:
            self.estimators[e].forwarded += 1
            for c, entries in emitted_by_est[e].items():
                merged.setdefault(c, {}).update(entries)
        for level, counts in self.tree.merge_plan(occupied):
            for idx in sorted(counts):
                src = self._agg_src.get((level, idx))
                if src is None:
                    src = (
                        "estimator",
                        f"agg{level}.{idx}",
                        str(MessageKind.STATUS_FORWARD),
                    )
                    self._agg_src[(level, idx)] = src
                charge = self.costs.estimator_proc * counts[idx]
                if charge > 0.0:
                    self.ledger.charge(Category.ESTIMATOR, charge, src)
        for c in sorted(merged):
            scheduler = self._sched_of.get(c)
            if scheduler is None:
                continue
            self.modeled_forwards += 1
            scheduler.fluid_status(c, merged[c])

    # ------------------------------------------------------------------
    # Probe taps (all O(levels) or O(estimators), never O(resources))
    # ------------------------------------------------------------------
    @property
    def aggregate_depth(self) -> int:
        """Aggregation levels above the leaf estimators (0 = flat)."""
        return self.tree.depth if self.tree is not None else 0

    def aggregate_occupancy(self) -> float:
        """Occupied-leaf fraction at the last flush."""
        if self.tree is not None:
            return self.tree.occupancy_fraction()
        return self._occupied_last / max(1, len(self.estimators))

    @property
    def pending_updates(self) -> int:
        """Resources with unflushed load changes (O(estimators) sum)."""
        return sum(len(d) for d in self._dirty)

    def heartbeat_gap(self) -> float:
        """Widest undeclared crash silence (``nan`` without a watch).

        The discrete probe reports the quietest *healthy* resource's
        silence (an O(watched) sweep); the fluid plane knows crash
        instants exactly, so it reports the widest pending-declaration
        silence instead — 0.0 when nothing is pending.
        """
        if self._watch_timeout is None:
            return math.nan
        if not self._pending_crash:
            return 0.0
        return self.sim.now - min(self._pending_crash.values())

    def stats(self) -> Dict[str, float]:
        """Flush/flow counters (bench + diagnostics)."""
        return {
            "flushes": self.flushes,
            "modeled_updates": self.modeled_updates,
            "modeled_keepalives": self.modeled_keepalives,
            "modeled_forwards": self.modeled_forwards,
            "declared_dead": self.declared_dead,
            "aggregate_depth": self.aggregate_depth,
            "aggregate_occupancy": self.aggregate_occupancy(),
        }
