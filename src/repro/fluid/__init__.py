"""Fluid traffic modeling: rate-based bulk flows for extreme-scale runs.

See :mod:`repro.fluid.plan` for the :class:`FluidPlan` configuration
surface, :mod:`repro.fluid.plane` for the runtime model, and
:mod:`repro.fluid.tree` for the hierarchical estimator aggregation.
"""

from .plan import (
    ENV_TRAFFIC_MODE,
    FluidPlan,
    fluid_plan_from_jsonable,
    fluid_plan_to_jsonable,
    resolve_fluid_plan,
)
from .plane import FluidStatusPlane
from .tree import AggregatorTree

__all__ = [
    "ENV_TRAFFIC_MODE",
    "AggregatorTree",
    "FluidPlan",
    "FluidStatusPlane",
    "fluid_plan_from_jsonable",
    "fluid_plan_to_jsonable",
    "resolve_fluid_plan",
]
