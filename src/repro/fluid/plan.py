"""The :class:`FluidPlan` public API: how a run models bulk traffic.

The paper measures F/G/H at small scale factors because per-message
discrete simulation dominates the cost of every run: at k = 1e5–1e6
resources the periodic status/keepalive/heartbeat flows are O(k) kernel
events per update interval while the decisions they feed are O(jobs).
Following the granularity-based scalability model (Kwiatkowski & Olech)
and GridSim's discipline of keeping discrete events only where
decisions happen, **fluid traffic mode** replaces those bulk periodic
flows with closed-form *rate charges* to the
:class:`~repro.core.ledger.CostLedger` — per ``(component, entity,
message-class)`` attribution preserved — while the job plane
(submission, dispatch, execution, completion), volunteering/invitation
exchanges, and fault *transitions* (dead declarations, re-dispatch)
remain ordinary discrete events.

A ``FluidPlan`` is a frozen dataclass riding on
:class:`~repro.experiments.config.SimulationConfig`.  The default plan
is **discrete** and inert: it arms nothing, and cache/manifest keys are
bit-for-bit unchanged from before the field existed (the hashing layer
drops an inert plan exactly like a passive ``MonitorPlan``).

Attributes
----------
mode:
    ``"discrete"`` (the classic per-message simulation) or ``"fluid"``.
aggregator_fanout:
    Fan-out of the hierarchical status-estimator tree built above the
    leaf estimators in fluid mode.  ``0`` disables the tree (flat fluid
    mode — required for the fluid-vs-discrete cross-validation, whose
    tolerances assume identical attribution structure); values >= 2
    bound per-aggregator merge work at extreme estimator counts so
    G(k) stays measurable at k = 1e5–1e6.
flush_interval:
    Period of the plane-wide status flush.  ``None`` derives the
    estimator batch window (``update_interval / 2``), matching the
    cadence at which discrete-mode estimators forward batched status.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = [
    "ENV_TRAFFIC_MODE",
    "FluidPlan",
    "fluid_plan_from_jsonable",
    "fluid_plan_to_jsonable",
    "resolve_fluid_plan",
]

#: environment knob consulted by :func:`resolve_fluid_plan`
ENV_TRAFFIC_MODE = "REPRO_TRAFFIC_MODE"

_MODES = ("discrete", "fluid")


@dataclass(frozen=True)
class FluidPlan:
    """Traffic-modeling plan of one run (discrete and inert by default)."""

    mode: str = "discrete"
    aggregator_fanout: int = 0
    flush_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown traffic mode {self.mode!r}; valid: {list(_MODES)}"
            )
        if int(self.aggregator_fanout) != self.aggregator_fanout:
            raise ValueError("aggregator_fanout must be an integer")
        object.__setattr__(self, "aggregator_fanout", int(self.aggregator_fanout))
        if self.aggregator_fanout < 0 or self.aggregator_fanout == 1:
            raise ValueError("aggregator_fanout must be 0 (flat) or >= 2")
        if self.flush_interval is not None and not self.flush_interval > 0.0:
            raise ValueError("flush_interval must be positive")

    # -- predicates (gate what the builder arms) ------------------------
    @property
    def is_fluid(self) -> bool:
        """Whether bulk periodic traffic is modeled as rates."""
        return self.mode == "fluid"

    @property
    def is_inert(self) -> bool:
        """True iff the plan changes nothing (plain discrete simulation).

        An inert plan is provenance only: the hashing layer drops it
        from canonical configs, so keys match builds that predate the
        field.
        """
        return not self.is_fluid

    @property
    def has_tree(self) -> bool:
        """Whether a hierarchical aggregator tree is requested."""
        return self.is_fluid and self.aggregator_fanout >= 2

    # -- derived settings ----------------------------------------------
    def effective_flush_interval(self, batch_window: float) -> float:
        """The plane flush period actually applied."""
        if self.flush_interval is not None:
            return self.flush_interval
        return batch_window


# ---------------------------------------------------------------------------
# JSON (de)serialization — manifest/provenance format
# ---------------------------------------------------------------------------

def fluid_plan_to_jsonable(plan: FluidPlan) -> Dict[str, Any]:
    """The plan as plain JSON types (inverse of :func:`fluid_plan_from_jsonable`)."""
    return dataclasses.asdict(plan)


def fluid_plan_from_jsonable(payload: Dict[str, Any]) -> FluidPlan:
    """Build a :class:`FluidPlan` from a JSON dict (unknown keys rejected)."""
    if not isinstance(payload, dict):
        raise TypeError("a fluid plan must be a JSON object")
    known = {f.name for f in dataclasses.fields(FluidPlan)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown fluid-plan keys: {sorted(unknown)}")
    return FluidPlan(**payload)


def resolve_fluid_plan(
    mode: Optional[str] = None,
    aggregator_fanout: Optional[int] = None,
    flush_interval: Optional[float] = None,
) -> FluidPlan:
    """Resolve a traffic plan: arguments > ``$REPRO_TRAFFIC_MODE`` > discrete.

    Mirrors ``resolve_monitor_plan``: explicit arguments win; an unset
    mode defers to the environment knob (``discrete``/``fluid``); with
    neither, the inert discrete default applies.
    """
    if mode is None:
        from ..envknobs import raw as _env_raw

        env = (_env_raw(ENV_TRAFFIC_MODE) or "").lower()
        if env in ("", "0", "off", "no", "false"):
            mode = "discrete"
        elif env in _MODES:
            mode = env
        else:
            raise ValueError(
                f"${ENV_TRAFFIC_MODE} must be one of {list(_MODES)}, got {env!r}"
            )
    return FluidPlan(
        mode=mode,
        aggregator_fanout=0 if aggregator_fanout is None else aggregator_fanout,
        flush_interval=flush_interval,
    )
