"""Central registry and resolution of the ``REPRO_*`` environment knobs.

Every environment variable the package consults is declared here, in
one table, with its type, default, and consumer.  Resolution follows a
single documented precedence everywhere::

    explicit value (CLI flag / function argument)  >  environment  >  default

The typed getters (:func:`get_str`, :func:`get_int`, :func:`get_float`,
:func:`get_bool`) implement that precedence: pass the explicit value as
``override`` and the knob's declared default applies only when both the
override and the environment are unset.  A blank or whitespace-only
environment value counts as unset for every knob (the historical
behavior of each scattered call site, now uniform by construction).

Modules must not read ``os.environ`` for ``REPRO_*`` names directly;
they call the getters here (the historical direct lookups are kept
importable through :func:`environ_get`, a shim that works but warns).
``repro knobs`` renders the table for users; tests assert that every
``REPRO_*`` name mentioned anywhere in the source appears in it.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "Knob",
    "KNOBS",
    "environ_get",
    "get_bool",
    "get_float",
    "get_int",
    "get_str",
    "knob_rows",
    "raw",
    "render_knob_table",
]

#: strings (lowercased) that mean "false" for boolean knobs — matching
#: the historical per-site conventions (anything else non-blank is true)
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


@dataclass(frozen=True)
class Knob:
    """One declared environment knob.

    Attributes
    ----------
    env:
        The environment variable name.
    kind:
        Value type: ``str`` / ``int`` / ``float`` / ``bool``.
    default:
        Human-readable default (what applies when flag and env are both
        unset) — documentation, not a parsed value; the consumer module
        owns the actual default object.
    description:
        One-line meaning.
    consumer:
        The module/flag that honors it.
    """

    env: str
    kind: str
    default: str
    description: str
    consumer: str


#: the single knob table — ordered as rendered by ``repro knobs``
KNOBS: Dict[str, Knob] = {
    k.env: k
    for k in [
        Knob("REPRO_JOBS", "int", "1",
             "engine worker processes (0 or negative = one per CPU)",
             "ExperimentEngine / --jobs"),
        Knob("REPRO_CACHE_DIR", "str", ".repro-cache",
             "run-cache root; study manifests live under <dir>/manifests/",
             "RunCache / --cache-dir"),
        Knob("REPRO_KERNEL_BACKEND", "str", "reference",
             "kernel backend for every simulation (bit-identical; provenance only)",
             "sim.backend / --kernel-backend"),
        Knob("REPRO_TRAFFIC_MODE", "str", "discrete",
             "traffic model: discrete per-message simulation or fluid rate charges",
             "fluid.plan / --traffic-mode"),
        Knob("REPRO_SPECULATE", "int", "off (width 1)",
             "speculative annealing width (1/true = default width 4)",
             "Study / --speculate"),
        Knob("REPRO_WARM_START", "bool", "on",
             "warm-start each scale's enabler walk from the previous scale",
             "Study / --no-warm-start"),
        Knob("REPRO_SERIES", "bool", "off",
             "attach a windowed F/G/H/E(t) monitoring plan ambiently",
             "telemetry.timeseries / repro series"),
        Knob("REPRO_SERIES_WINDOW", "float", "horizon/64",
             "monitoring window width (sim time units)",
             "telemetry.timeseries / --window"),
        Knob("REPRO_SERIES_PROBE_INTERVAL", "float", "horizon/200",
             "in-sim probe sweep period",
             "telemetry.timeseries / --probe-interval"),
        Knob("REPRO_SERIES_CHARGE_RATE", "float", "0 (free probes)",
             "G cost per probe sweep per monitored entity (charged to g.monitor)",
             "telemetry.timeseries / --charge-rate"),
        Knob("REPRO_TRACE_SAMPLE", "float", "0 (off; repro trace: 1)",
             "fraction of jobs traced, sampled deterministically",
             "telemetry.tracing / --trace-sample"),
        Knob("REPRO_TRACE_CHARGE_RATE", "float", "0.02 in repro trace",
             "G cost per recorded span (charged to g.trace; 0 = passive)",
             "telemetry.tracing / --trace-charge"),
        Knob("REPRO_TRACE_MAX_EVENTS", "int", "64",
             "span-DAG bound per traced job",
             "telemetry.tracing / --max-events"),
        Knob("REPRO_TELEMETRY", "bool", "off",
             "record spans/events/metrics for the invocation",
             "experiments.cli / --telemetry"),
        Knob("REPRO_TELEMETRY_DIR", "str", "telemetry",
             "root for per-run telemetry directories",
             "experiments.cli / --telemetry-dir"),
        Knob("REPRO_TELEMETRY_PROFILE", "bool", "off",
             "attach the sampling profiler to telemetry spans",
             "telemetry.profiler"),
        Knob("REPRO_FLIGHT_RECORDER", "bool", "off",
             "keep forensic ring buffers and dump crash bundles",
             "telemetry.flightrec / --flight-recorder"),
        Knob("REPRO_FLIGHT_DIR", "str", "flight-recorder",
             "flight-recorder bundle directory",
             "telemetry.flightrec / --flight-dir"),
        Knob("REPRO_LOG_LEVEL", "str", "warning",
             "logging verbosity (debug/info/warning/error/critical)",
             "experiments.cli / --log-level"),
    ]
}


def raw(env: str) -> Optional[str]:
    """The stripped environment value of a **declared** knob, or ``None``.

    Blank and whitespace-only values count as unset.  Undeclared names
    raise ``KeyError`` — new knobs must be added to :data:`KNOBS`, which
    is what keeps the table the single source of truth.
    """
    if env not in KNOBS:
        raise KeyError(f"undeclared environment knob {env!r}; add it to repro.envknobs.KNOBS")
    value = os.environ.get(env)
    if value is None:
        return None
    value = value.strip()
    return value or None


def get_str(env: str, override: Optional[str] = None, default: Optional[str] = None) -> Optional[str]:
    """Resolve a string knob: ``override`` > environment > ``default``."""
    if override is not None:
        return override
    value = raw(env)
    return default if value is None else value


def get_int(env: str, override: Optional[int] = None, default: Optional[int] = None) -> Optional[int]:
    """Resolve an integer knob: ``override`` > environment > ``default``.

    A malformed environment value raises ``ValueError`` naming the knob.
    """
    if override is not None:
        return int(override)
    value = raw(env)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{env} must be an integer, got {value!r}") from None


def get_float(env: str, override: Optional[float] = None, default: Optional[float] = None) -> Optional[float]:
    """Resolve a float knob: ``override`` > environment > ``default``.

    A malformed environment value raises ``ValueError`` naming the knob.
    """
    if override is not None:
        return float(override)
    value = raw(env)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"{env} must be a number, got {value!r}") from None


def get_bool(env: str, override: Optional[bool] = None, default: bool = False) -> bool:
    """Resolve a boolean knob: ``override`` > environment > ``default``.

    Environment truthiness follows the package-wide convention: a blank
    value is unset; ``0/false/no/off`` (any case) are false; anything
    else is true.
    """
    if override is not None:
        return bool(override)
    value = raw(env)
    if value is None:
        return default
    return value.lower() not in _FALSE_WORDS


# ---------------------------------------------------------------------------
# The rendered table (``repro knobs``) and the deprecation shim
# ---------------------------------------------------------------------------

def knob_rows() -> List[List[str]]:
    """The knob table as rows (env, type, default, consumer, description)."""
    return [
        [k.env, k.kind, k.default, k.consumer, k.description]
        for k in KNOBS.values()
    ]


def render_knob_table() -> str:
    """Human-readable knob table, with the precedence rule on top."""
    lines = [
        "environment knobs (precedence: CLI flag > environment > default)",
        "",
    ]
    width = max(len(k.env) for k in KNOBS.values())
    for k in KNOBS.values():
        lines.append(f"  {k.env.ljust(width)}  [{k.kind}] {k.description}")
        lines.append(f"  {' ' * width}  default: {k.default}; consumer: {k.consumer}")
    return "\n".join(lines)


def environ_get(env: str, default: Optional[str] = None) -> Optional[str]:
    """Deprecated spelling of a direct ``os.environ.get`` on a knob.

    Exists so out-of-tree callers that used to read ``REPRO_*``
    variables directly have a drop-in replacement; in-tree code calls
    the typed getters.  Warns once per call site and applies the same
    blank-is-unset rule as :func:`raw`.
    """
    warnings.warn(
        f"environ_get({env!r}) is deprecated; use the typed getters in "
        "repro.envknobs (get_str/get_int/get_float/get_bool)",
        DeprecationWarning,
        stacklevel=2,
    )
    value = raw(env)
    return default if value is None else value
