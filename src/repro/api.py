"""The public Python API: run any study from one :class:`StudySpec`.

This facade is the programmatic twin of the CLI and the fabric's wire
protocol — all three construct the same frozen
:class:`~repro.experiments.spec.StudySpec` and hand it to the same
execution path, so results are identical by construction::

    from repro.api import StudySpec, run_study

    result = run_study(StudySpec(kind="compare", profile="ci", jobs=4))
    print(result.report)

:func:`run_study` executes locally (building a kind-appropriate engine
and content-addressed cache unless one is passed in);
:func:`submit_study` ships the same spec to a ``repro serve``
coordinator over the fabric protocol and returns the same
:class:`StudyResult` shape.  The contract between the two: a study
executed through the fabric is byte-identical — cache entries and
manifest — to the same spec run locally with ``--jobs N``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from pathlib import Path
from typing import Any, Optional, Tuple

from .experiments.spec import (
    KINDS,
    StudySpec,
    spec_digest,
    spec_from_jsonable,
    spec_to_jsonable,
)

__all__ = [
    "FIGURE_QUANTITY",
    "KINDS",
    "StudyResult",
    "StudySpec",
    "cache_for_spec",
    "engine_for_spec",
    "run_study",
    "spec_digest",
    "spec_from_jsonable",
    "spec_to_jsonable",
    "submit_study",
]

#: figure number -> the quantity its y-axis plots
FIGURE_QUANTITY = {2: "G", 3: "G", 4: "G", 5: "G", 6: "throughput", 7: "response"}

#: per-kind default table precision (mirrors the CLI defaults)
_PRECISION = {"figure": 1, "compare": 3, "faults": 1, "series": 3, "trace": 3}


@dataclass(frozen=True)
class StudyResult:
    """What running a spec produced.

    ``report`` is the rendered human-readable deliverable (what the CLI
    prints).  ``data`` is the kind's in-memory result object (a
    ``FigureData``, comparison rows, or a ``*StudyResult`` dataclass)
    for programmatic use — ``None`` when the study ran remotely.
    ``manifest_path`` points at the study manifest when one was written.
    """

    kind: str
    spec: StudySpec
    report: str
    data: Any = None
    manifest_path: Optional[Path] = None


# ---------------------------------------------------------------------------
# execution plumbing shared by CLI / API / fabric
# ---------------------------------------------------------------------------

def cache_root_for_spec(spec: StudySpec) -> str:
    """The run-cache root a spec resolves to (spec > env > default)."""
    from .envknobs import get_str
    from .experiments.parallel.cache import DEFAULT_CACHE_DIR

    return get_str("REPRO_CACHE_DIR", override=spec.cache_dir,
                   default=DEFAULT_CACHE_DIR)


def cache_for_spec(spec: StudySpec):
    """The kind-appropriate content-addressed cache for a spec.

    ``series`` and ``trace`` studies need payload-aware caches (entries
    cached by earlier plain sweeps share keys but lack the stream/trace
    payload, so they must read as misses and be upgraded in place).
    """
    from .experiments.parallel import RunCache

    root = cache_root_for_spec(spec)
    read = not spec.no_cache
    if spec.kind == "series":
        from .experiments.seriesstudy import SeriesAwareCache

        return SeriesAwareCache(root=root, read=read)
    if spec.kind == "trace":
        from .experiments.tracestudy import TraceAwareCache

        return TraceAwareCache(root=root, read=read)
    return RunCache(root=root, read=read)


def engine_for_spec(spec: StudySpec, cache=None):
    """An :class:`ExperimentEngine` configured as the spec asks."""
    from .experiments.parallel import ExperimentEngine

    return ExperimentEngine(
        jobs=spec.jobs, cache=cache if cache is not None else cache_for_spec(spec)
    )


def _apply_ambient_env(spec: StudySpec):
    """Export the spec's ambient knobs and resolve its fluid plan.

    The kernel backend and a fluid traffic mode travel through the
    environment so engine pool workers build configs identical to the
    parent's (the plan also rides on each config; the export keeps
    programmatic spawns consistent).  Returns the resolved
    :class:`FluidPlan`.
    """
    import os

    from .fluid.plan import ENV_TRAFFIC_MODE, resolve_fluid_plan

    if spec.kernel_backend:
        from .sim.backend import ENV_BACKEND, resolve_backend

        os.environ[ENV_BACKEND] = resolve_backend(spec.kernel_backend)
    fluid = resolve_fluid_plan(
        mode=spec.traffic_mode, aggregator_fanout=spec.aggregator_fanout
    )
    if fluid.is_fluid:
        os.environ[ENV_TRAFFIC_MODE] = fluid.mode
    return fluid


def _manifest_dir(spec: StudySpec) -> Path:
    return Path(cache_root_for_spec(spec)) / "manifests"


# ---------------------------------------------------------------------------
# per-kind runners
# ---------------------------------------------------------------------------

def _run_figure(spec: StudySpec, engine, fluid, study_cls) -> StudyResult:
    from .experiments.reporting import figure_report

    if study_cls is None:
        from .experiments import reproduce

        study_cls = reproduce.Study
    number = spec.figure_number
    # keep the manifest inside the cache dir actually in use, so
    # `repro attrib` finds it there by default
    manifest_path = _manifest_dir(spec) / "study.json" if spec.resume else None
    study = study_cls(
        profile=spec.profile,
        rms=spec.rms_list,
        seed=spec.seed,
        sa_iterations=spec.sa_iterations,
        engine=engine,
        resume=spec.resume,
        manifest_path=manifest_path,
        speculate=spec.speculate,
        warm_start=spec.warm_start,
        kernel_backend=spec.kernel_backend,
        fluid=fluid,
    )
    fig = study.figure(number)
    quantity = spec.quantity or FIGURE_QUANTITY[number]
    precision = _PRECISION["figure"] if spec.precision is None else spec.precision
    report = figure_report(fig, quantity, precision=precision)
    return StudyResult("figure", spec, report, data=fig, manifest_path=manifest_path)


def _run_compare(spec: StudySpec, engine, fluid, study_cls) -> StudyResult:
    from .experiments.config import PROFILES, SimulationConfig
    from .experiments.reporting import format_table
    from .rms.registry import get_rms, rms_names
    from .telemetry.timeseries import resolve_monitor_plan

    extra = {} if spec.faults is None else {"faults": spec.faults}
    # REPRO_SERIES* knobs attach a monitoring plan ambiently; a passive
    # plan records streams without perturbing the printed table
    monitor = resolve_monitor_plan()
    if monitor.is_enabled:
        extra["monitor"] = monitor
    if fluid.is_fluid:
        extra["fluid"] = fluid
    profile = PROFILES[spec.profile]
    names = spec.rms_list or rms_names()
    configs = [
        SimulationConfig(
            rms=rms,
            n_schedulers=profile.base_schedulers,
            n_resources=profile.base_resources,
            workload_rate=0.0067 * profile.base_resources / 24.0,
            update_interval=40.0 if rms == "CENTRAL" else 8.5,
            horizon=profile.horizon,
            seed=spec.seed,
            **extra,
        )
        for rms in names
    ]
    # the designs are independent runs: one engine batch
    metrics = engine.run_many(configs)
    rows = [
        [rms, get_rms(rms).mechanism, m.efficiency, m.record.G, m.success_rate]
        for rms, m in zip(names, metrics)
    ]
    precision = _PRECISION["compare"] if spec.precision is None else spec.precision
    report = format_table(
        ["RMS", "mechanism", "E", "G", "success"], rows, precision=precision
    )
    return StudyResult("compare", spec, report, data=rows)


def _run_faults(spec: StudySpec, engine, fluid, study_cls) -> StudyResult:
    from .experiments.faultstudy import fault_report, run_fault_study

    manifest_path = _manifest_dir(spec) / "faults.json"
    result = run_fault_study(
        profile=spec.profile,
        rms=spec.rms_list,
        seed=spec.seed,
        plan=spec.faults,
        mttf=spec.mttf,
        mttr=spec.mttr,
        engine=engine,
        manifest_path=manifest_path,
        fluid=fluid,
    )
    precision = _PRECISION["faults"] if spec.precision is None else spec.precision
    report = fault_report(result, precision=precision)
    return StudyResult("faults", spec, report, data=result,
                       manifest_path=manifest_path)


def _run_series(spec: StudySpec, engine, fluid, study_cls) -> StudyResult:
    from .experiments.config import PROFILES
    from .experiments.seriesstudy import (
        run_series_study,
        series_report,
        sweep_report,
    )
    from .telemetry.timeseries import resolve_monitor_plan

    profile = PROFILES[spec.profile]
    intervals = spec.probe_intervals
    # spec > REPRO_SERIES_* env > derived default, per knob
    plan = resolve_monitor_plan(
        series=True,
        window=spec.window,
        probe_interval=intervals[0] if intervals else None,
        charge_rate=spec.charge_rate,
    )
    if plan.probe_interval == 0.0:
        plan = _dc_replace(plan, probe_interval=profile.horizon / 200.0)
    manifest_path = _manifest_dir(spec) / "series.json"
    result = run_series_study(
        profile=spec.profile,
        rms=spec.rms_list,
        seed=spec.seed,
        plan=plan,
        sweep_intervals=list(intervals[1:]),
        engine=engine,
        manifest_path=manifest_path,
        fluid=fluid,
    )
    precision = _PRECISION["series"] if spec.precision is None else spec.precision
    report = series_report(result, precision=precision)
    sweep_text = sweep_report(result, precision=precision)
    if sweep_text:
        report = f"{report}\n{sweep_text}"
    return StudyResult("series", spec, report, data=result,
                       manifest_path=manifest_path)


def _run_trace(spec: StudySpec, engine, fluid, study_cls) -> StudyResult:
    from .experiments.tracestudy import (
        default_trace_plan,
        run_trace_study,
        trace_report,
    )

    # spec > REPRO_TRACE_* env > the study's trace-everything default
    plan = default_trace_plan(
        sample=spec.trace_sample,
        charge_rate=spec.trace_charge,
        max_events=spec.max_events,
    )
    manifest_path = _manifest_dir(spec) / "trace.json"
    result = run_trace_study(
        profile=spec.profile,
        rms=spec.rms_list,
        seed=spec.seed,
        plan=plan,
        engine=engine,
        manifest_path=manifest_path,
        fluid=fluid,
        faults=spec.faults,
    )
    precision = _PRECISION["trace"] if spec.precision is None else spec.precision
    report = trace_report(result, precision=precision)
    return StudyResult("trace", spec, report, data=result,
                       manifest_path=manifest_path)


_RUNNERS = {
    "figure": _run_figure,
    "compare": _run_compare,
    "faults": _run_faults,
    "series": _run_series,
    "trace": _run_trace,
}


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def run_study(spec: StudySpec, engine=None, study_cls=None) -> StudyResult:
    """Execute a :class:`StudySpec` locally and return its result.

    ``engine`` lets callers supply a preconfigured
    :class:`ExperimentEngine` (the CLI does, so its flags and stubs keep
    working); by default a kind-appropriate engine + cache is built from
    the spec and closed afterwards.  ``study_cls`` overrides the
    ``figure`` kind's ``Study`` class (test seam).
    """
    from .experiments.config import PROFILES

    if spec.profile not in PROFILES:
        raise KeyError(f"unknown profile {spec.profile!r}; valid: {sorted(PROFILES)}")
    fluid = _apply_ambient_env(spec)
    own_engine = engine is None
    if own_engine:
        engine = engine_for_spec(spec)
    try:
        return _RUNNERS[spec.kind](spec, engine, fluid, study_cls)
    finally:
        if own_engine:
            engine.close()


def submit_study(
    spec: StudySpec,
    address: Tuple[str, int],
    timeout: Optional[float] = None,
) -> StudyResult:
    """Submit a spec to a ``repro serve`` coordinator and await the result.

    Blocks until the coordinator reports completion (or ``timeout``
    seconds elapse), then returns a :class:`StudyResult` whose
    ``report`` matches a local run byte-for-byte.  ``data`` is ``None``
    — the in-memory result objects stay on the coordinator; fetch
    numbers from the shared cache/manifest instead.
    """
    from .fabric.client import submit

    return submit(spec, address, timeout=timeout)
