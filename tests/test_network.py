"""Tests for routing and message transport."""

import pytest

from repro.network import DEFAULT_SIZES, Message, MessageKind, Network, Router
from repro.sim import Entity, RngHub, Simulator
from repro.topology import Topology


class Inbox(Entity):
    def __init__(self, sim, name, node):
        super().__init__(sim, name, node)
        self.received = []

    def handle(self, message):
        self.received.append((self.sim.now, message))


def line_topology():
    t = Topology(3)
    t.add_link(0, 1, 1.0, 10.0)
    t.add_link(1, 2, 2.0, 5.0)
    return t


class TestMessage:
    def test_default_size_from_kind(self):
        assert Message(MessageKind.JOB_TRANSFER).size == DEFAULT_SIZES[MessageKind.JOB_TRANSFER]

    def test_unknown_kind_defaults_to_one(self):
        assert Message("exotic").size == 1.0

    def test_explicit_size(self):
        assert Message(MessageKind.POLL_REQUEST, size=9.0).size == 9.0

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            Message(MessageKind.POLL_REQUEST, size=0.0)

    def test_payload_defaults_to_dict(self):
        m = Message(MessageKind.POLL_REQUEST)
        m.payload["x"] = 1
        assert m.payload == {"x": 1}


class TestRouter:
    def test_same_node_zero(self):
        r = Router(line_topology())
        assert r.path_info(1, 1) == (0.0, 0, 0.0)
        assert r.transit_delay(1, 1, 100.0) == 0.0

    def test_transit_delay_formula(self):
        r = Router(line_topology())
        # 0 -> 2: latency 3, factor 1/10 + 1/5 = 0.3
        assert r.transit_delay(0, 2, 10.0) == pytest.approx(3.0 + 10.0 * 0.3)

    def test_hop_count(self):
        r = Router(line_topology())
        assert r.hop_count(0, 2) == 2

    def test_cache_populates_per_source(self):
        r = Router(line_topology())
        assert r.cached_sources == 0
        r.transit_delay(0, 2, 1.0)
        assert r.cached_sources == 1
        r.transit_delay(0, 1, 1.0)   # same source: no new table
        assert r.cached_sources == 1
        r.transit_delay(2, 0, 1.0)
        assert r.cached_sources == 2


class TestNetwork:
    def make(self, delay_scale=1.0, loss=0.0, seed=0):
        sim = Simulator()
        net = Network(
            sim,
            Router(line_topology()),
            delay_scale=delay_scale,
            loss_probability=loss,
            rng=RngHub(seed).stream("loss") if loss else None,
        )
        return sim, net

    def test_delivery_after_transit_delay(self):
        sim, net = self.make()
        dst = Inbox(sim, "dst", 2)
        msg = Message(MessageKind.POLL_REQUEST)  # size 1
        delay = net.send(msg, 0, dst)
        assert delay == pytest.approx(3.0 + 1.0 * 0.3)
        sim.run()
        t, m = dst.received[0]
        assert t == pytest.approx(delay)
        assert m is msg
        assert m.created_at == 0.0

    def test_delay_scale_applies(self):
        sim, net = self.make(delay_scale=0.5)
        dst = Inbox(sim, "dst", 2)
        d = net.send(Message(MessageKind.POLL_REQUEST), 0, dst)
        assert d == pytest.approx(0.5 * (3.0 + 0.3))

    def test_send_from_stamps_sender(self):
        sim, net = self.make()
        src = Inbox(sim, "src", 0)
        dst = Inbox(sim, "dst", 2)
        msg = Message(MessageKind.POLL_REQUEST)
        net.send_from(msg, src, dst)
        sim.run()
        assert dst.received[0][1].sender is src

    def test_counters(self):
        sim, net = self.make()
        dst = Inbox(sim, "dst", 1)
        net.send(Message(MessageKind.POLL_REQUEST), 0, dst)
        net.send(Message(MessageKind.JOB_TRANSFER), 0, dst)
        assert net.messages_sent == 2
        assert net.payload_sent == 1.0 + DEFAULT_SIZES[MessageKind.JOB_TRANSFER]
        sim.run()
        assert net.messages_delivered == 2
        assert net.messages_dropped == 0

    def test_loss_injection_drops_messages(self):
        sim, net = self.make(loss=0.5, seed=3)
        dst = Inbox(sim, "dst", 1)
        for _ in range(200):
            net.send(Message(MessageKind.POLL_REQUEST), 0, dst)
        sim.run()
        assert net.messages_dropped > 0
        assert net.messages_delivered + net.messages_dropped == 200
        assert len(dst.received) == net.messages_delivered
        # roughly half dropped
        assert 50 < net.messages_dropped < 150

    def test_loss_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, Router(line_topology()), loss_probability=0.1)

    def test_bad_delay_scale_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(sim, Router(line_topology()), delay_scale=0.0)

    def test_bad_loss_probability_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Network(
                sim,
                Router(line_topology()),
                loss_probability=1.0,
                rng=RngHub(0).stream("loss"),
            )
