"""Regression tests for the post-horizon drain loop in ``run_simulation``.

The drain loop (``runner.run_simulation``) continues a run past the
arrival window so near-horizon jobs get credited.  Two properties must
hold even for a pathological run whose jobs can *never* complete:

* the loop terminates at ``horizon + drain`` instead of spinning
  (the kernel advances the clock to ``until`` even with an empty or
  never-quiescent event queue, and the loop is bounded by the drain
  deadline);
* jobs truncated at the deadline count *against* ``success_rate`` —
  an RMS must not look better by failing to finish work.
"""

import pytest

from repro.core.efficiency import EfficiencyRecord
from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.runner import RunMetrics
from repro.grid.jobs import JobState


def undeliverable_config(**kw):
    """A run whose jobs can never complete: the per-resource service
    rate is so low that every job's execution stretches far beyond
    ``horizon + drain`` — the run can only end by exhausting the drain."""
    kw.setdefault("rms", "LOWEST")
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 800.0)
    kw.setdefault("drain", 1200.0)
    kw.setdefault("service_rate", 1e-6)
    return SimulationConfig(**kw)


class TestDrainTermination:
    def test_never_completing_run_terminates(self):
        metrics = run_simulation(undeliverable_config())
        assert metrics.jobs_submitted > 0
        assert metrics.jobs_completed < metrics.jobs_submitted

    def test_truncated_jobs_count_against_success_rate(self):
        metrics = run_simulation(undeliverable_config())
        # every truncated job is a failure of the managed system
        assert metrics.jobs_successful <= metrics.jobs_completed
        assert metrics.success_rate == pytest.approx(
            metrics.jobs_successful / metrics.jobs_submitted
        )
        assert metrics.success_rate < 1.0

    def test_healthy_run_still_drains_to_completion(self):
        """Control: at a normal service rate the same config completes
        every job within the drain allowance (the loop's normal exit)."""
        metrics = run_simulation(undeliverable_config(service_rate=1.0))
        assert metrics.jobs_completed == metrics.jobs_submitted

    def test_drain_loop_bounded_by_deadline(self):
        """Drive the drain loop manually: the clock may never pass
        ``horizon + drain`` while jobs are stuck."""
        from repro.experiments.runner import build_system

        config = undeliverable_config()
        system = build_system(config)
        sim = system.sim
        sim.run(until=config.horizon)
        deadline = config.horizon + config.drain
        step = max(200.0, config.horizon / 10.0)
        iterations = 0
        while sim.now < deadline and any(
            j.state != JobState.COMPLETED for j in system.jobs
        ):
            sim.run(until=min(deadline, sim.now + step))
            iterations += 1
            assert iterations <= 1 + int(config.drain / step) + 1, (
                "drain loop ran more iterations than the deadline allows"
            )
        assert sim.now == pytest.approx(deadline)


class TestSuccessRateSemantics:
    def _metrics(self, submitted, completed, successful):
        return RunMetrics(
            record=EfficiencyRecord(F=10.0, G=5.0, H=1.0),
            jobs_submitted=submitted,
            jobs_completed=completed,
            jobs_successful=successful,
            mean_response=1.0,
            throughput=0.1,
            messages_sent=10,
            scheduler_busy=1.0,
            horizon=100.0,
        )

    def test_denominator_is_submitted_not_completed(self):
        m = self._metrics(submitted=10, completed=4, successful=4)
        assert m.success_rate == pytest.approx(0.4)

    def test_empty_run_is_vacuously_successful(self):
        assert self._metrics(0, 0, 0).success_rate == 1.0
