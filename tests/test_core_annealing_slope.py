"""Tests for the simulated-annealing optimizer and the slope metric."""

import numpy as np
import pytest

from repro.core import (
    AnnealingSchedule,
    NormalizedCurves,
    analyze_slopes,
    anneal,
    slopes,
)


class TestAnnealingSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(iterations=0)
        with pytest.raises(ValueError):
            AnnealingSchedule(t0=0.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(cooling=1.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(restarts=0)


class TestAnneal:
    def test_finds_minimum_of_discrete_parabola(self):
        """Minimize (x-17)^2 over integers with +-1 moves."""
        rng = np.random.default_rng(0)
        result = anneal(
            initial=0,
            objective=lambda x: (x - 17) ** 2,
            neighbor=lambda x, r: x + (1 if r.random() < 0.5 else -1),
            rng=rng,
            schedule=AnnealingSchedule(iterations=400, t0=50.0, cooling=0.99),
        )
        assert abs(result.best - 17) <= 1
        assert result.best_value <= 1

    def test_escapes_local_minimum(self):
        """A two-well function: local min at 0 (value 1), global at 10
        (value 0), with a barrier between.  High initial temperature
        must let the chain cross."""
        def f(x):
            if x == 6:
                return 0.0
            if abs(x) <= 1:
                return 1.0 + abs(x)
            return 3.0  # barrier region

        rng = np.random.default_rng(3)
        result = anneal(
            initial=0,
            objective=f,
            neighbor=lambda x, r: x + (1 if r.random() < 0.5 else -1),
            rng=rng,
            schedule=AnnealingSchedule(
                iterations=400, t0=10.0, cooling=0.995, restarts=3
            ),
        )
        assert result.best == 6

    def test_trace_is_monotone_nonincreasing(self):
        rng = np.random.default_rng(1)
        result = anneal(
            initial=5,
            objective=lambda x: abs(x),
            neighbor=lambda x, r: x + (1 if r.random() < 0.5 else -1),
            rng=rng,
            schedule=AnnealingSchedule(iterations=60, t0=2.0),
        )
        assert all(
            result.trace[i + 1] <= result.trace[i] for i in range(len(result.trace) - 1)
        )

    def test_evaluations_counted(self):
        rng = np.random.default_rng(2)
        calls = []

        def obj(x):
            calls.append(x)
            return float(x * x)

        result = anneal(
            initial=1,
            objective=obj,
            neighbor=lambda x, r: x + 1,
            rng=rng,
            schedule=AnnealingSchedule(iterations=10),
        )
        assert result.evaluations == len(calls) == 11  # initial + 10 moves

    def test_restarts_search_more(self):
        rng = np.random.default_rng(4)
        result = anneal(
            initial=0,
            objective=lambda x: (x - 3) ** 2,
            neighbor=lambda x, r: x + (1 if r.random() < 0.5 else -1),
            rng=rng,
            schedule=AnnealingSchedule(iterations=20, restarts=3),
        )
        assert result.evaluations == 1 + 3 * 20

    def test_deterministic_for_seed(self):
        def run(seed):
            return anneal(
                initial=0,
                objective=lambda x: (x - 9) ** 2,
                neighbor=lambda x, r: x + (1 if r.random() < 0.5 else -1),
                rng=np.random.default_rng(seed),
                schedule=AnnealingSchedule(iterations=100, t0=10.0),
            ).best

        assert run(7) == run(7)


class TestSlopes:
    def test_finite_differences(self):
        assert slopes([1, 2, 3], [1.0, 3.0, 7.0]) == [2.0, 4.0]

    def test_nonuniform_spacing(self):
        assert slopes([1, 3], [0.0, 4.0]) == [2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            slopes([1], [1.0])
        with pytest.raises(ValueError):
            slopes([1, 2], [1.0])
        with pytest.raises(ValueError):
            slopes([2, 1], [1.0, 2.0])


class TestAnalyzeSlopes:
    def curves(self, f, g):
        scales = tuple(range(1, len(f) + 1))
        return NormalizedCurves(scales=scales, f=tuple(f), g=tuple(g), h=tuple(1.0 for _ in f))

    def test_scalable_when_overhead_tracks_work(self):
        a = analyze_slopes(self.curves(f=[1, 2, 3], g=[1, 1.5, 2.0]))
        assert a.scalable == (True, True)
        assert a.scalable_through == 3

    def test_unscalable_when_overhead_outgrows(self):
        a = analyze_slopes(self.curves(f=[1, 2, 3], g=[1, 4, 9]))
        assert a.scalable == (False, False)
        assert a.scalable_through == 1

    def test_partial_scalability(self):
        a = analyze_slopes(self.curves(f=[1, 2, 3, 4], g=[1, 1.5, 2.0, 8.0]))
        assert a.scalable == (True, True, False)
        assert a.scalable_through == 3

    def test_improving_detects_decreasing_slope(self):
        # g slopes: 2, 1, 0.5 -> improving at both interior checks
        a = analyze_slopes(self.curves(f=[1, 3, 5, 7], g=[1, 3, 4, 4.5]))
        assert a.improving == (True, True)

    def test_mean_g_slope(self):
        a = analyze_slopes(self.curves(f=[1, 2, 3], g=[1, 2, 5]))
        assert a.mean_g_slope == pytest.approx((1.0 + 3.0) / 2)
