"""A genuinely end-to-end Study run on a micro profile.

Everything the benchmark harness does — case construction, enabler
tuning with presweep + annealing, normalization, slope analysis, figure
assembly, summary — exercised on a profile small enough for the unit
suite (two RMSs, two scales, seconds of wall clock).
"""

import pytest

from repro.experiments import Study
from repro.experiments.config import ScaleProfile
from repro.experiments.reporting import figure_report, write_csv
from repro.experiments.summary import study_report, summarize_case

MICRO = ScaleProfile(
    name="micro",
    base_resources=8,
    base_schedulers=4,
    fixed_resources=8,
    fixed_schedulers=4,
    base_rate_per_resource=0.00028,
    horizon=3000.0,
    drain=20000.0,
    scales=(1, 2),
    sa_iterations=3,
)


@pytest.mark.slow
class TestMicroStudy:
    @pytest.fixture(scope="class")
    def fig(self):
        study = Study(profile=MICRO, rms=["CENTRAL", "LOWEST"], seed=5)
        return study.figure(2)

    def test_series_shapes(self, fig):
        assert set(fig.series) == {"CENTRAL", "LOWEST"}
        for s in fig.series.values():
            assert s.scales == (1, 2)
            assert len(s.metrics) == 2
            assert s.g_norm[0] == 1.0

    def test_overhead_grows_with_scale(self, fig):
        for name, s in fig.series.items():
            assert s.G[1] > 0

    def test_report_and_csv(self, fig, tmp_path):
        out = figure_report(fig, "G")
        assert "CENTRAL" in out and "LOWEST" in out
        path = tmp_path / "micro.csv"
        write_csv(fig, str(path))
        assert path.read_text().startswith("rms,")

    def test_summary_over_real_series(self, fig):
        cs = summarize_case("micro case 1", fig.series)
        assert set(cs.ranking) == {"CENTRAL", "LOWEST"}
        report = study_report([cs])
        assert "micro case 1" in report

    def test_unknown_profile_still_rejected(self):
        with pytest.raises(KeyError):
            Study(profile="nope")

    def test_profile_instance_accepted(self):
        s = Study(profile=MICRO)
        assert s.profile.name == "micro"
        assert s.sa_iterations == 3
