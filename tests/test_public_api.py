"""Public-API surface tests: imports, __all__ hygiene, docstrings.

A downstream user's first contact is ``import repro`` and tab
completion; every name a package advertises must exist, and every
public item must carry documentation (deliverable (e)).
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.topology",
    "repro.network",
    "repro.grid",
    "repro.workload",
    "repro.rms",
    "repro.faults",
    "repro.experiments",
    "repro.experiments.parallel",
    "repro.fabric",
    "repro.telemetry",
]

MODULES = PACKAGES + [
    "repro.api",
    "repro.envknobs",
    "repro.core.annealing",
    "repro.core.efficiency",
    "repro.core.isoefficiency",
    "repro.core.ledger",
    "repro.core.models",
    "repro.core.procedure",
    "repro.core.scaling",
    "repro.core.slope",
    "repro.core.tuner",
    "repro.experiments.cases",
    "repro.experiments.cli",
    "repro.experiments.cliargs",
    "repro.experiments.config",
    "repro.experiments.faultstudy",
    "repro.experiments.seriesstudy",
    "repro.experiments.tabulate",
    "repro.experiments.watch",
    "repro.faults.injector",
    "repro.faults.plan",
    "repro.experiments.parallel.cache",
    "repro.experiments.parallel.engine",
    "repro.experiments.parallel.hashing",
    "repro.experiments.parallel.manifest",
    "repro.experiments.replication",
    "repro.experiments.reporting",
    "repro.experiments.reproduce",
    "repro.experiments.runner",
    "repro.experiments.spec",
    "repro.experiments.summary",
    "repro.fabric.client",
    "repro.fabric.coordinator",
    "repro.fabric.failure",
    "repro.fabric.leases",
    "repro.fabric.protocol",
    "repro.fabric.worker",
    "repro.grid.costs",
    "repro.grid.estimator",
    "repro.grid.jobs",
    "repro.grid.middleware",
    "repro.grid.resource",
    "repro.grid.scheduler",
    "repro.grid.status",
    "repro.network.messages",
    "repro.network.routing",
    "repro.network.transport",
    "repro.rms.auction",
    "repro.rms.base",
    "repro.rms.central",
    "repro.rms.extra",
    "repro.rms.lowest",
    "repro.rms.registry",
    "repro.rms.reserve",
    "repro.rms.ri",
    "repro.rms.si",
    "repro.rms.superscheduler",
    "repro.rms.syi",
    "repro.sim.backend",
    "repro.sim.entity",
    "repro.sim.events",
    "repro.sim.fastkernel",
    "repro.sim.kernel",
    "repro.sim.monitor",
    "repro.sim.rng",
    "repro.sim.trace",
    "repro.telemetry.collectors",
    "repro.telemetry.profiler",
    "repro.telemetry.registry",
    "repro.telemetry.report",
    "repro.telemetry.spans",
    "repro.telemetry.timeseries",
    "repro.topology.generator",
    "repro.topology.graph",
    "repro.topology.grid_map",
    "repro.topology.paths",
    "repro.workload.arrivals",
    "repro.workload.dags",
    "repro.workload.generator",
    "repro.workload.runtimes",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for item in exported:
        assert hasattr(mod, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_and_functions_documented(name):
    mod = importlib.import_module(name)
    for item in getattr(mod, "__all__", []):
        obj = getattr(mod, item)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{name}.{item} lacks a docstring"


def test_version_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


#: the stable top-level surface — additions are deliberate API growth
#: (extend this list in the same change); removals/renames break
#: downstream users and fail here first.
TOP_LEVEL_API = [
    "ALL_RMS",
    "CostLedger",
    "FaultPlan",
    "RunMetrics",
    "ScalabilityProcedure",
    "SimulationConfig",
    "Study",
    "StudyResult",
    "StudySpec",
    "build_system",
    "get_rms",
    "rms_names",
    "run_simulation",
    "run_study",
    "spec_digest",
    "spec_from_jsonable",
    "spec_to_jsonable",
    "submit_study",
]


def test_top_level_reexports():
    """``import repro`` alone gives the documented entry points, and
    they are the same objects the subpackages define (no shadow copies)."""
    import repro
    from repro.api import StudyResult, run_study, submit_study
    from repro.core import CostLedger, ScalabilityProcedure
    from repro.experiments import RunMetrics, SimulationConfig, run_simulation
    from repro.experiments.spec import StudySpec, spec_digest
    from repro.faults import FaultPlan

    for name in TOP_LEVEL_API:
        assert hasattr(repro, name), f"repro.{name} missing"
        assert name in repro.__all__, f"repro.{name} not in __all__"
    assert repro.FaultPlan is FaultPlan
    assert repro.SimulationConfig is SimulationConfig
    assert repro.RunMetrics is RunMetrics
    assert repro.run_simulation is run_simulation
    assert repro.CostLedger is CostLedger
    assert repro.ScalabilityProcedure is ScalabilityProcedure
    assert repro.StudySpec is StudySpec
    assert repro.StudyResult is StudyResult
    assert repro.run_study is run_study
    assert repro.submit_study is submit_study
    assert repro.spec_digest is spec_digest


def test_top_level_surface_snapshot():
    """The advertised surface is exactly subpackages + TOP_LEVEL_API —
    any drift (addition or removal) must update this snapshot."""
    import repro

    subpackages = {
        "api", "core", "experiments", "fabric", "faults", "grid",
        "network", "rms", "sim", "telemetry", "topology", "workload",
    }
    assert set(repro.__all__) == subpackages | set(TOP_LEVEL_API)


def test_public_methods_documented_on_core_classes():
    """Spot-check deliverable (e) on the central public classes."""
    from repro.core import CostLedger, EnablerTuner, ScalabilityProcedure
    from repro.experiments import Study
    from repro.grid import Resource, SchedulerBase
    from repro.sim import Simulator

    for cls in (CostLedger, EnablerTuner, ScalabilityProcedure, Study, Simulator,
                Resource, SchedulerBase):
        assert inspect.getdoc(cls)
        for attr, member in vars(cls).items():
            if attr.startswith("_"):
                continue
            if inspect.isfunction(member):
                assert inspect.getdoc(member), f"{cls.__name__}.{attr} undocumented"
