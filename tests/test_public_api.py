"""Public-API surface tests: imports, __all__ hygiene, docstrings.

A downstream user's first contact is ``import repro`` and tab
completion; every name a package advertises must exist, and every
public item must carry documentation (deliverable (e)).
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.sim",
    "repro.topology",
    "repro.network",
    "repro.grid",
    "repro.workload",
    "repro.rms",
    "repro.experiments",
    "repro.experiments.parallel",
    "repro.telemetry",
]

MODULES = PACKAGES + [
    "repro.core.annealing",
    "repro.core.efficiency",
    "repro.core.isoefficiency",
    "repro.core.ledger",
    "repro.core.models",
    "repro.core.procedure",
    "repro.core.scaling",
    "repro.core.slope",
    "repro.core.tuner",
    "repro.experiments.cases",
    "repro.experiments.cli",
    "repro.experiments.config",
    "repro.experiments.parallel.cache",
    "repro.experiments.parallel.engine",
    "repro.experiments.parallel.hashing",
    "repro.experiments.parallel.manifest",
    "repro.experiments.replication",
    "repro.experiments.reporting",
    "repro.experiments.reproduce",
    "repro.experiments.runner",
    "repro.experiments.summary",
    "repro.grid.costs",
    "repro.grid.estimator",
    "repro.grid.jobs",
    "repro.grid.middleware",
    "repro.grid.resource",
    "repro.grid.scheduler",
    "repro.grid.status",
    "repro.network.messages",
    "repro.network.routing",
    "repro.network.transport",
    "repro.rms.auction",
    "repro.rms.base",
    "repro.rms.central",
    "repro.rms.extra",
    "repro.rms.lowest",
    "repro.rms.registry",
    "repro.rms.reserve",
    "repro.rms.ri",
    "repro.rms.si",
    "repro.rms.superscheduler",
    "repro.rms.syi",
    "repro.sim.entity",
    "repro.sim.events",
    "repro.sim.kernel",
    "repro.sim.monitor",
    "repro.sim.rng",
    "repro.sim.trace",
    "repro.telemetry.collectors",
    "repro.telemetry.profiler",
    "repro.telemetry.registry",
    "repro.telemetry.report",
    "repro.telemetry.spans",
    "repro.topology.generator",
    "repro.topology.graph",
    "repro.topology.grid_map",
    "repro.topology.paths",
    "repro.workload.arrivals",
    "repro.workload.dags",
    "repro.workload.generator",
    "repro.workload.runtimes",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_imports_and_documented(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for item in exported:
        assert hasattr(mod, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_and_functions_documented(name):
    mod = importlib.import_module(name)
    for item in getattr(mod, "__all__", []):
        obj = getattr(mod, item)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert inspect.getdoc(obj), f"{name}.{item} lacks a docstring"


def test_version_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_public_methods_documented_on_core_classes():
    """Spot-check deliverable (e) on the central public classes."""
    from repro.core import CostLedger, EnablerTuner, ScalabilityProcedure
    from repro.experiments import Study
    from repro.grid import Resource, SchedulerBase
    from repro.sim import Simulator

    for cls in (CostLedger, EnablerTuner, ScalabilityProcedure, Study, Simulator,
                Resource, SchedulerBase):
        assert inspect.getdoc(cls)
        for attr, member in vars(cls).items():
            if attr.startswith("_"):
                continue
            if inspect.isfunction(member):
                assert inspect.getdoc(member), f"{cls.__name__}.{attr} undocumented"
