"""Tests for the telemetry layer: collectors, registry, spans, reports.

Covers the JSONL record schema, span nesting, the ambient-session
contract (``current()`` / ``activate``), the disabled-path no-ops, the
engine/cache/tuner instrumentation, and — the layer's central
invariant — that enabling telemetry leaves simulation results
byte-identical.
"""

import json
import logging
import math

import pytest

from repro.core.annealing import AnnealingSchedule
from repro.core.efficiency import EfficiencyRecord
from repro.core.scaling import Enabler, EnablerSpace
from repro.core.tuner import EnablerTuner
from repro.experiments import SimulationConfig, run_simulation
from repro.experiments.parallel import ExperimentEngine, RunCache, config_key, metrics_json_bytes
from repro.experiments.parallel import engine as engine_mod
from repro.experiments.runner import RunMetrics
from repro.telemetry import (
    NULL_TELEMETRY,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    SCHEMA_VERSION,
    Telemetry,
    activate,
    current,
)
from repro.telemetry.collectors import (
    NullCounter,
    NullGauge,
    NullHistogram,
    NullTally,
    snapshot_collector,
)
from repro.telemetry.report import (
    load_run,
    resolve_run_dir,
    spans_report,
    summary_report,
    tuner_report,
)
from repro.telemetry.spans import SPANS_FILENAME, jsonable_attrs


def read_records(run_dir):
    """All JSONL records of a closed session, in file order."""
    out = []
    for line in (run_dir / SPANS_FILENAME).read_text().splitlines():
        if line.strip():
            out.append(json.loads(line))
    return out


# ---------------------------------------------------------------------------
# Collectors
# ---------------------------------------------------------------------------

class TestGauge:
    def test_set_and_shift(self):
        g = Gauge("workers")
        g.set(4)
        g.increment()
        g.decrement(2.0)
        assert g.value == 3.0
        assert float(g) == 3.0

    def test_snapshot(self):
        g = Gauge("depth", 7.0)
        assert snapshot_collector(g) == {"type": "gauge", "value": 7.0}


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("t", buckets=(1.0, 2.0, 5.0))
        for x in (0.5, 1.5, 1.7, 4.0, 99.0):
            h.record(x)
        assert h.counts == [1, 2, 1]
        assert h.overflow == 1
        assert h.count == 5
        assert h.max == 99.0

    def test_quantile(self):
        h = Histogram("t", buckets=(1.0, 2.0, 5.0))
        for x in (0.5, 1.5, 1.7, 4.0):
            h.record(x)
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.75) == 2.0
        assert h.quantile(1.0) == 5.0

    def test_quantile_empty_and_overflow(self):
        h = Histogram("t", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))
        h.record(10.0)
        assert h.quantile(1.0) == math.inf
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t", buckets=())

    def test_snapshot_shape(self):
        h = Histogram("t", buckets=(1.0, 2.0))
        h.record(0.5)
        snap = snapshot_collector(h)
        assert snap["type"] == "histogram"
        assert snap["buckets"] == [[1.0, 1], [2.0, 0]]
        assert snap["count"] == 1


class TestNullCollectors:
    def test_all_mutators_are_no_ops(self):
        NullCounter().increment()
        NullTally().record(1.0)
        g = NullGauge()
        g.set(5.0)
        g.increment()
        g.decrement()
        h = NullHistogram()
        h.record(1.0)
        assert g.value == 0.0
        assert h.count == 0
        assert math.isnan(h.quantile(0.5))


# ---------------------------------------------------------------------------
# Registry and scopes
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_collectors_shared_by_name(self):
        reg = MetricsRegistry()
        reg.counter("runs").increment()
        reg.counter("runs").increment()
        assert reg.counter("runs").value == 2
        assert len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.tally("x")

    def test_register_adopts_and_rejects_duplicates(self):
        from repro.sim.monitor import TimeWeighted

        reg = MetricsRegistry()
        tw = TimeWeighted("queue")
        assert reg.register("queue", tw) is tw
        assert reg.register("queue", tw) is tw  # same object ok
        with pytest.raises(ValueError):
            reg.register("queue", TimeWeighted("queue"))

    def test_snapshot_covers_all_types(self):
        reg = MetricsRegistry()
        reg.counter("c").increment(3)
        reg.gauge("g").set(2.0)
        reg.tally("t").record(4.0)
        reg.histogram("h").record(0.01)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3}
        assert snap["g"]["value"] == 2.0
        assert snap["t"]["count"] == 1
        assert snap["h"]["count"] == 1
        assert reg.names() == ["c", "g", "h", "t"]
        assert "c" in reg and reg.get("c") is not None

    def test_disabled_registry_hands_out_nulls(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").increment()
        reg.gauge("g").set(9.0)
        reg.tally("t").record(1.0)
        reg.histogram("h").record(1.0)
        assert len(reg) == 0
        assert reg.snapshot() == {}
        # register is a pass-through, nothing adopted
        obj = object()
        assert reg.register("x", obj) is obj
        assert "x" not in reg


class TestMetricsScope:
    def test_prefixing_and_nesting(self):
        reg = MetricsRegistry()
        reg.scope("engine").counter("runs").increment()
        assert reg.counter("engine.runs").value == 1
        reg.scope("a").scope("b").gauge("g").set(1.0)
        assert reg.gauge("a.b.g").value == 1.0

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().scope("")


# ---------------------------------------------------------------------------
# Spans and the JSONL schema
# ---------------------------------------------------------------------------

class TestJsonableAttrs:
    def test_scalars_containers_and_fallback(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        out = jsonable_attrs(
            {"a": 1, "b": (1, 2), "c": {"k": Odd()}, "d": None, "e": True}
        )
        assert out == {"a": 1, "b": [1, 2], "c": {"k": "<odd>"}, "d": None, "e": True}
        assert json.dumps(out)  # fully serializable

    def test_numpy_scalars_collapse(self):
        np = pytest.importorskip("numpy")
        out = jsonable_attrs({"x": np.float64(1.5), "n": np.int64(3)})
        assert out == {"x": 1.5, "n": 3}
        assert isinstance(out["x"], float) and isinstance(out["n"], int)


class TestTelemetrySession:
    def test_meta_is_first_record(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            pass
        meta = read_records(tmp_path / "run")[0]
        assert meta["type"] == "meta"
        assert meta["schema"] == SCHEMA_VERSION
        assert isinstance(meta["pid"], int)
        assert isinstance(meta["argv"], list)

    def test_span_record_schema(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            with session.span("work", rms="LOWEST") as span:
                span.set(items=3)
        (rec,) = [r for r in read_records(tmp_path / "run") if r["type"] == "span"]
        assert rec["name"] == "work"
        assert rec["parent"] is None
        assert rec["attrs"] == {"rms": "LOWEST", "items": 3}
        assert rec["t1"] >= rec["t0"] >= 0.0
        assert rec["dur"] == pytest.approx(rec["t1"] - rec["t0"], abs=1e-5)

    def test_nesting_links_parents(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            with session.span("outer") as outer:
                with session.span("inner"):
                    session.event("tick", n=1)
        records = read_records(tmp_path / "run")
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        (event,) = [r for r in records if r["type"] == "event"]
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert event["parent"] == spans["inner"]["id"]
        # inner closes first, so it appears first in the file
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names == ["inner", "outer"]

    def test_event_outside_any_span(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            session.event("lone", x=1.0)
        (event,) = [r for r in read_records(tmp_path / "run") if r["type"] == "event"]
        assert event["parent"] is None
        assert event["attrs"] == {"x": 1.0}
        assert event["t"] >= 0.0

    def test_exception_annotates_span(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            with pytest.raises(RuntimeError):
                with session.span("doomed"):
                    raise RuntimeError("boom")
        (rec,) = [r for r in read_records(tmp_path / "run") if r["type"] == "span"]
        assert rec["attrs"]["error"] == "RuntimeError"

    def test_close_writes_metrics_and_is_idempotent(self, tmp_path):
        session = Telemetry(tmp_path / "run")
        session.metrics.counter("jobs").increment(5)
        session.close()
        session.close()  # no error, nothing appended
        records = read_records(tmp_path / "run")
        assert records[-1]["type"] == "metrics"
        assert records[-1]["snapshot"]["jobs"]["value"] == 5
        mirrored = json.loads((tmp_path / "run" / "metrics.json").read_text())
        assert mirrored == records[-1]["snapshot"]
        # a closed session silently drops further records
        session.event("late")
        assert read_records(tmp_path / "run") == records


class TestSpanLifecycleUnderExceptions:
    """The JSONL file must never end mid-record, whatever propagates."""

    @staticmethod
    def assert_file_intact(run_dir):
        """Every line (including the last) is one complete JSON record."""
        text = (run_dir / SPANS_FILENAME).read_text()
        assert text.endswith("\n"), "file must end on a record boundary"
        for line in text.splitlines():
            json.loads(line)  # raises if any record is truncated

    def test_exception_through_nested_spans_closes_all(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            with pytest.raises(RuntimeError):
                with session.span("outer"):
                    with session.span("middle"):
                        session.event("tick")
                        with session.span("inner"):
                            raise RuntimeError("boom")
        self.assert_file_intact(tmp_path / "run")
        spans = {
            r["name"]: r
            for r in read_records(tmp_path / "run")
            if r["type"] == "span"
        }
        assert set(spans) == {"outer", "middle", "inner"}
        # every span on the propagation path records the error and a
        # well-formed closing time
        for rec in spans.values():
            assert rec["attrs"]["error"] == "RuntimeError"
            assert rec["t1"] >= rec["t0"]
        assert spans["inner"]["parent"] == spans["middle"]["id"]

    def test_keyboard_interrupt_still_writes_span(self, tmp_path):
        session = Telemetry(tmp_path / "run")
        with pytest.raises(KeyboardInterrupt):
            with session.span("cancelled-work"):
                raise KeyboardInterrupt()
        session.close()
        self.assert_file_intact(tmp_path / "run")
        (rec,) = [
            r for r in read_records(tmp_path / "run") if r["type"] == "span"
        ]
        assert rec["name"] == "cancelled-work"
        assert rec["attrs"]["error"] == "KeyboardInterrupt"

    def test_exception_then_more_spans_keeps_file_parseable(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            for i in range(20):
                try:
                    with session.span("flaky", i=i):
                        if i % 3 == 0:
                            raise ValueError("intermittent")
                except ValueError:
                    pass
        self.assert_file_intact(tmp_path / "run")
        spans = [r for r in read_records(tmp_path / "run") if r["type"] == "span"]
        assert len(spans) == 20
        assert sum("error" in s["attrs"] for s in spans) == 7

    def test_exception_before_close_still_snapshots_metrics(self, tmp_path):
        session = Telemetry(tmp_path / "run")
        try:
            with session.span("doomed"):
                session.metrics.counter("partial").increment()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        finally:
            session.close()
        self.assert_file_intact(tmp_path / "run")
        records = read_records(tmp_path / "run")
        assert records[-1]["type"] == "metrics"
        assert records[-1]["snapshot"]["partial"]["value"] == 1


class TestAmbientSession:
    def test_default_is_null(self):
        assert current() is NULL_TELEMETRY
        assert not current().enabled

    def test_activate_swaps_and_restores(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            with activate(session):
                assert current() is session
                assert current().enabled
            assert current() is NULL_TELEMETRY

    def test_activate_restores_on_error(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            with pytest.raises(ValueError):
                with activate(session):
                    raise ValueError
        assert current() is NULL_TELEMETRY


class TestDisabledNoOps:
    def test_null_session_is_inert(self):
        null = NullTelemetry()
        with null.span("anything", x=1) as span:
            span.set(y=2)
        null.event("whatever")
        null.close()
        assert null.directory is None
        assert null.metrics.snapshot() == {}

    def test_shared_null_span_instance(self):
        null = NullTelemetry()
        assert null.span("a") is null.span("b")


# ---------------------------------------------------------------------------
# The determinism invariant: telemetry must not perturb results
# ---------------------------------------------------------------------------

def _small_config(rms="LOWEST"):
    return SimulationConfig(
        rms=rms,
        n_schedulers=3,
        n_resources=9,
        workload_rate=0.004,
        horizon=2000.0,
        drain=3000.0,
        update_interval=20.0,
        seed=11,
    )


class TestDeterminismWithTelemetry:
    def test_results_byte_identical_on_vs_off(self, tmp_path):
        baseline = run_simulation(_small_config())
        with Telemetry(tmp_path / "run") as session, activate(session):
            traced = run_simulation(_small_config())
        assert metrics_json_bytes(traced) == metrics_json_bytes(baseline)

    def test_sim_run_span_recorded(self, tmp_path):
        with Telemetry(tmp_path / "run") as session:
            with activate(session):
                run_simulation(_small_config())
        records = read_records(tmp_path / "run")
        (span,) = [r for r in records if r["type"] == "span" and r["name"] == "sim.run"]
        assert span["attrs"]["rms"] == "LOWEST"
        assert span["attrs"]["events"] > 0
        assert span["attrs"]["events_per_sec"] > 0
        snapshot = records[-1]["snapshot"]
        assert snapshot["sim.runs"]["value"] == 1
        assert snapshot["sim.events"]["value"] == span["attrs"]["events"]

    def test_tuned_procedure_identical_on_vs_off(self, tmp_path):
        # the annealer's observer must not consume RNG draws
        space = EnablerSpace([Enabler("knob", (1.0, 2.0, 4.0), default_index=1)])

        def make_tuner():
            def simulate(k, settings):
                return _FakeObservation(
                    G=100.0 / settings["knob"] + 5.0 * k, e=0.40, success=0.95
                )

            return EnablerTuner(
                simulate,
                space,
                schedule=AnnealingSchedule(iterations=12, t0=0.5),
                seed=3,
            )

        plain = make_tuner().tune(2.0, e0=0.40)
        with Telemetry(tmp_path / "run") as session, activate(session):
            traced = make_tuner().tune(2.0, e0=0.40)
        assert traced == plain


# ---------------------------------------------------------------------------
# Engine and cache instrumentation
# ---------------------------------------------------------------------------

def _cfg(**kw):
    kw.setdefault("rms", "LOWEST")
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 1500.0)
    kw.setdefault("drain", 2500.0)
    return SimulationConfig(**kw)


def _stub_metrics(seed=0):
    return RunMetrics(
        record=EfficiencyRecord(F=200.0 + seed, G=100.0, H=2.0),
        jobs_submitted=10,
        jobs_completed=10,
        jobs_successful=9,
        mean_response=50.0,
        throughput=0.009,
        messages_sent=40,
        scheduler_busy=100.0,
        horizon=1500.0,
    )


@pytest.fixture
def counting_runner(monkeypatch):
    calls = []

    def fake_run(config):
        calls.append(config)
        return _stub_metrics(config.seed)

    monkeypatch.setattr(engine_mod, "run_simulation", fake_run)
    return calls


class TestEngineInstrumentation:
    def test_batch_span_attrs(self, tmp_path, counting_runner):
        cache = RunCache(tmp_path / "cache")
        engine = ExperimentEngine(jobs=1, cache=cache)
        with Telemetry(tmp_path / "run") as session, activate(session):
            engine.run_many([_cfg(seed=1), _cfg(seed=1), _cfg(seed=2)])
            engine.run_many([_cfg(seed=1)])  # all hits
        records = read_records(tmp_path / "run")
        batches = [r for r in records if r["type"] == "span" and r["name"] == "engine.batch"]
        assert len(batches) == 2
        first, second = batches
        assert first["attrs"]["size"] == 3
        assert first["attrs"]["unique"] == 2
        assert first["attrs"]["executed"] == 2
        assert second["attrs"]["cache_hits"] == 1
        assert second["attrs"]["executed"] == 0
        runs = [r for r in records if r["type"] == "event" and r["name"] == "engine.run"]
        assert len(runs) == 2  # one per executed config
        assert all(r["attrs"]["seconds"] >= 0.0 for r in runs)
        snapshot = records[-1]["snapshot"]
        assert snapshot["engine.batches"]["value"] == 2
        assert snapshot["engine.runs_requested"]["value"] == 4
        assert snapshot["engine.runs_executed"]["value"] == 2
        assert snapshot["engine.cache_hits"]["value"] == 1  # second batch's disk hit
        assert snapshot["engine.run_seconds"]["count"] == 2

    def test_corrupt_entry_counted_and_logged(self, tmp_path, counting_runner, caplog):
        cache = RunCache(tmp_path / "cache")
        ExperimentEngine(jobs=1, cache=cache).run(_cfg(seed=7))
        path = cache.path_for(config_key(_cfg(seed=7)))
        path.write_text("{ not json")
        cache2 = RunCache(tmp_path / "cache")
        with Telemetry(tmp_path / "run") as session, activate(session):
            with caplog.at_level(logging.WARNING, logger="repro.experiments.parallel.cache"):
                ExperimentEngine(jobs=1, cache=cache2).run(_cfg(seed=7))
        assert cache2.repairs == 1
        assert cache2.errors == 1
        assert any("corrupt run-cache entry" in r.message for r in caplog.records)
        records = read_records(tmp_path / "run")
        (corrupt,) = [r for r in records if r["type"] == "event" and r["name"] == "cache.corrupt"]
        assert corrupt["attrs"]["key"] == config_key(_cfg(seed=7))
        assert records[-1]["snapshot"]["cache.repairs"]["value"] == 1
        (batch,) = [r for r in records if r["type"] == "span" and r["name"] == "engine.batch"]
        assert batch["attrs"]["cache_repairs"] == 1


# ---------------------------------------------------------------------------
# Tuner convergence trace
# ---------------------------------------------------------------------------

class _FakeObservation:
    def __init__(self, G, e, success):
        self.record = EfficiencyRecord(F=1000.0, G=G, H=10.0)
        self.success_rate = success


def _fake_simulate(k, settings):
    # overhead falls with the knob; efficiency/success healthy everywhere
    return _FakeObservation(G=100.0 / settings["knob"] + 5.0 * k, e=0.4, success=0.95)


class TestTunerTrace:
    def _tune(self, tmp_path):
        space = EnablerSpace([Enabler("knob", (1.0, 2.0, 4.0), default_index=0)])
        tuner = EnablerTuner(
            _fake_simulate,
            space,
            schedule=AnnealingSchedule(iterations=10, t0=0.5),
            seed=5,
        )
        with Telemetry(tmp_path / "run") as session, activate(session):
            with session.span("study.measure", case=1, rms="LOWEST", profile="ci"):
                point = tuner.tune(2.0, e0=tuner._observe(2.0, space.default_settings()).record.efficiency)
        return point, read_records(tmp_path / "run")

    def test_iteration_events_form_full_trace(self, tmp_path):
        point, records = self._tune(tmp_path)
        iters = [r for r in records if r["type"] == "event" and r["name"] == "tuner.iteration"]
        assert len(iters) == 10  # one per annealing move
        for e in iters:
            attrs = e["attrs"]
            assert attrs["scale"] == 2.0
            assert set(attrs) >= {
                "iteration", "temperature", "settings", "objective",
                "accepted", "best", "efficiency", "G", "success",
            }
        # search span wraps presweep + result events
        (search,) = [r for r in records if r["type"] == "span" and r["name"] == "tuner.search"]
        assert search["attrs"]["evaluations"] >= 1
        (result,) = [r for r in records if r["type"] == "event" and r["name"] == "tuner.result"]
        assert result["attrs"]["settings"] == point.settings
        (presweep,) = [r for r in records if r["type"] == "event" and r["name"] == "tuner.presweep"]
        assert presweep["attrs"]["enabler"] == "knob"

    def test_tuner_report_renders_trace(self, tmp_path):
        _, records = self._tune(tmp_path)
        run_dir = tmp_path / "run"
        text = tuner_report(load_run(run_dir))
        assert "LOWEST @ k=2" in text
        assert "iter" in text and "accepted" in text
        assert "-> y(k): knob=" in text
        # filters
        assert "no tuner iterations match" in tuner_report(load_run(run_dir), rms="CENTRAL")
        assert "LOWEST" in tuner_report(load_run(run_dir), scale=2.0)

    def test_no_observer_overhead_when_disabled(self):
        space = EnablerSpace([Enabler("knob", (1.0, 2.0), default_index=0)])
        tuner = EnablerTuner(_fake_simulate, space, seed=1)
        assert tuner._observer_for(1.0) is None


# ---------------------------------------------------------------------------
# Sampling profiler
# ---------------------------------------------------------------------------

class TestSamplingProfiler:
    def test_samples_the_calling_thread(self):
        from repro.telemetry.profiler import SamplingProfiler

        prof = SamplingProfiler(interval=0.001)
        prof.start()
        prof.start()  # idempotent
        deadline = 0
        while prof.samples < 3 and deadline < 200_000:
            deadline += 1  # busy work for the sampler to land in
        top = prof.stop()
        assert prof.samples >= 1
        assert top and all(isinstance(n, int) and n >= 1 for _, n in top)
        assert prof.stop() == []  # stopped: nothing more to report

    def test_env_interval_parsing(self, monkeypatch):
        from repro.telemetry.profiler import DEFAULT_INTERVAL, _env_interval

        monkeypatch.setenv("REPRO_TELEMETRY_PROFILE", "50")
        assert _env_interval() == 0.05
        monkeypatch.setenv("REPRO_TELEMETRY_PROFILE", "1")
        assert _env_interval() == DEFAULT_INTERVAL
        monkeypatch.setenv("REPRO_TELEMETRY_PROFILE", "yes")
        assert _env_interval() == DEFAULT_INTERVAL

    def test_session_emits_profile_event(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_PROFILE", "2")
        session = Telemetry(tmp_path / "run")
        spin = 0
        while spin < 500_000:
            spin += 1
        session.close()
        events = [r for r in read_records(tmp_path / "run")
                  if r["type"] == "event" and r["name"] == "profile.samples"]
        # the sampler may legally land zero samples on a fast machine,
        # in which case no event is written — but when one is, it must
        # carry (location, count) pairs
        for e in events:
            assert all(len(pair) == 2 for pair in e["attrs"]["top"])


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

class TestReportLoading:
    def _write_run(self, tmp_path, lines):
        run = tmp_path / "run"
        run.mkdir()
        (run / SPANS_FILENAME).write_text("\n".join(lines) + "\n")
        return run

    def test_load_skips_garbage_lines(self, tmp_path):
        run = self._write_run(
            tmp_path,
            [
                json.dumps({"type": "meta", "schema": 1, "pid": 1}),
                "{ truncated mid-wri",
                json.dumps({"type": "event", "name": "x", "id": 2, "parent": None,
                            "pid": 1, "t": 0.5, "attrs": {}}),
            ],
        )
        loaded = load_run(run)
        assert loaded.meta["schema"] == 1
        assert len(loaded.events) == 1
        assert loaded.duration == 0.5

    def test_resolve_direct_and_newest_child(self, tmp_path):
        old = self._write_run(tmp_path, [json.dumps({"type": "meta"})])
        assert resolve_run_dir(old) == old
        # a root containing runs resolves to the newest child
        import os
        import time as _time

        newer = tmp_path / "newer"
        newer.mkdir()
        (newer / SPANS_FILENAME).write_text(json.dumps({"type": "meta"}) + "\n")
        past = _time.time() - 100
        os.utime(old / SPANS_FILENAME, (past, past))
        assert resolve_run_dir(tmp_path) == newer

    def test_resolve_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_run_dir(tmp_path / "nope")

    def test_ancestor_attr_walks_parent_chain(self, tmp_path):
        run = self._write_run(
            tmp_path,
            [
                json.dumps({"type": "span", "name": "outer", "id": 1, "parent": None,
                            "pid": 1, "t0": 0, "t1": 1, "dur": 1, "attrs": {"rms": "S-I"}}),
                json.dumps({"type": "span", "name": "inner", "id": 2, "parent": 1,
                            "pid": 1, "t0": 0, "t1": 1, "dur": 1, "attrs": {}}),
                json.dumps({"type": "event", "name": "e", "id": 3, "parent": 2,
                            "pid": 1, "t": 0.1, "attrs": {}}),
            ],
        )
        loaded = load_run(run)
        (event,) = loaded.events
        assert loaded.ancestor_attr(event, "rms") == "S-I"
        assert loaded.ancestor_attr(event, "missing") is None


class TestRenderedReports:
    @pytest.fixture
    def run(self, tmp_path, counting_runner):
        cache = RunCache(tmp_path / "cache")
        engine = ExperimentEngine(jobs=1, cache=cache)
        with Telemetry(tmp_path / "run") as session, activate(session):
            engine.run_many([_cfg(seed=1), _cfg(seed=2)])
            session.event("procedure.scale", name="LOWEST", scale=1.0, F=100.0,
                          G=10.0, H=1.0, efficiency=0.4, success=0.95, feasible=True)
        return load_run(tmp_path / "run")

    def test_summary_report(self, run):
        text = summary_report(run)
        assert "engine: 1 batches, 2 runs requested" in text
        assert "time by span" in text
        assert "per-scale ledger snapshots" in text
        assert "engine.runs_executed" in text

    def test_spans_report(self, run):
        text = spans_report(run)
        assert "engine.batch" in text
        assert spans_report(run, name="no.such.span") == "(no spans recorded)"
        only = spans_report(run, name="engine.batch")
        assert "engine.batch" in only
