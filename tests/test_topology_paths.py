"""Tests for shortest-path algorithms, cross-checked against networkx."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RngHub
from repro.topology import (
    Topology,
    TopologyParams,
    generate_topology,
    multi_source_nearest,
    single_source,
)


def line(n=4):
    """0 -1- 1 -2- 2 -3- 3 ... latencies increasing."""
    t = Topology(n)
    for i in range(n - 1):
        t.add_link(i, i + 1, float(i + 1), 10.0 * (i + 1))
    return t


class TestSingleSource:
    def test_line_distances(self):
        info = single_source(line(4), 0)
        assert [d for d, _, _ in info] == [0.0, 1.0, 3.0, 6.0]
        assert [h for _, h, _ in info] == [0, 1, 2, 3]

    def test_transmission_factor_accumulates(self):
        info = single_source(line(3), 0)
        assert info[2][2] == pytest.approx(1 / 10.0 + 1 / 20.0)

    def test_source_is_zero(self):
        info = single_source(line(3), 1)
        assert info[1] == (0.0, 0, 0.0)

    def test_unreachable_marked(self):
        t = Topology(3)
        t.add_link(0, 1, 1.0, 1.0)
        info = single_source(t, 0)
        assert math.isinf(info[2][0])
        assert info[2][1] == -1

    def test_prefers_low_latency_path(self):
        t = Topology(3)
        t.add_link(0, 2, 10.0, 1000.0)   # direct but slow
        t.add_link(0, 1, 1.0, 1.0)
        t.add_link(1, 2, 1.0, 1.0)
        info = single_source(t, 0)
        assert info[2][0] == 2.0
        assert info[2][1] == 2  # took the 2-hop path

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_matches_networkx(self, n, seed):
        topo = generate_topology(
            TopologyParams(n_nodes=n), RngHub(seed).stream("topology")
        )
        g = topo.to_networkx()
        ref = nx.single_source_dijkstra_path_length(g, 0, weight="latency")
        ours = single_source(topo, 0)
        for v in range(n):
            assert ours[v][0] == pytest.approx(ref[v])


class TestMultiSource:
    def test_nearest_assignment_on_line(self):
        # line latencies: 0-1:1, 1-2:2, 2-3:3 ; sources {0, 3}
        dist, nearest = multi_source_nearest(line(4), [0, 3])
        assert nearest[0] == 0 and nearest[3] == 3
        assert nearest[1] == 0          # 1 is at distance 1 from 0, 5 from 3
        assert nearest[2] == 3          # 2 is at distance 3 from both; ties
        # Verify distances are the min over sources.
        assert dist[1] == 1.0
        assert dist[2] == 3.0

    def test_single_source_degenerates(self):
        dist, nearest = multi_source_nearest(line(4), [0])
        assert all(s == 0 for s in nearest)
        assert dist == [0.0, 1.0, 3.0, 6.0]

    def test_invalid_source_rejected(self):
        with pytest.raises(ValueError):
            multi_source_nearest(line(3), [7])

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=50),
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=4),
    )
    def test_nearest_really_is_nearest(self, n, seed, k):
        topo = generate_topology(
            TopologyParams(n_nodes=n), RngHub(seed).stream("topology")
        )
        sources = sorted(set(range(0, n, max(1, n // k))))[:k]
        dist, nearest = multi_source_nearest(topo, sources)
        per_source = {s: single_source(topo, s) for s in sources}
        for v in range(n):
            best = min(per_source[s][v][0] for s in sources)
            assert dist[v] == pytest.approx(best)
            assert per_source[nearest[v]][v][0] == pytest.approx(best)
