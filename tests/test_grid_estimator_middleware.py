"""Tests for Estimator forwarding and Middleware relaying."""

import pytest

from repro.core import Category
from repro.grid import Estimator
from repro.network import Message, MessageKind

from helpers import MiniGrid


class TestEstimator:
    def test_forwards_update_to_owning_scheduler(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=2)
        est = g.estimators[0]
        sched = g.schedulers[0]
        est.deliver(
            Message(
                MessageKind.STATUS_UPDATE,
                payload={"resource_id": 0, "cluster_id": 0, "load": 3},
            )
        )
        g.sim.run()
        assert est.forwarded == 1
        assert sched.table.load_of(0) == 3

    def test_colocated_forward_skips_network(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        sent_before = g.network.messages_sent
        g.estimators[0].deliver(
            Message(
                MessageKind.STATUS_UPDATE,
                payload={"resource_id": 0, "cluster_id": 0, "load": 1},
            )
        )
        g.sim.run()
        assert g.network.messages_sent == sent_before  # local handoff
        assert g.schedulers[0].table.load_of(0) == 1

    def test_remote_forward_uses_network(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=1)
        # Re-point estimator 0 at a different node so it is NOT co-located.
        est = Estimator(g.sim, "est_far", node=0, estimator_id=9, ledger=g.ledger, costs=g.costs)
        est.network = g.network
        est.schedulers = {0: g.schedulers[0]}
        sent_before = g.network.messages_sent
        est.deliver(
            Message(
                MessageKind.STATUS_UPDATE,
                payload={"resource_id": 0, "cluster_id": 0, "load": 2},
            )
        )
        g.sim.run()
        assert g.network.messages_sent == sent_before + 1
        assert g.schedulers[0].table.load_of(0) == 2

    def test_unknown_cluster_dropped(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        est = g.estimators[0]
        est.deliver(
            Message(
                MessageKind.STATUS_UPDATE,
                payload={"resource_id": 0, "cluster_id": 7, "load": 2},
            )
        )
        g.sim.run()
        assert est.forwarded == 0

    def test_wrong_kind_rejected(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        g.estimators[0].deliver(Message(MessageKind.POLL_REQUEST))
        with pytest.raises(ValueError):
            g.sim.run()

    def test_busy_time_charged_as_rms_overhead(self):
        g = MiniGrid(n_clusters=1, resources_per_cluster=1)
        before = g.ledger.total(Category.ESTIMATOR)
        g.estimators[0].deliver(
            Message(
                MessageKind.STATUS_UPDATE,
                payload={"resource_id": 0, "cluster_id": 0, "load": 1},
            )
        )
        g.sim.run()
        assert g.ledger.total(Category.ESTIMATOR) == pytest.approx(
            before + g.costs.estimator_proc
        )


class TestMiddleware:
    def test_relay_reaches_recipient(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=1, use_middleware=True)
        a, b = g.schedulers
        got = []
        b.on_poll_request = lambda msg: got.append(msg)
        inner = Message(MessageKind.POLL_REQUEST, payload={"x": 1})
        g.middleware.relay(inner, a, b)
        g.sim.run()
        assert got and got[0] is inner
        assert got[0].sender is a
        assert g.middleware.relayed == 1

    def test_relay_service_time_charged(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=1, use_middleware=True)
        a, b = g.schedulers
        b.on_poll_request = lambda msg: None
        g.middleware.relay(Message(MessageKind.POLL_REQUEST), a, b)
        g.sim.run()
        assert g.ledger.total(Category.MIDDLEWARE) == pytest.approx(
            g.costs.middleware_service
        )

    def test_relay_serializes_backlog(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=1, use_middleware=True)
        a, b = g.schedulers
        arrivals = []
        b.on_poll_request = lambda msg: arrivals.append(g.sim.now)
        for _ in range(5):
            g.middleware.relay(Message(MessageKind.POLL_REQUEST), a, b)
        g.sim.run()
        assert len(arrivals) == 5
        gaps = [arrivals[i + 1] - arrivals[i] for i in range(4)]
        # Single-server relay: consecutive deliveries at least one
        # service time apart.
        assert all(gap >= g.costs.middleware_service - 1e-9 for gap in gaps)

    def test_wrong_kind_rejected(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=1, use_middleware=True)
        g.middleware.deliver(Message(MessageKind.POLL_REQUEST))
        with pytest.raises(ValueError):
            g.sim.run()

    def test_scheduler_send_to_peer_uses_middleware_when_enabled(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=1, use_middleware=True)
        a, b = g.schedulers
        a.use_middleware = True
        got = []
        b.on_poll_request = lambda msg: got.append(msg)
        a.send_to_peer(Message(MessageKind.POLL_REQUEST), b)
        g.sim.run()
        assert g.middleware.relayed == 1
        assert len(got) == 1

    def test_scheduler_send_to_peer_direct_by_default(self):
        g = MiniGrid(n_clusters=2, resources_per_cluster=1, use_middleware=True)
        a, b = g.schedulers
        got = []
        b.on_poll_request = lambda msg: got.append(msg)
        a.send_to_peer(Message(MessageKind.POLL_REQUEST), b)
        g.sim.run()
        assert g.middleware.relayed == 0
        assert len(got) == 1
