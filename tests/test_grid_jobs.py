"""Tests for the Job lifecycle state machine."""

import pytest

from repro.grid import Job, JobState
from repro.workload import JobClass, JobSpec


def spec(
    job_id=0,
    arrival=100.0,
    execution=50.0,
    benefit=2.0,
    cluster=1,
    job_class=JobClass.LOCAL,
):
    return JobSpec(
        job_id=job_id,
        arrival_time=arrival,
        execution_time=execution,
        requested_time=execution * 1.5,
        benefit_factor=benefit,
        submit_cluster=cluster,
        job_class=job_class,
    )


class TestLifecycle:
    def test_initial_state(self):
        j = Job(spec())
        assert j.state == JobState.SUBMITTED
        assert j.response_time is None
        assert j.successful is None
        assert j.transfers == 0

    def test_local_flow(self):
        j = Job(spec())
        j.mark_placed(1)  # submit cluster
        j.mark_running(110.0)
        j.mark_completed(160.0)
        assert j.state == JobState.COMPLETED
        assert j.response_time == 60.0
        assert j.transfers == 0

    def test_success_within_benefit_bound(self):
        # U_b = 2.0 * 50 = 100
        j = Job(spec())
        j.mark_placed(1)
        j.mark_running(120.0)
        j.mark_completed(170.0)  # response 70 <= 100
        assert j.successful is True

    def test_failure_beyond_benefit_bound(self):
        j = Job(spec())
        j.mark_placed(1)
        j.mark_running(190.0)
        j.mark_completed(240.0)  # response 140 > 100
        assert j.successful is False

    def test_remote_placement_counts_transfer(self):
        j = Job(spec(cluster=1))
        j.mark_placed(3)
        assert j.transfers == 1

    def test_waiting_then_placed(self):
        j = Job(spec())
        j.mark_waiting()
        assert j.state == JobState.WAITING
        j.mark_placed(1)
        assert j.state == JobState.PLACED

    def test_illegal_transitions_raise(self):
        j = Job(spec())
        with pytest.raises(ValueError):
            j.mark_running(1.0)  # not placed yet
        j.mark_placed(1)
        with pytest.raises(ValueError):
            j.mark_completed(1.0)  # not running yet
        with pytest.raises(ValueError):
            j.mark_waiting()  # already placed
        j.mark_running(1.0)
        with pytest.raises(ValueError):
            j.mark_placed(2)  # already running

    def test_is_remote_class(self):
        assert not Job(spec()).is_remote_class
        assert Job(spec(job_class=JobClass.REMOTE)).is_remote_class

    def test_benefit_bound_passthrough(self):
        j = Job(spec(execution=50.0, benefit=3.0))
        assert j.spec.benefit_bound == 150.0

    def test_repeated_same_cluster_placement_no_transfer(self):
        j = Job(spec(cluster=2))
        j.mark_placed(2)
        assert j.transfers == 0
