"""Unit tests for the time-resolved stream layer (repro.telemetry.timeseries).

Covers the pure pieces in isolation: plan validation and resolution,
bounded windowed accumulation (decimation invariants), the E(t) /
warmup / steady-state analysis helpers, and stream merging.  The
integration path (ledger hook, probe sampler, byte-identity) lives in
test_series_study.py.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.timeseries import (
    DEFAULT_WINDOW_COUNT,
    ENV_SERIES,
    ENV_SERIES_CHARGE_RATE,
    ENV_SERIES_PROBE_INTERVAL,
    ENV_SERIES_WINDOW,
    MonitorPlan,
    WindowedSeries,
    detect_warmup,
    efficiency_curve,
    merge_series,
    monitor_plan_from_jsonable,
    monitor_plan_to_jsonable,
    resolve_monitor_plan,
    steady_state,
)


class TestMonitorPlan:
    def test_default_plan_is_disabled_and_passive(self):
        plan = MonitorPlan()
        assert not plan.is_enabled
        assert not plan.is_active

    def test_series_alone_is_enabled_but_passive(self):
        plan = MonitorPlan(series=True)
        assert plan.is_enabled and not plan.is_active

    def test_free_probes_are_passive(self):
        plan = MonitorPlan(probe_interval=10.0)
        assert plan.is_enabled and not plan.is_active

    def test_charged_probes_are_active(self):
        plan = MonitorPlan(probe_interval=10.0, charge_rate=0.5)
        assert plan.is_active

    def test_charge_rate_without_probes_is_inert(self):
        # nothing sweeps, so nothing can charge: still passive
        plan = MonitorPlan(series=True, charge_rate=0.5)
        assert not plan.is_active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": -1.0},
            {"window": math.inf},
            {"window": math.nan},
            {"probe_interval": -2.0},
            {"probe_interval": math.nan},
            {"charge_rate": -0.1},
            {"charge_rate": math.inf},
            {"max_windows": 4},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MonitorPlan(**kwargs)

    def test_effective_window_derives_from_horizon(self):
        assert MonitorPlan().effective_window(6400.0) == pytest.approx(
            6400.0 / DEFAULT_WINDOW_COUNT
        )
        assert MonitorPlan(window=25.0).effective_window(6400.0) == 25.0

    def test_jsonable_round_trip(self):
        plan = MonitorPlan(
            series=True, window=12.5, max_windows=64,
            probe_interval=30.0, charge_rate=0.05,
        )
        assert monitor_plan_from_jsonable(monitor_plan_to_jsonable(plan)) == plan

    def test_plan_is_hashable(self):
        assert len({MonitorPlan(), MonitorPlan(series=True)}) == 2


class TestResolveMonitorPlan:
    def test_defaults_to_disabled(self, monkeypatch):
        for name in (ENV_SERIES, ENV_SERIES_WINDOW,
                     ENV_SERIES_PROBE_INTERVAL, ENV_SERIES_CHARGE_RATE):
            monkeypatch.delenv(name, raising=False)
        assert resolve_monitor_plan() == MonitorPlan()

    def test_env_knobs_apply(self, monkeypatch):
        monkeypatch.setenv(ENV_SERIES, "1")
        monkeypatch.setenv(ENV_SERIES_WINDOW, "50")
        monkeypatch.setenv(ENV_SERIES_PROBE_INTERVAL, "25")
        monkeypatch.setenv(ENV_SERIES_CHARGE_RATE, "0.25")
        plan = resolve_monitor_plan()
        assert plan == MonitorPlan(
            series=True, window=50.0, probe_interval=25.0, charge_rate=0.25
        )

    def test_env_zero_and_empty_disable_series(self, monkeypatch):
        monkeypatch.setenv(ENV_SERIES, "0")
        assert not resolve_monitor_plan().series
        monkeypatch.setenv(ENV_SERIES, "")
        assert not resolve_monitor_plan().series

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv(ENV_SERIES, "0")
        monkeypatch.setenv(ENV_SERIES_PROBE_INTERVAL, "25")
        plan = resolve_monitor_plan(series=True, probe_interval=100.0)
        assert plan.series and plan.probe_interval == 100.0

    def test_bad_env_number_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_SERIES_WINDOW, "not-a-number")
        with pytest.raises(ValueError):
            resolve_monitor_plan()


class TestWindowedSeries:
    def test_sums_bucket_by_window(self):
        ws = WindowedSeries(10.0, max_windows=8)
        ws.add(0.0, "F", 1.0)
        ws.add(9.999, "F", 2.0)
        ws.add(10.0, "F", 4.0)
        ws.add(35.0, "F", 8.0)
        assert ws.sums("F") == [3.0, 4.0, 0.0, 8.0]
        assert ws.windows == 4

    def test_negative_time_rejected(self):
        ws = WindowedSeries(10.0)
        with pytest.raises(ValueError):
            ws.add(-0.1, "F", 1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            WindowedSeries(0.0)
        with pytest.raises(ValueError):
            WindowedSeries(math.inf)
        with pytest.raises(ValueError):
            WindowedSeries(10.0, max_windows=2)

    def test_decimation_doubles_width_and_merges_pairs(self):
        ws = WindowedSeries(1.0, max_windows=8)
        for i in range(8):
            ws.add(float(i), "F", float(i))
        assert ws.width == 1.0
        ws.add(8.0, "F", 100.0)  # lands past max_windows -> decimate
        assert ws.width == 2.0
        assert ws.sums("F") == [1.0, 5.0, 9.0, 13.0, 100.0]

    def test_total_is_decimation_invariant(self):
        ws = WindowedSeries(1.0, max_windows=8)
        charges = [(float(i) * 3.7, 1.0 + i / 10) for i in range(200)]
        for t, a in charges:
            ws.add(t, "G", a)
        assert ws.total("G") == math.fsum(a for _, a in charges)
        assert ws.windows <= ws.max_windows

    def test_sample_means_survive_decimation_weighted(self):
        ws = WindowedSeries(1.0, max_windows=8)
        # window 0: one reading of 2; window 1: three readings of 10
        ws.observe(0.5, "q", 2.0)
        for _ in range(3):
            ws.observe(1.5, "q", 10.0)
        ws.add(8.0, "F", 0.0)  # force a decimation
        # merged window 0 holds all four readings: mean is (2+30)/4
        assert ws.means("q")[0] == pytest.approx(8.0)

    def test_means_nan_where_no_samples(self):
        ws = WindowedSeries(10.0)
        ws.observe(25.0, "q", 4.0)
        means = ws.means("q")
        assert math.isnan(means[0]) and math.isnan(means[1])
        assert means[2] == 4.0

    def test_extreme_horizon_one_shot_decimation(self):
        # An extreme-scale run lands a timestamp many doublings past the
        # bound in one jump; the one-shot path must pick the right
        # power-of-two factor without rewriting the arrays per doubling.
        ws = WindowedSeries(1.0, max_windows=8)
        for i in range(8):
            ws.add(float(i), "F", 1.0)
        ws.observe(0.5, "q", 3.0)
        ws.add(1e12, "F", 5.0)
        assert ws.windows <= ws.max_windows
        # width is the original times a power of two, sized to the jump
        factor = ws.width / 1.0
        assert factor == 2.0 ** round(math.log2(factor))
        assert 1e12 / ws.width < ws.max_windows
        # aggregates are decimation-invariant
        assert ws.total("F") == math.fsum([1.0] * 8 + [5.0])
        assert ws.means("q")[0] == 3.0

    def test_extreme_horizon_near_float_max(self):
        # The worst representable jump stays finite: the guard factor
        # never pushes the width past float range because max_windows
        # bounds it to ~2*time/max_windows.
        ws = WindowedSeries(1.0, max_windows=8)
        ws.add(0.5, "F", 1.0)
        ws.add(1e300, "F", 2.0)
        assert math.isfinite(ws.width)
        assert ws.total("F") == 3.0
        assert ws.windows <= ws.max_windows

    def test_non_finite_times_rejected(self):
        ws = WindowedSeries(1.0, max_windows=8)
        for bad in (math.inf, math.nan, -1.0):
            with pytest.raises(ValueError):
                ws.add(bad, "F", 1.0)
            with pytest.raises(ValueError):
                ws.observe(bad, "q", 1.0)
        # nothing was recorded by the rejected calls
        assert ws.windows == 0 and ws.total("F") == 0.0

    def test_jsonable_pads_to_window_count(self):
        ws = WindowedSeries(10.0)
        ws.add(5.0, "F", 1.0)
        ws.observe(5.0, "q", 2.0)
        ws.add(35.0, "G", 3.0)
        payload = ws.to_jsonable()
        assert payload["windows"] == 4
        assert payload["sums"]["F"] == [1.0, 0.0, 0.0, 0.0]
        assert payload["sums"]["G"] == [0.0, 0.0, 0.0, 3.0]
        assert payload["samples"]["q"]["count"] == [1, 0, 0, 0]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
                st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
            ),
            min_size=1,
            max_size=300,
        )
    )
    def test_aggregate_invariant_under_any_charge_pattern(self, charges):
        ws = WindowedSeries(7.0, max_windows=16)
        for t, a in charges:
            ws.add(t, "F", a)
        assert ws.windows <= ws.max_windows
        # decimation merges buckets, never drops mass — the aggregate
        # matches the charged total up to summation-order rounding
        assert ws.total("F") == pytest.approx(
            math.fsum(a for _, a in charges), rel=1e-9, abs=1e-9
        )
        # width only ever doubles: a power-of-two multiple of the base
        ratio = ws.width / 7.0
        assert ratio == 2 ** round(math.log2(ratio))


class TestAnalysis:
    @staticmethod
    def _payload(f, g, h, width=10.0):
        n = max(len(f), len(g), len(h))
        return {
            "v": 1,
            "width": width,
            "windows": n,
            "sums": {"F": list(f), "G": list(g), "H": list(h)},
            "samples": {},
        }

    def test_efficiency_curve_values(self):
        p = self._payload([3.0, 1.0], [1.0, 1.0], [0.0, 0.0])
        curve = efficiency_curve(p)
        assert curve[0] == (0.0, 0.75, 0.75)
        t, e_inst, e_cum = curve[1]
        assert t == 10.0
        assert e_inst == pytest.approx(0.5)
        assert e_cum == pytest.approx(4.0 / 6.0)

    def test_efficiency_curve_empty_window_is_nan(self):
        p = self._payload([1.0, 0.0], [1.0, 0.0], [0.0, 0.0])
        _, e_inst, e_cum = efficiency_curve(p)[1]
        assert math.isnan(e_inst)
        assert e_cum == pytest.approx(0.5)

    def test_detect_warmup_finds_transient(self):
        # binary-exact values so the steady tail's variance is exactly 0
        values = [0.125, 0.25, 0.375] + [0.75] * 20
        d = detect_warmup(values)
        assert d == 3

    def test_detect_warmup_stationary_signal_is_zero(self):
        assert detect_warmup([0.5] * 20) == 0

    def test_detect_warmup_short_or_nan_signal_is_zero(self):
        assert detect_warmup([]) == 0
        assert detect_warmup([0.1, 0.9, 0.5]) == 0
        assert detect_warmup([math.nan] * 10) == 0

    def test_detect_warmup_skips_nan_windows(self):
        values = [0.1, math.nan, 0.2] + [0.7] * 10
        d = detect_warmup(values)
        assert values[d] == 0.7

    def test_detect_warmup_bounded_by_max_fraction(self):
        values = list(range(20))  # monotone: never truly steady
        assert detect_warmup([float(v) for v in values]) < 10

    def test_steady_state_agrees_on_stationary_run(self):
        p = self._payload([8.0] * 10, [2.0] * 10, [0.0] * 10)
        s = steady_state(p)
        assert s["warmup_windows"] == 0.0
        assert s["steady_E"] == pytest.approx(0.8)
        assert s["final_E"] == pytest.approx(0.8)
        assert s["rel_error"] == pytest.approx(0.0)

    def test_steady_state_truncates_warmup(self):
        # cold start: first two windows are pure overhead
        f = [0.0, 0.0] + [9.0] * 10
        g = [5.0, 5.0] + [1.0] * 10
        s = steady_state(self._payload(f, g, [0.0] * 12))
        assert s["warmup_windows"] == 2.0
        assert s["warmup_time"] == 20.0
        assert s["steady_E"] == pytest.approx(0.9)
        assert s["steady_E"] > s["final_E"]
        assert s["rel_error"] > 0.0

    def test_steady_state_empty_run_is_nan(self):
        s = steady_state(self._payload([], [], []))
        assert math.isnan(s["steady_E"]) and math.isnan(s["final_E"])


class TestMergeSeries:
    def test_merge_equal_widths_sums_windows(self):
        a = {"v": 1, "width": 10.0, "windows": 2,
             "sums": {"F": [1.0, 2.0]}, "samples": {}}
        b = {"v": 1, "width": 10.0, "windows": 3,
             "sums": {"F": [10.0, 20.0, 30.0], "G": [1.0, 1.0, 1.0]},
             "samples": {}}
        merged = merge_series([a, b])
        assert merged["width"] == 10.0
        assert merged["windows"] == 3
        assert merged["sums"]["F"] == [11.0, 22.0, 30.0]
        assert merged["sums"]["G"] == [1.0, 1.0, 1.0]

    def test_merge_resamples_to_coarsest_width(self):
        fine = {"v": 1, "width": 5.0, "windows": 4,
                "sums": {"F": [1.0, 2.0, 3.0, 4.0]},
                "samples": {"q": {"sum": [1.0, 1.0, 1.0, 1.0],
                                  "count": [1, 1, 1, 1]}}}
        coarse = {"v": 1, "width": 10.0, "windows": 2,
                  "sums": {"F": [100.0, 200.0]}, "samples": {}}
        merged = merge_series([fine, coarse])
        assert merged["width"] == 10.0
        assert merged["sums"]["F"] == [103.0, 207.0]
        assert merged["samples"]["q"] == {"sum": [2.0, 2.0], "count": [2, 2]}

    def test_merge_preserves_aggregate(self):
        fine = {"v": 1, "width": 5.0, "windows": 4,
                "sums": {"F": [1.0, 2.0, 3.0, 4.0]}, "samples": {}}
        coarse = {"v": 1, "width": 20.0, "windows": 1,
                  "sums": {"F": [50.0]}, "samples": {}}
        merged = merge_series([fine, coarse])
        assert math.fsum(merged["sums"]["F"]) == 60.0

    def test_merge_rejects_non_integer_ratio(self):
        a = {"v": 1, "width": 10.0, "windows": 1, "sums": {}, "samples": {}}
        b = {"v": 1, "width": 15.0, "windows": 1, "sums": {}, "samples": {}}
        with pytest.raises(ValueError):
            merge_series([a, b])

    def test_merge_needs_payloads(self):
        with pytest.raises(ValueError):
            merge_series([])

    def test_merge_single_payload_is_identity(self):
        a = {"v": 1, "width": 10.0, "windows": 2,
             "sums": {"F": [1.0, 2.0]}, "samples": {}}
        merged = merge_series([a])
        assert merged["sums"]["F"] == [1.0, 2.0]
        assert merged["width"] == 10.0
