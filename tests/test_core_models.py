"""Validation of the analytic overhead model against the simulator.

These are the strongest correctness tests in the suite: two completely
independent implementations (closed-form rates vs. discrete-event
simulation) must agree on the overhead decomposition.
"""

import pytest

from repro.core.models import predict_rates
from repro.experiments import SimulationConfig, run_simulation


def config(rms="LOWEST", **kw):
    kw.setdefault("n_schedulers", 8)
    kw.setdefault("n_resources", 24)
    kw.setdefault("workload_rate", 0.0067)
    kw.setdefault("update_interval", 8.5)
    kw.setdefault("horizon", 12000.0)
    kw.setdefault("drain", 6000.0)
    kw.setdefault("seed", 7)
    return SimulationConfig(rms=rms, **kw)


def span_of(metrics):
    """The simulated span the measured totals accumulated over (the
    run drains past the horizon; rates are with respect to horizon +
    observed drain, approximated by horizon + mean response tail)."""
    return metrics.horizon


class TestPredictionStructure:
    def test_rates_nonnegative(self):
        p = predict_rates(config())
        for attr in (
            "update_rate",
            "estimator_busy",
            "scheduler_update_busy",
            "decision_busy",
            "poll_busy",
            "completion_busy",
            "useful_rate",
            "rp_rate",
        ):
            assert getattr(p, attr) >= 0.0

    def test_central_has_no_poll_plane(self):
        p = predict_rates(config("CENTRAL", update_interval=40.0))
        assert p.poll_busy == 0.0

    def test_central_decision_cost_scans_whole_pool(self):
        pc = predict_rates(config("CENTRAL"))
        pl = predict_rates(config("LOWEST"))
        assert pc.decision_busy > pl.decision_busy

    def test_update_rate_falls_with_tau(self):
        fast = predict_rates(config(update_interval=6.0))
        slow = predict_rates(config(update_interval=60.0))
        assert fast.update_rate > slow.update_rate

    def test_poll_busy_grows_with_lp(self):
        lo = predict_rates(config(l_p=1))
        hi = predict_rates(config(l_p=4))
        assert hi.poll_busy > lo.poll_busy

    def test_poll_busy_capped_by_peer_count(self):
        a = predict_rates(config(l_p=7))
        b = predict_rates(config(l_p=100))
        assert a.poll_busy == b.poll_busy

    def test_efficiency_formula(self):
        p = predict_rates(config())
        total = p.useful_rate + p.g_rate + p.rp_rate
        assert p.efficiency == pytest.approx(p.useful_rate / total)


class TestPredictionVsSimulation:
    """Closed form vs discrete-event: agreement within modeling error."""

    def test_lowest_efficiency_within_tolerance(self):
        cfg = config("LOWEST")
        m = run_simulation(cfg)
        p = predict_rates(cfg, success=m.success_rate)
        assert m.efficiency == pytest.approx(p.efficiency, abs=0.10)

    def test_lowest_g_rate_within_tolerance(self):
        cfg = config("LOWEST")
        m = run_simulation(cfg)
        p = predict_rates(cfg, success=m.success_rate)
        measured_rate = m.record.G / span_of(m)
        # The measured span extends slightly past the horizon (drain),
        # so accept a generous but bounded band.
        assert measured_rate == pytest.approx(p.g_rate, rel=0.45)

    def test_central_saturation_predicted(self):
        """Where the model predicts >1 busy for the single scheduler,
        the simulation must show degraded success — and vice versa at a
        comfortably lazy tau."""
        hot_cfg = config("CENTRAL", update_interval=8.5)
        cool_cfg = config("CENTRAL", update_interval=40.0)
        hot_p = predict_rates(hot_cfg)
        cool_p = predict_rates(cool_cfg)
        # NOTE: for CENTRAL the estimator is a second single server; its
        # busy fraction is estimator_busy (one estimator).
        assert max(hot_p.central_scheduler_busy, hot_p.estimator_busy) > 0.9
        assert max(cool_p.central_scheduler_busy, cool_p.estimator_busy) < 0.9
        hot_m = run_simulation(hot_cfg)
        cool_m = run_simulation(cool_cfg)
        assert hot_m.success_rate < 0.6
        assert cool_m.success_rate > 0.9

    def test_update_volume_vs_simulation(self):
        """Predicted update emissions track the simulator's message
        counts (updates dominate message volume at these settings)."""
        cfg = config("CENTRAL", update_interval=40.0)
        m = run_simulation(cfg)
        p = predict_rates(cfg)
        predicted_updates = p.update_rate * cfg.horizon
        # messages include dispatches/completions too; updates are the
        # bulk — same order of magnitude, within 2x.
        assert 0.4 < predicted_updates / m.messages_sent < 1.5

    def test_tau_scaling_law(self):
        """G should scale roughly inversely with tau in both worlds."""
        m1 = run_simulation(config(update_interval=8.5))
        m2 = run_simulation(config(update_interval=17.0))
        p1 = predict_rates(config(update_interval=8.5))
        p2 = predict_rates(config(update_interval=17.0))
        sim_ratio = m1.record.G / m2.record.G
        model_ratio = p1.g_rate / p2.g_rate
        assert sim_ratio == pytest.approx(model_ratio, rel=0.35)
