"""Integration tests for the causal-tracing study (``repro trace``).

Covers the trace-aware cache upgrade path, the study driver (one
engine batch, manifest checkpointing in the shared study shape, the
telescoping invariant across every point), the report's grep-able
verdict lines, the CSV/JSONL/Prometheus exports, and the CLI plumbing
including the exit-2 error convention for bad plan knobs.
"""

import json
import math
from dataclasses import replace

import pytest

from repro.experiments import SimulationConfig
from repro.experiments.parallel import ExperimentEngine, metrics_json_bytes
from repro.experiments.parallel.cache import RunCache
from repro.experiments.tracestudy import (
    RESIDUAL_TOLERANCE,
    TraceAwareCache,
    default_trace_plan,
    export_csv,
    export_jsonl,
    export_prometheus,
    run_trace_study,
    trace_plan_key,
    trace_report,
)
from repro.telemetry.tracing import ENV_SAMPLE, TracePlan


def small_config(rms="LOWEST", **kw):
    """A small but non-trivial system (~10 ms per run)."""
    kw.setdefault("n_schedulers", 3)
    kw.setdefault("n_resources", 9)
    kw.setdefault("workload_rate", 0.004)
    kw.setdefault("horizon", 2000.0)
    kw.setdefault("drain", 3000.0)
    kw.setdefault("update_interval", 20.0)
    kw.setdefault("seed", 11)
    return SimulationConfig(rms=rms, **kw)


PASSIVE = TracePlan(sample=1.0, charge_rate=0.0)


class TestDefaultPlan:
    def test_study_default_traces_everything_and_charges(self, monkeypatch):
        monkeypatch.delenv(ENV_SAMPLE, raising=False)
        plan = default_trace_plan()
        assert plan.sample == 1.0
        assert plan.is_active  # overhead charged to g.trace by default

    def test_plan_key_is_a_stable_digest(self):
        plan = TracePlan(sample=0.5, charge_rate=0.01)
        key = trace_plan_key(plan)
        assert key == trace_plan_key(TracePlan(sample=0.5, charge_rate=0.01))
        assert len(key) == 12 and int(key, 16) >= 0
        assert key != trace_plan_key(PASSIVE)


class TestTraceAwareCache:
    def test_trace_less_hit_reads_as_miss_and_upgrades(self, tmp_path):
        base = small_config()
        with ExperimentEngine(jobs=1, cache=RunCache(tmp_path)) as engine:
            engine.run(base)  # cache an untraced (trace-less) entry

        cache = TraceAwareCache(tmp_path)
        traced = replace(base, trace=PASSIVE)
        with ExperimentEngine(jobs=1, cache=cache) as engine:
            m = engine.run(traced)
        assert m.trace is not None
        assert cache.misses >= 1

        # the rewritten entry now carries the payload: second read hits
        cache2 = TraceAwareCache(tmp_path)
        with ExperimentEngine(jobs=1, cache=cache2) as engine:
            again = engine.run(traced)
        assert again.trace is not None
        assert cache2.hits >= 1
        assert metrics_json_bytes(again) == metrics_json_bytes(m)

    def test_plain_configs_unaffected(self, tmp_path):
        base = small_config()
        cache = TraceAwareCache(tmp_path)
        with ExperimentEngine(jobs=1, cache=cache) as engine:
            engine.run(base)
        cache2 = TraceAwareCache(tmp_path)
        with ExperimentEngine(jobs=1, cache=cache2) as engine:
            engine.run(base)
        assert cache2.hits == 1


class TestStudyDriver:
    @pytest.fixture(scope="class")
    def study(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("trace-study")
        manifest = root / "manifests" / "trace.json"
        plan = TracePlan(sample=1.0, charge_rate=0.01)
        with ExperimentEngine(jobs=1, cache=TraceAwareCache(root)) as engine:
            result = run_trace_study(
                profile="ci",
                rms=["LOWEST", "CENTRAL"],
                plan=plan,
                engine=engine,
                manifest_path=manifest,
            )
        return result

    def test_points_carry_traces_and_decompose(self, study):
        for name, points in study.traces.items():
            assert len(points) >= 2
            for p in points:
                assert p.trace is not None and p.trace["sampled"] > 0
                agg = p.phases
                assert agg["jobs"] > 0
                assert agg["max_residual"] <= RESIDUAL_TOLERANCE
                assert math.fsum(p.shares.values()) == pytest.approx(1.0)
                assert p.trace_g > 0.0  # the active plan charged g.trace

    def test_report_carries_the_verdict_lines(self, study):
        text = trace_report(study)
        assert "phase decomposition sums to turnaround: yes" in text
        assert "share growth with k (top 3):" in text
        assert "transit latency by message class" in text
        assert "g.trace" in text
        assert "LOWEST — phase shares of turnaround per scale:" in text

    def test_manifest_round_trips_through_attrib(self, study):
        from repro.experiments.attrib import check_conservation, points_from_manifest

        points = points_from_manifest(study.manifest_path)
        assert len(points) == sum(len(v) for v in study.traces.values())
        for p in points:
            assert check_conservation(p) == []

    def test_manifest_points_carry_phase_payloads(self, study):
        payload = json.loads(study.manifest_path.read_text())
        entry = next(iter(payload["completed"].values()))
        point = entry["result"]["points"][0]
        assert "phases" in point and "shares" in point
        assert entry["trace_plan"]["sample"] == 1.0

    def test_csv_export(self, study, tmp_path):
        path = tmp_path / "t.csv"
        with open(path, "w", newline="") as fh:
            n = export_csv(study, fh)
        lines = path.read_text().splitlines()
        assert lines[0] == "rms,scale,jobs,incomplete,phase,seconds,share"
        assert n == len(lines) - 1 > 0

    def test_jsonl_export_carries_full_payloads(self, study, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            n = export_jsonl(study, fh)
        lines = path.read_text().splitlines()
        assert n == len(lines) == sum(len(v) for v in study.traces.values())
        row = json.loads(lines[0])
        assert row["trace"]["sampled"] > 0
        assert set(row["record"]) == {"F", "G", "H"}

    def test_prometheus_export(self, study, tmp_path):
        path = tmp_path / "t.prom"
        with open(path, "w") as fh:
            n = export_prometheus(study, fh)
        text = path.read_text()
        assert n > 0
        assert "# TYPE repro_trace_phase_share gauge" in text
        assert 'phase="service"' in text
        # g.trace overhead rides with its attribution labels
        assert 'category="g.trace"' in text
        assert 'quantile="p95"' in text


class TestCli:
    def test_trace_subcommand_end_to_end(self, tmp_path, capsys):
        from repro.experiments.cli import main

        rc = main(
            [
                "trace",
                "--profile", "ci",
                "--rms", "CENTRAL",
                "--jobs", "1",
                "--cache-dir", str(tmp_path),
                "--trace-charge", "0.01",
                "--csv", str(tmp_path / "t.csv"),
                "--jsonl", str(tmp_path / "t.jsonl"),
                "--prom", str(tmp_path / "t.prom"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "phase decomposition sums to turnaround: yes" in out
        assert "g.trace" in out
        assert (tmp_path / "manifests" / "trace.json").is_file()
        csv_text = (tmp_path / "t.csv").read_text()
        assert csv_text.startswith("rms,scale,jobs,incomplete,phase")
        assert "repro_trace_phase_share" in (tmp_path / "t.prom").read_text()
        assert (tmp_path / "t.jsonl").read_text().count("\n") > 0

    def test_trace_rejects_bad_sample(self, tmp_path, capsys):
        from repro.experiments.cli import main

        rc = main(
            [
                "trace",
                "--cache-dir", str(tmp_path),
                "--trace-sample", "1.5",
            ]
        )
        assert rc == 2
        assert "sample" in capsys.readouterr().err
