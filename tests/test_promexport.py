"""Unit tests for the shared Prometheus text-exposition helpers."""

import io
import math

from repro.telemetry.promexport import (
    attribution_labels,
    format_labels,
    prom_escape,
    write_metric,
)


class TestEscaping:
    def test_escapes_backslash_quote_newline(self):
        assert prom_escape('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_plain_strings_pass_through(self):
        assert prom_escape("status_update") == "status_update"


class TestLabels:
    def test_insertion_order_preserved(self):
        assert (
            format_labels({"rms": "LOWEST", "scale": 2.0})
            == 'rms="LOWEST",scale="2"'
        )

    def test_floats_render_compactly(self):
        # %g keeps the historical scale="2" shape smoke tests scrape
        assert format_labels({"k": 2.0}) == 'k="2"'
        assert format_labels({"k": 2.5}) == 'k="2.5"'


class TestWriteMetric:
    def test_type_line_always_written(self):
        buf = io.StringIO()
        assert write_metric(buf, "m", "gauge", []) == 0
        assert buf.getvalue() == "# TYPE m gauge\n"

    def test_samples_rendered_and_counted(self):
        buf = io.StringIO()
        n = write_metric(
            buf, "m", "counter", [({"a": "x"}, 1.5), ({"a": "y"}, 2)]
        )
        assert n == 2
        assert 'm{a="x"} 1.5\n' in buf.getvalue()
        assert 'm{a="y"} 2\n' in buf.getvalue()

    def test_none_and_nan_values_skipped(self):
        buf = io.StringIO()
        n = write_metric(
            buf,
            "m",
            "gauge",
            [({"a": "x"}, None), ({"a": "y"}, math.nan), ({"a": "z"}, 0.0)],
        )
        assert n == 1
        assert 'm{a="z"} 0.0' in buf.getvalue()


class TestAttributionLabels:
    def test_tagged_cell_yields_all_four_labels(self):
        assert attribution_labels("g.estimator|estimator|est3|status_update") == {
            "category": "g.estimator",
            "component": "estimator",
            "entity": "est3",
            "message_class": "status_update",
        }

    def test_bare_category_yields_one_label(self):
        assert attribution_labels("g.trace") == {"category": "g.trace"}
